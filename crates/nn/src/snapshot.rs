//! Model snapshots: durable on-disk artifacts for every frozen model in the
//! workspace, built on the container and tensor codec of
//! [`permdnn_core::snapshot`].
//!
//! This module owns the *workspace-wide* codec ([`codec`]): `permdnn-core`
//! registers the formats it implements (dense, permuted-diagonal, quantized,
//! lowered PD conv), and this crate — which depends on every format crate —
//! adds circulant, CSC, EIE and shared-codebook PD. Model `save`/`load`
//! methods live next to their types ([`crate::MlpClassifier::save`],
//! [`crate::FrozenConvNet::save`], [`crate::FrozenSeq2Seq::save`]); the
//! helpers here encode the shared vocabulary (weight-format tags, bias
//! vectors, layer chains) and [`load_batch_model`] turns snapshot bytes back
//! into something the serving runtime can route requests to.
//!
//! Only *frozen* networks snapshot: a deployment artifact is immutable weight
//! data, so trainable layers (`Dense`, `PdDense`, `CirculantDense`) must be
//! frozen/quantized first. Every tensor is stored in its compressed
//! representation — a permuted-diagonal layer costs `stored_weights × 4`
//! bytes plus its permutation table on disk, never `rows × cols × 4`.

use std::sync::Arc;

use permdnn_core::format::CompressedLinear;
use permdnn_core::snapshot::{
    ByteReader, ByteWriter, SnapshotCodec, SnapshotError, FORMAT_CIRCULANT, FORMAT_CSC, FORMAT_EIE,
    FORMAT_SHARED_PD,
};
use permdnn_runtime::{
    BatchModel, ModelLoader, PagedConfig, PagedModel, PagedModelLoader, PagedStage,
};

use crate::layers::WeightFormat;
use crate::{FrozenConvNet, MlpClassifier};

/// The full workspace tensor codec: core's formats plus circulant, CSC, EIE
/// and shared-codebook PD. Every model loader in this crate decodes through
/// it, so a snapshot written by any frozen model round-trips regardless of
/// which formats it mixes.
pub fn codec() -> SnapshotCodec {
    let mut codec = SnapshotCodec::new();
    codec.register(FORMAT_CIRCULANT, permdnn_circulant::format::decode_snapshot);
    codec.register(FORMAT_CSC, permdnn_prune::format::decode_csc_snapshot);
    codec.register(FORMAT_EIE, permdnn_prune::format::decode_eie_snapshot);
    codec.register(FORMAT_SHARED_PD, permdnn_quant::shared_pd::decode_snapshot);
    codec
}

/// Writes a [`WeightFormat`] tag (`u8` variant + two `u32` parameters).
pub(crate) fn write_weight_format(format: WeightFormat, w: &mut ByteWriter) {
    let (tag, a, b) = match format {
        WeightFormat::Dense => (0u8, 0u32, 0u32),
        WeightFormat::PermutedDiagonal { p } => (1, p as u32, 0),
        WeightFormat::Circulant { k } => (2, k as u32, 0),
        WeightFormat::UnstructuredSparse { p } => (3, p as u32, 0),
        WeightFormat::SharedPermutedDiagonal { p, tag_bits } => (4, p as u32, tag_bits),
        WeightFormat::EieEncoded { p } => (5, p as u32, 0),
    };
    w.u8(tag);
    w.u32(a);
    w.u32(b);
}

/// Reads a [`WeightFormat`] tag written by [`write_weight_format`].
pub(crate) fn read_weight_format(r: &mut ByteReader<'_>) -> Result<WeightFormat, SnapshotError> {
    let tag = r.u8("weight format tag")?;
    let a = r.u32("weight format parameter")? as usize;
    let b = r.u32("weight format parameter")?;
    match tag {
        0 => Ok(WeightFormat::Dense),
        1 => Ok(WeightFormat::PermutedDiagonal { p: a }),
        2 => Ok(WeightFormat::Circulant { k: a }),
        3 => Ok(WeightFormat::UnstructuredSparse { p: a }),
        4 => Ok(WeightFormat::SharedPermutedDiagonal { p: a, tag_bits: b }),
        5 => Ok(WeightFormat::EieEncoded { p: a }),
        other => Err(SnapshotError::Malformed {
            context: "weight format tag",
            reason: format!("unknown variant {other}"),
        }),
    }
}

/// Encodes a bias vector section: `u32` length + `f32` values.
pub(crate) fn write_bias(bias: &[f32]) -> Vec<u8> {
    let mut out = ByteWriter::new();
    out.dim(bias.len());
    out.f32_slice(bias);
    out.into_vec()
}

/// Decodes a bias section written by [`write_bias`], checking the declared
/// length against `expected` (the owning operator's output width).
pub(crate) fn read_bias(payload: &[u8], expected: usize) -> Result<Vec<f32>, SnapshotError> {
    let mut r = ByteReader::new(payload);
    let len = r.dim("bias length")?;
    if len != expected {
        return Err(SnapshotError::Malformed {
            context: "bias length",
            reason: format!("{len} entries for an output width of {expected}"),
        });
    }
    let bias = r.f32_vec(len, "bias values")?;
    r.expect_end("bias section")?;
    Ok(bias)
}

/// Decodes one tensor section into an operator, requiring the section to be
/// exactly one record.
pub(crate) fn read_tensor_section(
    payload: &[u8],
    codec: &SnapshotCodec,
) -> Result<Arc<dyn CompressedLinear>, SnapshotError> {
    let mut r = ByteReader::new(payload);
    let op = codec.decode_tensor(&mut r)?;
    r.expect_end("tensor section")?;
    Ok(op)
}

/// Loads any servable model snapshot — a frozen MLP ([`KIND_MLP`]) or frozen
/// conv net ([`KIND_CONV`]) — as a boxed [`BatchModel`] ready for the serving
/// runtime. This is the loader `permdnn_runtime::ModelRegistry` routes
/// through.
///
/// [`KIND_MLP`]: permdnn_core::snapshot::KIND_MLP
/// [`KIND_CONV`]: permdnn_core::snapshot::KIND_CONV
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] for corrupted bytes or a model kind with
/// no batch-serving surface (seq2seq models translate token sequences — load
/// them with [`crate::FrozenSeq2Seq::load`] instead).
pub fn load_batch_model(bytes: &[u8]) -> Result<Arc<dyn BatchModel>, SnapshotError> {
    let snap = permdnn_core::snapshot::Snapshot::parse(bytes)?;
    match snap.kind() {
        permdnn_core::snapshot::KIND_MLP => {
            Ok(Arc::new(MlpClassifier::load_snapshot(&snap)?) as Arc<dyn BatchModel>)
        }
        permdnn_core::snapshot::KIND_CONV => {
            Ok(Arc::new(FrozenConvNet::load_snapshot(&snap)?) as Arc<dyn BatchModel>)
        }
        other => Err(SnapshotError::Malformed {
            context: "batch model snapshot",
            reason: format!("kind {other} is not batch-servable"),
        }),
    }
}

/// A [`ModelLoader`] wrapping [`load_batch_model`] — plug it straight into
/// `permdnn_runtime::ModelRegistry::new`.
pub fn batch_model_loader() -> ModelLoader {
    Box::new(load_batch_model)
}

/// Builds a [`PagedModel`] skeleton from a block-streamed
/// ([`KIND_BLOCKED`](permdnn_core::snapshot::KIND_BLOCKED)) snapshot: the
/// metadata sections (layer graph, biases) load eagerly, and each weight
/// block becomes a vacant slot the serving registry faults in on demand.
/// Supports the blocked forms of [`KIND_MLP`] (layer chain, per-layer
/// `"layerN.weights"` blocks with biases) and [`KIND_TENSOR`] (one
/// `"tensor"` block served bare — no bias step, matching
/// `SingleLayerModel`'s arithmetic exactly).
///
/// Every weight block *is* decoded once here — standalone, via
/// [`extract_block`](permdnn_core::snapshot::extract_block) — to validate
/// its shape and record its per-example cost, then dropped; only the
/// skeleton stays resident.
///
/// [`KIND_MLP`]: permdnn_core::snapshot::KIND_MLP
/// [`KIND_TENSOR`]: permdnn_core::snapshot::KIND_TENSOR
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] for corrupted bytes, a broken layer
/// chain, or an inner kind with no paged-serving surface.
pub fn load_paged_model(bytes: &[u8]) -> Result<PagedModel, SnapshotError> {
    use permdnn_core::snapshot::{
        extract_block, load_tensor, read_block_index, read_blocked_section, KIND_MLP, KIND_TENSOR,
    };
    let index = read_block_index(bytes)?;
    let codec = codec();
    match index.inner_kind {
        KIND_TENSOR => {
            let k = index
                .position("tensor")
                .ok_or_else(|| SnapshotError::MissingSection {
                    name: "tensor".to_string(),
                })?;
            let op = load_tensor(&extract_block(bytes, k)?, &codec)?;
            PagedModel::new(vec![PagedStage::linear(
                k,
                index.blocks[k].len,
                op.in_dim(),
                op.out_dim(),
                op.mul_count(),
                Vec::new(),
            )])
        }
        KIND_MLP => {
            let graph = read_blocked_section(bytes, "graph")?;
            let mut g = ByteReader::new(&graph);
            let input_dim = g.dim("mlp input dim")?;
            let num_classes = g.dim("mlp class count")?;
            let _hidden_format = read_weight_format(&mut g)?;
            let n_layers = g.dim("mlp layer count")?;
            let mut stages = Vec::with_capacity(n_layers.min(g.remaining() + 1));
            let mut current = input_dim;
            for i in 0..n_layers {
                match g.u8("mlp layer kind")? {
                    0 => {
                        let name = format!("layer{i}.weights");
                        let k = index
                            .position(&name)
                            .ok_or(SnapshotError::MissingSection { name })?;
                        let op = load_tensor(&extract_block(bytes, k)?, &codec)?;
                        if op.in_dim() != current {
                            return Err(SnapshotError::Malformed {
                                context: "paged mlp layer chain",
                                reason: format!(
                                    "layer {i} consumes {} values but receives {current}",
                                    op.in_dim()
                                ),
                            });
                        }
                        let bias = read_bias(
                            &read_blocked_section(bytes, &format!("layer{i}.bias"))?,
                            op.out_dim(),
                        )?;
                        current = op.out_dim();
                        stages.push(PagedStage::linear(
                            k,
                            index.blocks[k].len,
                            op.in_dim(),
                            op.out_dim(),
                            op.mul_count(),
                            bias,
                        ));
                    }
                    kind @ (1 | 2) => {
                        let dim = g.dim("mlp activation dim")?;
                        if dim != current {
                            return Err(SnapshotError::Malformed {
                                context: "paged mlp layer chain",
                                reason: format!(
                                    "activation {i} has width {dim}, expected {current}"
                                ),
                            });
                        }
                        stages.push(if kind == 1 {
                            PagedStage::map(dim, Box::new(crate::activations::relu_vec))
                        } else {
                            PagedStage::map(dim, Box::new(crate::activations::tanh_vec))
                        });
                    }
                    other => {
                        return Err(SnapshotError::Malformed {
                            context: "mlp layer kind",
                            reason: format!("unknown kind {other}"),
                        })
                    }
                }
            }
            g.expect_end("mlp graph")?;
            if current != num_classes {
                return Err(SnapshotError::Malformed {
                    context: "paged mlp layer chain",
                    reason: format!("network emits {current} values for {num_classes} classes"),
                });
            }
            PagedModel::new(stages)
        }
        other => Err(SnapshotError::Malformed {
            context: "paged model snapshot",
            reason: format!("inner kind {other} has no paged-serving surface"),
        }),
    }
}

/// A [`PagedModelLoader`] wrapping [`load_paged_model`].
pub fn paged_model_loader() -> PagedModelLoader {
    Box::new(load_paged_model)
}

/// The workspace-standard [`PagedConfig`]: [`paged_model_loader`] for
/// skeletons, the full workspace [`codec`] for block decodes, and the
/// default [`PagingModel`](permdnn_runtime::PagingModel) tick costs — plug
/// it straight into `permdnn_runtime::ModelRegistry::new_paged`.
pub fn paged_config() -> PagedConfig {
    PagedConfig {
        loader: paged_model_loader(),
        codec: codec(),
        paging: permdnn_runtime::PagingModel::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_format_tags_round_trip() {
        for format in [
            WeightFormat::Dense,
            WeightFormat::PermutedDiagonal { p: 8 },
            WeightFormat::Circulant { k: 4 },
            WeightFormat::UnstructuredSparse { p: 2 },
            WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
            WeightFormat::EieEncoded { p: 4 },
        ] {
            let mut w = ByteWriter::new();
            write_weight_format(format, &mut w);
            let bytes = w.into_vec();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(read_weight_format(&mut r).unwrap(), format);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn codec_registers_every_workspace_format() {
        use permdnn_core::snapshot::*;
        assert_eq!(
            codec().formats(),
            vec![
                FORMAT_DENSE,
                FORMAT_PERMUTED_DIAGONAL,
                FORMAT_CIRCULANT,
                FORMAT_CSC,
                FORMAT_EIE,
                FORMAT_SHARED_PD,
                FORMAT_QUANTIZED,
                FORMAT_PD_CONV,
            ]
        );
    }

    #[test]
    fn bias_length_mismatch_is_a_typed_error() {
        let payload = write_bias(&[1.0, 2.0]);
        assert_eq!(read_bias(&payload, 2).unwrap(), vec![1.0, 2.0]);
        assert!(matches!(
            read_bias(&payload, 3),
            Err(SnapshotError::Malformed { .. })
        ));
    }
}
