//! Element-wise activation functions and their derivatives.
//!
//! The PERMDNN activation units (Fig. 7) are reconfigurable between ReLU and tanh; the
//! training framework additionally needs softmax for the classifier heads and sigmoid for
//! the LSTM gates.

/// Rectified linear unit.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU with respect to its input (sub-gradient 0 at 0).
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Hyperbolic tangent.
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh expressed in terms of the *output* `y = tanh(x)`.
pub fn tanh_grad_from_output(y: f32) -> f32 {
    1.0 - y * y
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of sigmoid expressed in terms of the output `y = sigmoid(x)`.
pub fn sigmoid_grad_from_output(y: f32) -> f32 {
    y * (1.0 - y)
}

/// Numerically stable softmax over a slice.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Applies ReLU element-wise to a slice, returning a new vector.
pub fn relu_vec(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| relu(v)).collect()
}

/// Applies tanh element-wise to a slice, returning a new vector.
pub fn tanh_vec(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| tanh(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu(-3.0), 0.0);
        assert_eq!(relu_grad(2.0), 1.0);
        assert_eq!(relu_grad(-2.0), 0.0);
    }

    #[test]
    fn tanh_range_and_grad() {
        assert!(tanh(100.0) <= 1.0);
        assert!(tanh(-100.0) >= -1.0);
        let y = tanh(0.5);
        assert!((tanh_grad_from_output(y) - (1.0 - y * y)).abs() < 1e-7);
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        let y = sigmoid(1.3);
        assert!((sigmoid_grad_from_output(y) - y * (1.0 - y)).abs() < 1e-7);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Large logits must not overflow.
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(relu_vec(&[-1.0, 2.0]), vec![0.0, 2.0]);
        assert_eq!(tanh_vec(&[0.0]), vec![0.0]);
    }

    #[test]
    fn relu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.1, 0.1, 2.0] {
            let eps = 1e-3;
            let numeric = (relu(x + eps) - relu(x - eps)) / (2.0 * eps);
            assert!((numeric - relu_grad(x)).abs() < 1e-3);
        }
    }
}
