//! Loss functions for the classifier and sequence models.

use crate::activations::softmax;

/// Softmax cross-entropy loss for a single example.
///
/// Returns `(loss, gradient_wrt_logits)`. The gradient is the usual `softmax(z) - onehot`.
///
/// # Panics
///
/// Panics if `target >= logits.len()` or `logits` is empty.
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    assert!(!logits.is_empty(), "logits must not be empty");
    assert!(target < logits.len(), "target class {target} out of range");
    let probs = softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    (loss, grad)
}

/// Mean-squared-error loss for a single example: `0.5 * ||pred - target||²`.
///
/// Returns `(loss, gradient_wrt_pred)`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), target.len(), "length mismatch");
    let mut loss = 0.0f32;
    let mut grad = Vec::with_capacity(pred.len());
    for (&p, &t) in pred.iter().zip(target.iter()) {
        let d = p - t;
        loss += 0.5 * d * d;
        grad.push(d);
    }
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_has_low_loss() {
        let (loss, _) = softmax_cross_entropy(&[10.0, -10.0, -10.0], 0);
        assert!(loss < 1e-3);
        let (loss_bad, _) = softmax_cross_entropy(&[10.0, -10.0, -10.0], 1);
        assert!(loss_bad > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let (_, grad) = softmax_cross_entropy(&[0.3, -0.2, 1.4, 0.0], 2);
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
        assert!(grad[2] < 0.0, "gradient pushes the target logit up");
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = [0.5f32, -1.0, 2.0];
        let target = 1usize;
        let (_, grad) = softmax_cross_entropy(&logits, target);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits;
            lp[i] += eps;
            let mut lm = logits;
            lm[i] -= eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, target);
            let (loss_m, _) = softmax_cross_entropy(&lm, target);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!((numeric - grad[i]).abs() < 1e-2, "logit {i}");
        }
    }

    #[test]
    fn mse_loss_and_gradient() {
        let (loss, grad) = mse(&[1.0, 2.0], &[0.0, 4.0]);
        assert!((loss - (0.5 + 2.0)).abs() < 1e-6);
        assert_eq!(grad, vec![1.0, -2.0]);
    }

    #[test]
    #[should_panic]
    fn cross_entropy_target_out_of_range() {
        let _ = softmax_cross_entropy(&[0.0, 1.0], 2);
    }
}
