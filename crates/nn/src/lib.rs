//! From-scratch neural-network training framework for the PermDNN reproduction.
//!
//! The paper's accuracy results (Tables II–V, the LeNet-5 conversion of Section III-F and
//! the BLEU scores of the NMT experiment) require *training* permuted-diagonal networks —
//! both from scratch and from dense pre-trained models — and comparing them against dense
//! baselines of the same architecture. No external deep-learning framework is used; this
//! crate provides everything needed at laptop scale:
//!
//! * [`layers`] — a small layer zoo ([`layers::Dense`], [`layers::PdDense`],
//!   [`layers::CirculantDense`], ReLU/Tanh) behind a common [`layers::Layer`] trait, each
//!   with forward, backward and SGD update.
//! * [`mlp`] — a multi-layer-perceptron classifier assembled from those layers, with a
//!   trainer, accuracy evaluation, and conversion between dense and PD weight formats
//!   (the pre-trained-model path of Section III-F).
//! * [`conv_net`] — a LeNet-style CNN whose convolution layers can be dense or
//!   permuted-diagonal ([`permdnn_core::BlockPermDiagTensor4`]), plus its frozen serving
//!   form [`conv_net::FrozenConvNet`]: convolutions im2col-lowered onto
//!   `CompressedLinear`, served and quantized through the same stack as FC layers.
//! * [`lstm`] — an LSTM cell and a sequence-to-sequence copy/translation task whose four
//!   gate matrices can be dense or permuted-diagonal, with BLEU scoring; freezing
//!   ([`lstm::Seq2Seq::freeze`]) builds the *requested* deployment format from the
//!   trained weights and serves per-timestep batched gate matmuls
//!   ([`lstm::FrozenSeq2Seq`]).
//! * [`data`] — deterministic synthetic datasets (Gaussian clusters, procedural glyph
//!   images, synthetic translation pairs) standing in for ImageNet / CIFAR-10 / IWSLT'15,
//!   which are not available offline (see DESIGN.md for the substitution argument).
//! * [`experiments`] — the scaled-down versions of the paper's accuracy experiments,
//!   returning structured results that the `permdnn-bench` binaries print as tables.
//! * [`quantize`] — the deployment path to the 16-bit fixed-point backend: per-layer
//!   Q-format calibration and conversion of any trained classifier into a network of
//!   [`permdnn_core::QuantizedLinear`] layers with activation requantization between them.
//! * [`snapshot`] — durable model artifacts: `save`/`load` on every frozen model
//!   (MLP, conv net, seq2seq) over the binary container of
//!   [`permdnn_core::snapshot`], the workspace-wide tensor codec, and the
//!   batch-model loader the serving registry routes through.
//! * [`spec`] — mixed-format model specifications: one [`WeightFormat`] (+ optional
//!   q16) per hidden layer, realized from a trained dense reference — the candidate
//!   layer the per-layer format autotuner (`permdnn_bench::tune`) searches over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activations;
pub mod conv_net;
pub mod data;
pub mod experiments;
pub mod layers;
pub mod loss;
pub mod lstm;
pub mod metrics;
pub mod mlp;
pub mod quantize;
pub mod snapshot;
pub mod spec;

pub use conv_net::{ConvClassifier, FrozenConvNet};
pub use layers::{Layer, WeightFormat};
pub use lstm::{capture_proxy_warnings, FrozenSeq2Seq, Seq2Seq};
pub use mlp::MlpClassifier;
pub use quantize::{quantize_mlp, LayerQuantization, QuantizationReport};
pub use spec::{LayerSpec, ModelSpec, SpecError};
