//! Benchmarks the cycle-model evaluation across PE counts (the machinery behind Fig. 13)
//! and the small-engine functional scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pd_tensor::init::seeded_rng;
use permdnn_core::BlockPermDiagMatrix;
use permdnn_sim::comparison::fig13_scalability;
use permdnn_sim::schedule::schedule_dense_input;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    for n_pe in [8usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("fig13_sweep_up_to", n_pe),
            &n_pe,
            |b, &n| b.iter(|| fig13_scalability(std::hint::black_box(&[8, n]))),
        );
    }
    let matrix = BlockPermDiagMatrix::random(128, 128, 4, &mut seeded_rng(1));
    group.bench_function("functional_schedule_128x128_4pe", |b| {
        b.iter(|| schedule_dense_input(std::hint::black_box(&matrix), 4, 2, 64))
    });
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
