//! Software analogue of Fig. 12: executes the same FC layer from its permuted-diagonal
//! representation (index-free, zero-skipping) and from its EIE encoding (tag + relative
//! index decode, padding entries), plus the cycle-model simulations used by the fig12
//! binary.

use criterion::{criterion_group, criterion_main, Criterion};
use pd_tensor::init::{seeded_rng, xavier_uniform};
use permdnn_core::matvec::matvec_column_wise;
use permdnn_core::sparsity::exact_sparsity_vector;
use permdnn_core::BlockPermDiagMatrix;
use permdnn_prune::eie_format::{uniform_codebook, EieEncodedMatrix};
use permdnn_prune::magnitude_prune;
use permdnn_sim::eie::{self, EieConfig};
use permdnn_sim::workload::workload_by_name;
use permdnn_sim::{engine, EngineConfig};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_software_analogue_1024x1024");
    let rows = 1024;
    let cols = 1024;
    let p = 10;
    let pd = BlockPermDiagMatrix::random(rows, cols, p, &mut seeded_rng(1));
    let dense = xavier_uniform(&mut seeded_rng(2), rows, cols);
    let pruned = magnitude_prune(&dense, 1.0 / p as f64).pruned;
    let codebook = uniform_codebook(4, pruned.max_abs());
    let eie_encoded = EieEncodedMatrix::encode(&pruned, &codebook, 4, 4);
    let x = exact_sparsity_vector(&mut seeded_rng(3), cols, 0.358);

    group.bench_function("permdnn_zero_skipping_matvec", |b| {
        b.iter(|| matvec_column_wise(&pd, std::hint::black_box(&x)).unwrap())
    });
    group.bench_function("eie_encoded_matvec", |b| {
        b.iter(|| eie_encoded.matvec(std::hint::black_box(&x)))
    });
    group.finish();
}

fn bench_simulators(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_model_simulation");
    let w = workload_by_name("Alex-FC7").unwrap();
    let permdnn_cfg = EngineConfig::paper_32pe();
    let eie_cfg = EieConfig::projected_28nm();
    group.bench_function("permdnn_engine_model_alex_fc7", |b| {
        b.iter(|| engine::simulate_layer(&permdnn_cfg, std::hint::black_box(&w)))
    });
    group.bench_function("eie_model_alex_fc7", |b| {
        b.iter(|| eie::simulate_layer(&eie_cfg, std::hint::black_box(&w), &mut seeded_rng(4)))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_simulators);
criterion_main!(benches);
