//! Micro-benchmarks of the permuted-diagonal mat-vec kernels against dense and CSC
//! sparse baselines at equal layer shape (software analogue of the Section III-G
//! computation-reduction claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pd_tensor::init::{seeded_rng, xavier_uniform};
use permdnn_core::matvec::matvec_column_wise;
use permdnn_core::BlockPermDiagMatrix;
use permdnn_prune::{magnitude_prune, CscMatrix};

fn bench_pd_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pd_kernels_1024x1024");
    let rows = 1024;
    let cols = 1024;
    let p = 8;
    let mut rng = seeded_rng(1);
    let dense = xavier_uniform(&mut rng, rows, cols);
    let pd = BlockPermDiagMatrix::random(rows, cols, p, &mut rng);
    let pruned = magnitude_prune(&dense, 1.0 / p as f64).pruned;
    let csc = CscMatrix::from_dense(&pruned);
    let x: Vec<f32> = (0..cols).map(|i| ((i as f32) * 0.37).sin()).collect();

    group.bench_function("dense_matvec", |b| {
        b.iter(|| dense.matvec(std::hint::black_box(&x)))
    });
    group.bench_function(BenchmarkId::new("pd_matvec_row_wise", p), |b| {
        b.iter(|| pd.matvec(std::hint::black_box(&x)))
    });
    group.bench_function(BenchmarkId::new("pd_matvec_column_wise", p), |b| {
        b.iter(|| matvec_column_wise(&pd, std::hint::black_box(&x)).unwrap())
    });
    group.bench_function(BenchmarkId::new("csc_matvec_same_density", p), |b| {
        b.iter(|| csc.matvec(std::hint::black_box(&x)))
    });
    group.finish();
}

criterion_group!(benches, bench_pd_kernels);
criterion_main!(benches);
