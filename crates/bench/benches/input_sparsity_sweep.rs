//! Sweeps the input (activation) sparsity and measures the zero-skipping kernel — the
//! dynamic-sparsity advantage PermDNN has over CIRCNN (Section III-H).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pd_tensor::init::seeded_rng;
use permdnn_core::matvec::matvec_column_wise;
use permdnn_core::sparsity::exact_sparsity_vector;
use permdnn_core::BlockPermDiagMatrix;

fn bench_input_sparsity(c: &mut Criterion) {
    let mut group = c.benchmark_group("input_sparsity_sweep_2048x2048_p8");
    let pd = BlockPermDiagMatrix::random(2048, 2048, 8, &mut seeded_rng(1));
    for nonzero_pct in [100usize, 75, 50, 35, 20, 10] {
        let x = exact_sparsity_vector(&mut seeded_rng(2), 2048, nonzero_pct as f64 / 100.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nonzero_pct}pct_nonzero")),
            &x,
            |b, x| b.iter(|| matvec_column_wise(&pd, std::hint::black_box(x)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_input_sparsity);
criterion_main!(benches);
