//! Benchmarks the CIRCNN-style block-circulant mat-vec (direct and FFT) against the
//! permuted-diagonal mat-vec at equal compression ratio (Table VI's arithmetic claim).

use criterion::{criterion_group, criterion_main, Criterion};
use pd_tensor::init::seeded_rng;
use permdnn_circulant::BlockCirculantMatrix;
use permdnn_core::BlockPermDiagMatrix;

fn bench_circulant_vs_pd(c: &mut Criterion) {
    let mut group = c.benchmark_group("circulant_vs_pd_512x512_k8");
    let n = 512;
    let k = 8;
    let pd = BlockPermDiagMatrix::random(n, n, k, &mut seeded_rng(1));
    let circ = BlockCirculantMatrix::random(n, n, k, &mut seeded_rng(2));
    let x: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.21).cos()).collect();

    group.bench_function("permuted_diagonal_matvec", |b| {
        b.iter(|| pd.matvec(std::hint::black_box(&x)))
    });
    group.bench_function("circulant_matvec_fft", |b| {
        b.iter(|| circ.matvec_fft(std::hint::black_box(&x)).unwrap())
    });
    group.bench_function("circulant_matvec_direct", |b| {
        b.iter(|| circ.matvec_direct(std::hint::black_box(&x)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_circulant_vs_pd);
criterion_main!(benches);
