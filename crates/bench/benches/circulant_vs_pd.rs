//! Benchmarks the CIRCNN-style block-circulant mat-vec (direct and FFT) against the
//! permuted-diagonal mat-vec at equal compression ratio (Table VI's arithmetic claim).
//!
//! The format comparison itself runs through the `CompressedLinear` registry:
//! one loop, every format, no per-format code at the measurement site.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pd_tensor::init::seeded_rng;
use permdnn_circulant::BlockCirculantMatrix;
use permdnn_nn::layers::WeightFormat;

fn bench_formats_through_trait(c: &mut Criterion) {
    let mut group = c.benchmark_group("compressed_linear_512x512_p8");
    let n = 512;
    let mut rng = seeded_rng(1);
    let x: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.21).cos()).collect();
    let mut y = vec![0.0f32; n];

    for format in [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 8 },
        WeightFormat::Circulant { k: 8 },
        WeightFormat::UnstructuredSparse { p: 8 },
        WeightFormat::SharedPermutedDiagonal { p: 8, tag_bits: 4 },
    ] {
        let w = format.build(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(w.label()), &w, |b, w| {
            b.iter(|| w.matvec_into(std::hint::black_box(&x), &mut y).unwrap())
        });
    }
    group.finish();
}

fn bench_circulant_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("circulant_kernels_512x512_k8");
    let circ = BlockCirculantMatrix::random(512, 512, 8, &mut seeded_rng(2));
    let x: Vec<f32> = (0..512).map(|i| ((i as f32) * 0.21).cos()).collect();

    group.bench_function("circulant_matvec_fft", |b| {
        b.iter(|| circ.matvec_fft(std::hint::black_box(&x)).unwrap())
    });
    group.bench_function("circulant_matvec_direct", |b| {
        b.iter(|| circ.matvec_direct(std::hint::black_box(&x)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_formats_through_trait,
    bench_circulant_kernels
);
criterion_main!(benches);
