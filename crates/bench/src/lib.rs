//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the paper's
//! evaluation (see DESIGN.md §4 for the index); this library provides the small amount of
//! shared formatting and argument handling they use so the binaries stay tiny.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod tune;

/// Returns `true` when the binary was invoked with `--full`, selecting the longer-running
/// (non-quick) experiment configuration.
pub fn full_run_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Prints a titled separator so the binaries' output reads like the paper's tables.
pub fn print_header(title: &str) {
    println!("{}", "=".repeat(title.len().max(20)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(20)));
}

/// Formats a ratio as the paper prints it ("3.3x").
pub fn ratio(value: f64) -> String {
    format!("{value:.2}x")
}

/// Resolves the JSON artifact path every sweep binary writes: `--out PATH`
/// when given on the command line, else `default`.
pub fn out_path(default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

/// Writes a sweep's JSON artifact and prints the confirmation line CI greps
/// for — the shared tail of every `*_sweep` binary.
///
/// # Panics
///
/// Panics if the file cannot be written: a bench run whose artifact is lost
/// must fail loudly.
pub fn write_artifact(path: &str, json: &str) {
    std::fs::write(path, json).expect("write bench JSON");
    println!("\nwrote {path}");
}

/// Asserts a measured value stays at or above its regression floor, with the
/// uniform message every sweep uses.
///
/// # Panics
///
/// Panics when `value < floor` — sweeps run in CI precisely so these floors
/// gate merges.
pub fn assert_floor(what: &str, value: f64, floor: f64) {
    assert!(
        value >= floor,
        "{what}: {value:.3} fell below the {floor:.3} floor"
    );
}

/// Formats an `f64` for the hand-rolled JSON reports: plain fixed-point at
/// `decimals` places (never scientific notation, which JSON consumers of
/// these artifacts do not expect).
pub fn json_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(3.333), "3.33x");
        assert_eq!(ratio(11.514), "11.51x");
    }

    #[test]
    fn out_path_falls_back_to_default() {
        // The test harness never passes --out.
        assert_eq!(out_path("BENCH_x.json"), "BENCH_x.json");
    }

    #[test]
    fn floor_assertions_and_json_floats() {
        assert_floor("throughput", 3.0, 3.0);
        assert_floor("speedup", 1.51, 1.5);
        assert_eq!(json_f64(2.71875, 2), "2.72");
        assert_eq!(json_f64(1200.0, 1), "1200.0");
    }

    #[test]
    #[should_panic(expected = "fell below")]
    fn floor_violations_panic() {
        assert_floor("throughput", 2.9, 3.0);
    }
}
