//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the paper's
//! evaluation (see DESIGN.md §4 for the index); this library provides the small amount of
//! shared formatting and argument handling they use so the binaries stay tiny.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;

/// Returns `true` when the binary was invoked with `--full`, selecting the longer-running
/// (non-quick) experiment configuration.
pub fn full_run_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Prints a titled separator so the binaries' output reads like the paper's tables.
pub fn print_header(title: &str) {
    println!("{}", "=".repeat(title.len().max(20)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(20)));
}

/// Formats a ratio as the paper prints it ("3.3x").
pub fn ratio(value: f64) -> String {
    format!("{value:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(3.333), "3.33x");
        assert_eq!(ratio(11.514), "11.51x");
    }
}
