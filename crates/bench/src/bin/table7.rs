//! Regenerates Table VII — the benchmark FC layers (size, weight sparsity, activation
//! sparsity), including a measured activation-sparsity column from synthetic workloads.

use pd_tensor::init::seeded_rng;
use permdnn_core::sparsity::{exact_sparsity_vector, SparsityProfile};
use permdnn_sim::TABLE7_WORKLOADS;

fn main() {
    permdnn_bench::print_header("Table VII — information of evaluated FC layers");
    println!(
        "{:<10} {:>14} {:>16} {:>20} {:>20}  description",
        "layer", "size", "weight (1/p)", "activation (paper)", "activation (meas.)"
    );
    let mut rng = seeded_rng(7);
    for w in &TABLE7_WORKLOADS {
        let x = exact_sparsity_vector(&mut rng, w.cols, w.activation_nonzero_fraction);
        let measured = SparsityProfile::measure(&x).nonzero_fraction();
        println!(
            "{:<10} {:>14} {:>15.1}% {:>19.1}% {:>19.1}%  {}",
            w.name,
            format!("{}x{}", w.rows, w.cols),
            100.0 * w.weight_density(),
            100.0 * w.activation_nonzero_fraction,
            100.0 * measured,
            w.description
        );
    }
}
