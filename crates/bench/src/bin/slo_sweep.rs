//! SLO / admission-control sweep over the deterministic traffic engine.
//!
//! Three admission policies (`Fifo`, `Priority`, `EarliestDeadline`) serve two
//! arrival processes (a Zipf-skewed multi-tenant mix and an on/off flash
//! crowd) against a three-model registry with per-model `SloTarget`s, at a
//! swept offered-load multiplier. For every `(process, policy, load)` cell the
//! sweep records the p99 latency, SLO attainment and shed rate into
//! `BENCH_slo.json` — the p99-vs-offered-load and shed-rate curves the
//! admission layer is judged by.
//!
//! Asserted acceptance bars:
//!
//! * shed rate is monotonically non-decreasing in offered load for every
//!   `(process, policy)` curve;
//! * admission is policy-independent, so at any `(process, load)` cell all
//!   three policies shed the *same* requests (equal shed rates);
//! * `EarliestDeadline` attains ≥ `Fifo`'s SLO attainment on the flash-crowd
//!   process at every load (at that equal shed rate);
//! * decisions and outputs are bit-identical across worker counts.
//!
//! Run: `cargo run --release -p permdnn-bench --bin slo_sweep [-- --out PATH]`

use std::fmt::Write as _;
use std::sync::Arc;

use pd_tensor::init::seeded_rng;
use permdnn_bench::{out_path, print_header, write_artifact};
use permdnn_core::snapshot::{load_tensor, save_tensor, SnapshotCodec};
use permdnn_core::BlockPermDiagMatrix;
use permdnn_runtime::{
    interleave_streams, AdmissionPolicy, BatchConfig, BatchModel, ModelLoader, ModelRegistry,
    OnOffFlashCrowd, ParallelExecutor, ServeConfig, ServiceModel, SingleLayerModel, SloTarget,
    TaggedRequest, TrafficConfig, TrafficReport, UniformProcess, ZipfMix,
};

/// Nominal tick rate: 1 tick = 1 µs.
const TICK_HZ: f64 = 1e6;
/// Worker count the curves are generated at (decisions are worker-count
/// independent; this only scales completion ticks).
const WORKERS: usize = 2;
/// Offered-load multipliers: mean inter-arrival gaps shrink as `1 / load`.
/// Engine capacity sits near load ≈ 4, so the upper half of the sweep is
/// genuinely oversubscribed and exercises shedding.
const LOADS: [f64; 6] = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
/// Requests in the Zipf mix per load level.
const ZIPF_REQUESTS: usize = 400;
/// Mean inter-arrival gap of the Zipf mix at load 1.0.
const ZIPF_BASE_MEAN: f64 = 6.0;

/// One registered model: a permuted-diagonal layer plus its SLO.
struct ModelSpec {
    id: &'static str,
    dim: usize,
    seed: u64,
    slo: SloTarget,
}

fn specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            id: "fast",
            dim: 32,
            seed: 0x510,
            slo: SloTarget::new(300, 7, 24).expect("valid"),
        },
        ModelSpec {
            id: "mid",
            dim: 64,
            seed: 0x511,
            slo: SloTarget::new(1_200, 3, 48).expect("valid"),
        },
        ModelSpec {
            id: "bulk",
            dim: 256,
            seed: 0x512,
            slo: SloTarget::new(60_000, 1, 192).expect("valid"),
        },
    ]
}

fn tensor_loader() -> ModelLoader {
    Box::new(|bytes| {
        let op = load_tensor(bytes, &SnapshotCodec::new())?;
        Ok(Arc::new(SingleLayerModel::new(op)) as Arc<dyn BatchModel>)
    })
}

fn build_registry() -> ModelRegistry {
    let mut reg = ModelRegistry::new(tensor_loader(), u64::MAX);
    for spec in specs() {
        let w = BlockPermDiagMatrix::random(spec.dim, spec.dim, 4, &mut seeded_rng(spec.seed));
        reg.insert_with_slo(spec.id, save_tensor(&w).expect("snapshot"), spec.slo)
            .expect("valid snapshot");
    }
    reg
}

/// The Zipf-skewed multi-tenant mix: hot "fast", warm "mid", cold "bulk".
fn zipf_stream(load: f64) -> Vec<TaggedRequest> {
    let models: Vec<(String, usize)> = specs().iter().map(|s| (s.id.to_string(), s.dim)).collect();
    ZipfMix::new(models, 1.2, ZIPF_BASE_MEAN / load)
        .expect("valid mix")
        .stream(0x520, ZIPF_REQUESTS)
}

/// The flash-crowd process: on/off bursts on "fast" over a steady "mid"
/// stream, with a saturated "bulk" wave landing at tick 0 — so the crowd
/// arrives while several engine-hogging bulk batches are already queued.
/// Whether the fast requests make their deadline is then decided purely by
/// the ordering policy: Fifo serves the earlier-closed bulk backlog first,
/// EarliestDeadline lets the crowd jump it.
fn flash_crowd_stream(load: f64) -> Vec<TaggedRequest> {
    let crowd = OnOffFlashCrowd::new(32, 40, 400, 1.0 / load)
        .expect("valid crowd")
        .stream(0x530, 160);
    let mid = UniformProcess::new(64, 12.0 / load)
        .expect("valid process")
        .stream(0x531, 80);
    let bulk = UniformProcess::new(256, 0.0)
        .expect("valid process")
        .stream(0x532, 40);
    interleave_streams(vec![
        ("fast".to_string(), crowd),
        ("mid".to_string(), mid),
        ("bulk".to_string(), bulk),
    ])
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        batching: BatchConfig::new(8, 16),
        service: ServiceModel::default(),
    }
}

fn run(policy: AdmissionPolicy, stream: Vec<TaggedRequest>, workers: usize) -> TrafficReport {
    build_registry()
        .serve_traffic(
            &ParallelExecutor::new(workers),
            &TrafficConfig::new(serve_cfg(), policy),
            stream,
        )
        .expect("all ids registered")
}

fn policy_label(policy: AdmissionPolicy) -> &'static str {
    match policy {
        AdmissionPolicy::Fifo => "fifo",
        AdmissionPolicy::Priority => "priority",
        AdmissionPolicy::EarliestDeadline => "edf",
    }
}

struct Point {
    load: f64,
    offered: usize,
    p99_latency_ticks: u64,
    attainment: f64,
    shed_rate: f64,
}

struct Curve {
    process: &'static str,
    policy: &'static str,
    points: Vec<Point>,
}

fn main() {
    let out_path = out_path("BENCH_slo.json");
    print_header("SLO / admission-control sweep");

    let policies = [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::Priority,
        AdmissionPolicy::EarliestDeadline,
    ];
    type StreamFn = fn(f64) -> Vec<TaggedRequest>;
    let processes: [(&'static str, StreamFn); 2] = [
        ("zipf_mix", zipf_stream),
        ("flash_crowd", flash_crowd_stream),
    ];

    let mut curves: Vec<Curve> = Vec::new();
    for (process, stream_of) in processes {
        for policy in policies {
            println!(
                "\n{process} × {} ({WORKERS} workers):",
                policy_label(policy)
            );
            println!(
                "  {:>5} {:>8} {:>10} {:>11} {:>10}",
                "load", "offered", "p99 ticks", "attainment", "shed rate"
            );
            let mut points = Vec::new();
            for load in LOADS {
                let report = run(policy, stream_of(load), WORKERS);
                let point = Point {
                    load,
                    offered: report.offered(),
                    p99_latency_ticks: report.serve.latency_percentile_ticks(0.99),
                    attainment: report.attainment(),
                    shed_rate: report.shed_rate(),
                };
                println!(
                    "  {:>5.1} {:>8} {:>10} {:>11.3} {:>10.3}",
                    point.load,
                    point.offered,
                    point.p99_latency_ticks,
                    point.attainment,
                    point.shed_rate
                );
                points.push(point);
            }
            // Acceptance bar: shedding never relaxes as offered load grows.
            for pair in points.windows(2) {
                assert!(
                    pair[1].shed_rate >= pair[0].shed_rate,
                    "{process}/{}: shed rate fell from {:.4} (load {}) to {:.4} (load {})",
                    policy_label(policy),
                    pair[0].shed_rate,
                    pair[0].load,
                    pair[1].shed_rate,
                    pair[1].load
                );
            }
            curves.push(Curve {
                process,
                policy: policy_label(policy),
                points,
            });
        }
    }

    // Admission is policy-independent: at any (process, load) cell every
    // policy sheds the same requests.
    for chunk in curves.chunks(policies.len()) {
        for curve in &chunk[1..] {
            for (a, b) in chunk[0].points.iter().zip(curve.points.iter()) {
                assert_eq!(
                    a.shed_rate, b.shed_rate,
                    "{}/{}: shed rate must not depend on the policy",
                    curve.process, curve.policy
                );
            }
        }
    }

    // EarliestDeadline must do no worse than Fifo on the flash crowd — same
    // shed set, better (or equal) ordering.
    let attainment = |process: &str, policy: &str| -> Vec<f64> {
        curves
            .iter()
            .find(|c| c.process == process && c.policy == policy)
            .expect("curve exists")
            .points
            .iter()
            .map(|p| p.attainment)
            .collect()
    };
    let fifo = attainment("flash_crowd", "fifo");
    let edf = attainment("flash_crowd", "edf");
    for (i, (f, e)) in fifo.iter().zip(edf.iter()).enumerate() {
        assert!(
            e >= f,
            "flash crowd at load {}: EDF attainment {e:.4} below Fifo {f:.4}",
            LOADS[i]
        );
    }
    assert!(
        edf[LOADS.len() - 1] > fifo[LOADS.len() - 1],
        "EDF should strictly rescue crowd requests at saturation"
    );
    println!("\nEDF vs Fifo attainment on flash crowd: {edf:?} vs {fifo:?}");

    // Decisions are worker-count independent: same admitted set, same batch
    // membership, same output bits.
    let probe = || flash_crowd_stream(4.0);
    let baseline = run(AdmissionPolicy::EarliestDeadline, probe(), 1);
    for workers in [2usize, 7] {
        let report = run(AdmissionPolicy::EarliestDeadline, probe(), workers);
        assert_eq!(report.rejections, baseline.rejections);
        let decisions = |r: &TrafficReport| -> Vec<(String, u64, usize, Vec<f32>)> {
            r.serve
                .completed
                .iter()
                .map(|tc| {
                    (
                        tc.model_id.clone(),
                        tc.completed.id,
                        tc.completed.batch_size,
                        tc.completed.output.clone(),
                    )
                })
                .collect()
        };
        assert_eq!(
            decisions(&report),
            decisions(&baseline),
            "{workers} workers: decisions must be bit-identical"
        );
    }
    println!("decisions bit-identical across 1/2/7 workers");

    let json = render_json(&curves);
    write_artifact(&out_path, &json);
}

fn render_json(curves: &[Curve]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"slo_sweep\",");
    let _ = writeln!(s, "  \"tick_hz\": {TICK_HZ},");
    let _ = writeln!(s, "  \"workers\": {WORKERS},");
    s.push_str("  \"models\": [\n");
    let spec_list = specs();
    for (i, spec) in spec_list.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"id\": \"{}\", \"dim\": {}, \"deadline_ticks\": {}, \"priority\": {}, \
             \"max_queue_depth\": {}}}",
            spec.id, spec.dim, spec.slo.deadline_ticks, spec.slo.priority, spec.slo.max_queue_depth
        );
        s.push_str(if i + 1 < spec_list.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"curves\": [\n");
    for (i, curve) in curves.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"process\": \"{}\", \"policy\": \"{}\", \"points\": [",
            curve.process, curve.policy
        );
        for (j, p) in curve.points.iter().enumerate() {
            let _ = write!(
                s,
                "      {{\"offered_load\": {}, \"offered\": {}, \"p99_latency_ticks\": {}, \
                 \"attainment\": {:.4}, \"shed_rate\": {:.4}}}",
                p.load, p.offered, p.p99_latency_ticks, p.attainment, p.shed_rate
            );
            s.push_str(if j + 1 < curve.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("    ]}");
        s.push_str(if i + 1 < curves.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
