//! Regenerates Table IX — power and area breakdowns of one PE and the 32-PE engine.

use permdnn_sim::config::EngineConfig;
use permdnn_sim::power::{engine_cost, others_cost, pe_breakdown, pe_totals};

fn main() {
    permdnn_bench::print_header("Table IX — power and area breakdowns (28 nm, 1.2 GHz)");
    let (pe_power, pe_area) = pe_totals();
    println!("PE breakdown:");
    println!(
        "{:<16} {:>12} {:>10} {:>12} {:>10}",
        "component", "power (mW)", "%", "area (mm2)", "%"
    );
    for c in pe_breakdown() {
        println!(
            "{:<16} {:>12.3} {:>9.1}% {:>12.4} {:>9.1}%",
            c.name,
            c.power_mw,
            100.0 * c.power_mw / pe_power,
            c.area_mm2,
            100.0 * c.area_mm2 / pe_area
        );
    }
    println!(
        "{:<16} {:>12.3} {:>10} {:>12.3}",
        "Total (one PE)", pe_power, "", pe_area
    );
    println!();
    let cfg = EngineConfig::paper_32pe();
    let total = engine_cost(&cfg);
    let others = others_cost();
    println!("PERMDNN computing engine breakdown:");
    println!(
        "{:<16} {:>12} {:>12}",
        "component", "power (mW)", "area (mm2)"
    );
    println!(
        "{:<16} {:>12.1} {:>12.2}",
        "32 PEs",
        pe_power * 32.0,
        pe_area * 32.0
    );
    println!(
        "{:<16} {:>12.1} {:>12.2}",
        "Others", others.power_mw, others.area_mm2
    );
    println!(
        "{:<16} {:>12.1} {:>12.2}",
        "Total",
        total.power_w * 1000.0,
        total.area_mm2
    );
    println!();
    println!("Paper reference: 21.874 mW / 0.271 mm2 per PE; 703.4 mW / 8.85 mm2 for the engine.");
}
