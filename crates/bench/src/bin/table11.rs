//! Regenerates Table XI — CIRCNN vs PERMDNN throughput and energy efficiency.
//!
//! Paper reference: PERMDNN achieves 11.51x higher equivalent throughput and 3.89x better
//! energy efficiency than the 28 nm-projected CIRCNN (both from synthesis reports).

use permdnn_sim::circnn::{circnn_rows, permdnn_row, table11_ratios, AdvantageAttribution};
use permdnn_sim::EngineConfig;

fn main() {
    permdnn_bench::print_header("Table XI — comparison of CIRCNN and PERMDNN (synthesis)");
    let cfg = EngineConfig::paper_32pe();
    let (reported, projected) = circnn_rows();
    let pd = permdnn_row(&cfg);
    println!(
        "{:<34} {:>12} {:>10} {:>18} {:>16}",
        "design", "clock (MHz)", "power (W)", "throughput (TOPS)", "eff. (TOPS/W)"
    );
    for row in [&reported, &projected, &pd] {
        println!(
            "{:<34} {:>12.0} {:>10.3} {:>18.2} {:>16.2}",
            row.design, row.clock_mhz, row.power_w, row.equivalent_tops, row.tops_per_watt
        );
    }
    let (t_ratio, e_ratio) = table11_ratios(&cfg);
    println!();
    println!(
        "PERMDNN vs projected CIRCNN: {} throughput, {} energy efficiency (paper: 11.51x, 3.89x).",
        permdnn_bench::ratio(t_ratio),
        permdnn_bench::ratio(e_ratio)
    );
    let attr = AdvantageAttribution::paper_estimate();
    println!(
        "Attribution (Section V-C): ~{:.0}x from input sparsity + ~{:.0}x from real-number arithmetic.",
        attr.input_sparsity_factor, attr.arithmetic_factor
    );
}
