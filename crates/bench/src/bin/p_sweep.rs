//! Ablation: task accuracy versus block size p (the controllable compression knob of
//! Section III-G). Not a numbered table in the paper; supports the design-space claim.

fn main() {
    let quick = !permdnn_bench::full_run_requested();
    permdnn_bench::print_header("Ablation — accuracy vs block size p");
    let report = permdnn_nn::experiments::p_sweep::run(47, quick, &[1, 2, 4, 5, 8, 10]);
    print!("{}", report.to_table());
}
