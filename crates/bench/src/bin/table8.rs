//! Regenerates Table VIII — the design configuration parameters of the 32-PE engine.

use permdnn_sim::EngineConfig;

fn main() {
    permdnn_bench::print_header("Table VIII — design configuration parameters");
    let cfg = EngineConfig::paper_32pe();
    println!("PE parameters:");
    println!(
        "  multipliers (N_MUL):            {} x {} bits",
        cfg.pe.n_mul, cfg.pe.mul_width_bits
    );
    println!(
        "  accumulators (N_ACC):           {} x {} bits",
        cfg.pe.n_acc, cfg.pe.acc_width_bits
    );
    println!(
        "  weight SRAM sub-banks:          {} x {} bits x {} deep = {} KB",
        cfg.pe.weight_sram_subbanks,
        cfg.pe.weight_sram_width_bits,
        cfg.pe.weight_sram_depth,
        cfg.pe.weight_sram_bytes() / 1024
    );
    println!(
        "  permutation SRAM:               {} bits x {} deep = {} KB",
        cfg.pe.perm_sram_width_bits,
        cfg.pe.perm_sram_depth,
        cfg.pe.perm_sram_bytes() / 1024
    );
    println!("Engine parameters:");
    println!("  PEs (N_PE):                     {}", cfg.n_pe);
    println!("  clock frequency:                {:.1} GHz", cfg.clock_ghz);
    println!(
        "  quantization / weight sharing:  {} bits / {} bits",
        cfg.quant_bits, cfg.weight_sharing_bits
    );
    println!("  pipeline stages:                {}", cfg.pipeline_stages);
    println!(
        "  activation SRAM:                {} banks x {} bits x {} deep = {} KB",
        cfg.act_sram_banks,
        cfg.act_sram_width_bits,
        cfg.act_sram_depth,
        cfg.act_sram_bytes() / 1024
    );
    println!("  activation FIFO depth:          {}", cfg.act_fifo_depth);
    println!();
    println!(
        "Derived: peak {} GOPS on the compressed model; capacity for {}M compressed weights",
        cfg.peak_gops_compressed(),
        cfg.max_compressed_weights_4bit() / (1024 * 1024)
    );
    println!("with 4-bit weight sharing (2x the compressed VGG FC6, as noted in Section V-B).");
}
