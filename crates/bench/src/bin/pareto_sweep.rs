//! Per-layer format autotuner sweep (`BENCH_pareto.json`).
//!
//! Runs the deterministic beam search of `permdnn_bench::tune` over per-layer
//! (format × q16) assignments, scores every distinct candidate on held-out
//! accuracy / multiplies per example / snapshot bytes, and emits the
//! 3-objective Pareto frontier plus the chosen knee point — the model that is
//! also committed as the `mlp_mixed` golden fixture.
//!
//! Asserted acceptance bars:
//!
//! * **Bit-reproducible** — running the sweep twice from the same seed yields
//!   byte-identical JSON and the identical chosen spec.
//! * **Frontier beats dense** — some frontier point is strictly better than
//!   the all-dense f32 baseline on at least 2 of the 3 objectives.
//! * **Knee accuracy** — the chosen model stays within 1 accuracy point of
//!   all-dense while multiplying and storing strictly less.
//! * **Serving matches the score** — the chosen and dense models served
//!   through a `ModelRegistry` produce outputs bit-identical to direct
//!   evaluation, and the registry's final tick equals
//!   `modeled_completion_ticks` fed with the scored multiply count — the
//!   score is the serving cost, not an estimate of it.
//!
//! Run: `cargo run --release -p permdnn-bench --bin pareto_sweep [-- --out PATH]`

use std::collections::BTreeMap;

use permdnn_bench::tune::{render_json, tune, TuneConfig};
use permdnn_bench::{out_path, print_header, ratio, write_artifact};
use permdnn_nn::MlpClassifier;
use permdnn_runtime::{
    interleave_streams, modeled_completion_ticks, seeded_request_stream, BatchConfig,
    ModelRegistry, ParallelExecutor, ServeConfig, ServiceModel,
};

/// Requests in the serving cross-check.
const REQUESTS: usize = 24;
/// Worker counts the serving cross-check sweeps.
const WORKERS: [usize; 3] = [1, 2, 4];

fn main() {
    let out = out_path("BENCH_pareto.json");
    print_header("Per-layer format autotuner: accuracy / muls / size Pareto sweep");

    let cfg = TuneConfig::sweep_config();
    let run = tune(&cfg).expect("sweep config is valid");

    // Bit-reproducibility: a second full run from the same seed must agree
    // byte for byte.
    let rerun = tune(&cfg).expect("sweep config is valid");
    let json = render_json(&cfg, &run);
    assert_eq!(
        json,
        render_json(&cfg, &rerun),
        "the sweep must be bit-reproducible from its seed"
    );
    assert_eq!(
        run.scored[run.chosen].label, rerun.scored[rerun.chosen].label,
        "both runs must choose the identical spec"
    );

    let dense = run.dense_objectives();
    let chosen = run.chosen_objectives();
    println!(
        "scored {} specs ({} per layer, beam {}), frontier size {}",
        run.scored.len(),
        cfg.layer_candidates().len(),
        cfg.beam_width,
        run.frontier.len()
    );
    println!(
        "\n{:<56} {:>8} {:>8} {:>8}  front",
        "spec", "acc", "muls", "bytes"
    );
    for (i, cand) in run.scored.iter().enumerate() {
        let mark = if i == run.chosen {
            "  <- chosen"
        } else if run.frontier.contains(&i) {
            "  *"
        } else {
            ""
        };
        println!(
            "{:<56} {:>8.4} {:>8} {:>8}{}",
            cand.label,
            cand.objectives.accuracy,
            cand.objectives.mul_count,
            cand.objectives.snapshot_bytes,
            mark
        );
    }

    // The frontier must strictly beat all-dense on >= 2 of the 3 objectives.
    let beats_dense = run
        .frontier
        .iter()
        .any(|&i| run.scored[i].objectives.strictly_better_count(&dense) >= 2);
    assert!(
        beats_dense,
        "some frontier point must be strictly better than all-dense on >= 2 objectives"
    );
    assert!(
        chosen.accuracy >= dense.accuracy - cfg.accuracy_slack,
        "chosen accuracy {:.4} fell more than {} below dense {:.4}",
        chosen.accuracy,
        cfg.accuracy_slack,
        dense.accuracy
    );
    assert!(
        chosen.mul_count < dense.mul_count && chosen.snapshot_bytes < dense.snapshot_bytes,
        "the knee point must multiply and store strictly less than all-dense"
    );
    println!(
        "\nchosen: {}  ({} acc vs {} dense, {} fewer muls, {} smaller)",
        run.scored[run.chosen].label,
        chosen.accuracy,
        dense.accuracy,
        ratio(dense.mul_count as f64 / chosen.mul_count as f64),
        ratio(dense.snapshot_bytes as f64 / chosen.snapshot_bytes as f64),
    );

    // Serving cross-check: route both models through the registry and demand
    // the scored multiply count predicts the serve loop exactly.
    let chosen_model = run.chosen_model().expect("chosen spec realizes");
    let dense_model = run.realize(run.all_dense).expect("dense spec realizes");
    serve_and_check("chosen", &chosen_model, chosen.mul_count, &cfg);
    serve_and_check("all-dense", &dense_model, dense.mul_count, &cfg);

    write_artifact(&out, &json);
}

/// Serves `model` through a fresh `ModelRegistry` at every swept worker
/// count, asserting (a) every output is bit-identical to direct evaluation
/// and (b) the report's final tick equals `modeled_completion_ticks` fed with
/// the *scored* multiply count.
fn serve_and_check(name: &str, model: &MlpClassifier, scored_muls: u64, cfg: &TuneConfig) {
    let bytes = model.save().expect("models snapshot");
    let serve_cfg = ServeConfig {
        batching: BatchConfig::new(8, 16),
        service: ServiceModel::default(),
    };
    let requests = seeded_request_stream(cfg.seed ^ 0x5EED, REQUESTS, cfg.input_dim, 3.0);
    let by_id: BTreeMap<u64, Vec<f32>> = requests
        .iter()
        .map(|r| (r.id, model.logits(&r.input)))
        .collect();
    let tagged = interleave_streams(vec![("tuned".to_string(), requests.clone())]);
    for workers in WORKERS {
        let mut reg = ModelRegistry::new(permdnn_nn::snapshot::batch_model_loader(), u64::MAX);
        reg.insert("tuned", bytes.clone()).expect("snapshot loads");
        let report = reg
            .serve_multi(&ParallelExecutor::new(workers), &serve_cfg, tagged.clone())
            .expect("the id is registered");
        assert_eq!(report.completed.len(), REQUESTS);
        for completion in &report.completed {
            assert_eq!(
                &completion.completed.output,
                by_id.get(&completion.completed.id).expect("known id"),
                "{name}: served output must equal direct evaluation"
            );
        }
        let predicted = modeled_completion_ticks(&requests, &serve_cfg, scored_muls, workers);
        assert_eq!(
            report.final_tick, predicted,
            "{name}: the scored multiply count must predict the serve loop exactly"
        );
        println!(
            "serving {name} at {workers} workers: {} requests, final tick {} (= modeled), outputs bit-exact",
            report.completed.len(),
            report.final_tick
        );
    }
}
