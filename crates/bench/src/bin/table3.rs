//! Regenerates Table III — Stanford NMT LSTM compression and BLEU.
//!
//! Paper reference: dense 419.4 MB / 23.3 BLEU; PD(8) 52.4 MB (8x) / 23.3 BLEU;
//! PD + 16-bit 26.2 MB (16x) / 23.2 BLEU.

fn main() {
    let quick = !permdnn_bench::full_run_requested();
    permdnn_bench::print_header("Table III — Stanford NMT (32-FC-layer LSTMs) on IWSLT15");
    let report = permdnn_nn::experiments::nmt::run(43, quick);
    print!("{}", report.to_table());
    println!();
    println!(
        "Paper reference: 419.4 MB -> 52.4 MB (8x) -> 26.2 MB (16x); BLEU 23.3 / 23.3 / 23.2."
    );
}
