//! Ablation: natural vs random permutation-parameter selection (Section III-D reports no
//! task-performance difference between the two).

fn main() {
    let quick = !permdnn_bench::full_run_requested();
    permdnn_bench::print_header("Ablation — natural vs random permutation indexing (Sec. III-D)");
    let report = permdnn_nn::experiments::perm_indexing::run(48, quick);
    print!("{}", report.to_table());
    println!();
    println!("Paper reference: \"no difference between task performance for these two setting methods\".");
}
