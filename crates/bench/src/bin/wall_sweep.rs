//! Wall-clock kernel sweep: the optimised serving kernels against the
//! retained per-call baselines, on real hardware time.
//!
//! Three workloads, one per kernel family the scratch-arena/FFT-plan pass
//! optimised:
//!
//! * **circulant** — [`BlockCirculantMatrix::matvec_fft_into`] (precomputed
//!   `FftPlan` + cached weight spectra + reusable scratch) vs
//!   [`BlockCirculantMatrix::matvec_fft_percall`] (the old body: per-call
//!   twiddle recomputation and weight-row FFTs, fresh allocations).
//! * **pd_f32** — the cache-blocked, arena-backed batched
//!   [`CompressedLinear::matmul_into`] on a permuted-diagonal matrix vs a
//!   per-row loop over [`BlockPermDiagMatrix::matvec_reference`] (the
//!   iterator-based column traversal with a fresh output per call).
//! * **q16_column_sparse** — the unrolled flat-accumulator
//!   [`QuantizedLinear::matmul_q_into`] vs a per-row loop over
//!   [`QuantizedLinear::matvec_q_reference`] (boxed `Accumulator24`s
//!   allocated per call).
//!
//! Every pair is asserted **bit-identical** before timing — the optimised
//! kernels are reorderings of memory traffic, never of arithmetic — and the
//! binary then asserts the speedup floors the optimisation pass committed to
//! (circulant ≥ 3x, the other two ≥ 1.2x). Unlike the tick-modeled sweeps,
//! these numbers are machine-dependent; the floors are chosen to hold on any
//! release build. Results land in `BENCH_wall.json` (override with
//! `--out PATH`).
//!
//! Run: `cargo run --release -p permdnn-bench --bin wall_sweep [-- --full]`

use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use pd_tensor::init::seeded_rng;
use pd_tensor::Matrix;
use permdnn_bench::{
    assert_floor, full_run_requested, out_path, print_header, ratio, write_artifact,
};
use permdnn_circulant::{BlockCirculantMatrix, CirculantScratch};
use permdnn_core::format::{BatchView, CompressedLinear};
use permdnn_core::qlinear::{QScheme, QScratch, QuantizedLinear};
use permdnn_core::{BlockPermDiagMatrix, Scratch};

struct WallPoint {
    workload: &'static str,
    rows: usize,
    cols: usize,
    batch: usize,
    reps: usize,
    optimized_us: f64,
    reference_us: f64,
    speedup: f64,
    floor: f64,
}

/// Median wall time of `reps` runs of `f`, in microseconds. `f` runs once
/// untimed first (warm-up: populates scratch arenas and the cache).
fn median_us(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let full = full_run_requested();
    let out_path = out_path("BENCH_wall.json");
    let (n, batch, reps) = if full {
        (1024usize, 64usize, 31usize)
    } else {
        (512, 32, 15)
    };

    print_header("Wall-clock kernel sweep: optimised vs per-call baselines");
    println!("{n}x{n} operators, batch {batch}, median of {reps} timed passes\n");
    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "workload", "opt us", "ref us", "speedup"
    );

    let points = vec![
        circulant_point(n, batch, reps),
        pd_f32_point(n, batch, reps),
        q16_point(n, batch, reps),
    ];

    for p in &points {
        println!(
            "{:<22} {:>12.1} {:>12.1} {:>9}",
            p.workload,
            p.optimized_us,
            p.reference_us,
            ratio(p.speedup)
        );
    }

    println!();
    for p in &points {
        assert_floor(&format!("{} plan speedup", p.workload), p.speedup, p.floor);
        println!(
            "  {} >= {:.1}x floor: ok (outputs bit-identical)",
            p.workload, p.floor
        );
    }

    let json = render_json(&points);
    write_artifact(&out_path, &json);
}

/// Cached-spectra FFT path vs the per-call FFT path, one matvec per batch row.
fn circulant_point(n: usize, batch: usize, reps: usize) -> WallPoint {
    let k = 64;
    let w = BlockCirculantMatrix::random(n, n, k, &mut seeded_rng(11));
    let xs = inputs(n, batch, 12);

    // Bit-identity on every swept input before any timing.
    let mut scratch = CirculantScratch::default();
    let mut y = vec![0.0f32; n];
    for x in &xs {
        w.matvec_fft_into(x, &mut y, &mut scratch)
            .expect("power-of-two block size");
        let y_ref = w.matvec_fft_percall(x).expect("power-of-two block size");
        assert_eq!(y, y_ref, "circulant outputs must be bit-identical");
    }

    let optimized_us = median_us(reps, || {
        for x in &xs {
            w.matvec_fft_into(black_box(x), &mut y, &mut scratch)
                .expect("checked above");
        }
        black_box(&y);
    });
    let reference_us = median_us(reps, || {
        for x in &xs {
            black_box(w.matvec_fft_percall(black_box(x)).expect("checked above"));
        }
    });

    WallPoint {
        workload: "circulant_fft",
        rows: n,
        cols: n,
        batch,
        reps,
        optimized_us,
        reference_us,
        speedup: reference_us / optimized_us,
        floor: 3.0,
    }
}

/// Cache-blocked batched PD kernel vs a per-row reference-matvec loop.
fn pd_f32_point(n: usize, batch: usize, reps: usize) -> WallPoint {
    let p = 8;
    let w = BlockPermDiagMatrix::random(n, n, p, &mut seeded_rng(21));
    let xs_mat = batch_matrix(n, batch, 22);
    let xs = BatchView::from_matrix(&xs_mat);

    let mut scratch = Scratch::new();
    let mut out = vec![0.0f32; batch * n];
    w.matmul_into(&xs, &mut out, &mut scratch)
        .expect("dimensions match");
    let mut y_ref = vec![0.0f32; n];
    for (i, out_row) in out.chunks(n).enumerate() {
        w.matvec_reference(xs.row(i), &mut y_ref);
        assert_eq!(out_row, &y_ref[..], "PD f32 outputs must be bit-identical");
    }

    let optimized_us = median_us(reps, || {
        w.matmul_into(black_box(&xs), &mut out, &mut scratch)
            .expect("checked above");
        black_box(&out);
    });
    let reference_us = median_us(reps, || {
        for i in 0..batch {
            let mut y = vec![0.0f32; n];
            w.matvec_reference(black_box(xs.row(i)), &mut y);
            black_box(&y);
        }
    });

    WallPoint {
        workload: "pd_f32",
        rows: n,
        cols: n,
        batch,
        reps,
        optimized_us,
        reference_us,
        speedup: reference_us / optimized_us,
        floor: 1.2,
    }
}

/// Unrolled flat-accumulator i16 ColumnSparse kernel vs the boxed-accumulator
/// reference, including the datapath counters.
fn q16_point(n: usize, batch: usize, reps: usize) -> WallPoint {
    let p = 8;
    let op: Arc<dyn CompressedLinear> =
        Arc::new(BlockPermDiagMatrix::random(n, n, p, &mut seeded_rng(31)));
    let q = QuantizedLinear::from_op(
        Arc::clone(&op),
        QScheme::calibrate(1.0, op.max_weight_abs(), 8.0),
    );
    assert!(q.has_integer_kernel(), "PD quantizes to ColumnSparse");

    let xs_mat = batch_matrix(n, batch, 32);
    let mut xs_raw = Vec::with_capacity(batch * n);
    for i in 0..batch {
        xs_raw.extend(q.quantize_input(xs_mat.row(i)));
    }

    let mut scratch = QScratch::default();
    let mut out = vec![0i16; batch * n];
    let stats = q
        .matmul_q_into(&xs_raw, batch, &mut out, &mut scratch)
        .expect("dimensions match");
    let mut y_ref = vec![0i16; n];
    let mut stats_ref = permdnn_core::qlinear::QKernelStats::default();
    for (i, out_row) in out.chunks(n).enumerate() {
        let s = q
            .matvec_q_reference(&xs_raw[i * n..(i + 1) * n], &mut y_ref)
            .expect("dimensions match");
        stats_ref.merge(&s);
        assert_eq!(out_row, &y_ref[..], "i16 outputs must be bit-identical");
    }
    assert_eq!(stats, stats_ref, "datapath counters must match exactly");

    let optimized_us = median_us(reps, || {
        black_box(
            q.matmul_q_into(black_box(&xs_raw), batch, &mut out, &mut scratch)
                .expect("checked above"),
        );
    });
    let reference_us = median_us(reps, || {
        for i in 0..batch {
            let mut y = vec![0i16; n];
            black_box(
                q.matvec_q_reference(black_box(&xs_raw[i * n..(i + 1) * n]), &mut y)
                    .expect("checked above"),
            );
        }
    });

    WallPoint {
        workload: "q16_column_sparse",
        rows: n,
        cols: n,
        batch,
        reps,
        optimized_us,
        reference_us,
        speedup: reference_us / optimized_us,
        floor: 1.2,
    }
}

fn inputs(dim: usize, batch: usize, seed: u64) -> Vec<Vec<f32>> {
    let m = batch_matrix(dim, batch, seed);
    (0..batch).map(|i| m.row(i).to_vec()).collect()
}

fn batch_matrix(dim: usize, batch: usize, seed: u64) -> Matrix {
    pd_tensor::init::xavier_uniform(&mut seeded_rng(seed), batch, dim)
}

fn render_json(points: &[WallPoint]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"wall_sweep\",");
    let _ = writeln!(
        s,
        "  \"note\": \"wall-clock medians, machine-dependent; outputs asserted bit-identical and speedups asserted >= floor before this file is written\","
    );
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"workload\": \"{}\", \"rows\": {}, \"cols\": {}, \"batch\": {}, \"reps\": {}, \
             \"optimized_us\": {:.1}, \"reference_us\": {:.1}, \"speedup\": {:.2}, \
             \"floor\": {:.1}, \"bit_identical\": true}}",
            p.workload,
            p.rows,
            p.cols,
            p.batch,
            p.reps,
            p.optimized_us,
            p.reference_us,
            p.speedup,
            p.floor
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
