//! Serving-throughput sweep: thread count × batch size × weight format.
//!
//! For every format the sweep serves the same ChaCha-seeded saturated request
//! stream through a frozen multi-layer `CompressedFc` MLP on the batching
//! runtime, and reports requests/sec plus p50/p99 latency. Time is counted in
//! the runtime's deterministic ticks (1 tick = 1 µs at the nominal rate
//! below), so the numbers — including the ≥1.5× scaling of 4 workers over 1 —
//! reproduce bit-for-bit on any machine; wall-clock per sweep point is
//! reported alongside for the curious. Results land in `BENCH_serve.json`
//! (override with `--out PATH`), the first point of the repo's serving-perf
//! trajectory.
//!
//! Run: `cargo run --release -p permdnn-bench --bin serve_throughput [-- --full]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pd_tensor::init::seeded_rng;
use permdnn_bench::{full_run_requested, print_header, ratio};
use permdnn_nn::layers::WeightFormat;
use permdnn_nn::MlpClassifier;
use permdnn_runtime::{
    seeded_request_stream, serve, BatchConfig, ParallelExecutor, ServeConfig, ServiceModel,
};

/// Nominal tick rate: 1 tick = 1 µs.
const TICK_HZ: f64 = 1e6;

struct SweepPoint {
    format: String,
    workers: usize,
    max_batch: usize,
    mean_batch: f64,
    requests_per_sec: f64,
    p50_latency_ticks: u64,
    p99_latency_ticks: u64,
    makespan_ticks: u64,
    wall_ms: f64,
}

fn main() {
    let full = full_run_requested();
    let out_path = out_path_arg().unwrap_or_else(|| "BENCH_serve.json".to_string());

    let (input_dim, hidden, n_requests) = if full {
        (512usize, vec![1024usize, 1024], 2048usize)
    } else {
        (256, vec![256, 256], 512)
    };
    let classes = 10;
    let workers_sweep = [1usize, 2, 4];
    let batch_sweep = [8usize, 32, 128];
    let formats = [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 8 },
        WeightFormat::Circulant { k: 8 },
        WeightFormat::UnstructuredSparse { p: 8 },
        WeightFormat::SharedPermutedDiagonal { p: 8, tag_bits: 4 },
    ];
    let service = ServiceModel::default();

    print_header("Serving throughput: workers x batch x format");
    println!(
        "model {input_dim}-{hidden:?}-{classes}, {n_requests} requests (saturated stream), \
         1 tick = 1us\n"
    );
    println!(
        "{:<34} {:>7} {:>6} {:>12} {:>9} {:>9} {:>9}",
        "format", "workers", "batch", "req/s", "p50(t)", "p99(t)", "wall ms"
    );

    let mut points: Vec<SweepPoint> = Vec::new();
    for format in formats {
        // Same model seed per format family: the sweep compares serving
        // configurations, not weight draws.
        let model =
            MlpClassifier::new_frozen(input_dim, &hidden, classes, format, &mut seeded_rng(2024));
        let model = Arc::new(model);
        let stream = seeded_request_stream(7, n_requests, input_dim, 0.0);
        for &workers in &workers_sweep {
            let exec = ParallelExecutor::new(workers);
            for &max_batch in &batch_sweep {
                let cfg = ServeConfig {
                    batching: BatchConfig::new(max_batch, 0),
                    service,
                };
                let started = Instant::now();
                let report = serve(model.as_ref(), &exec, &cfg, stream.clone())
                    .expect("stream inputs match the model width");
                let wall_ms = started.elapsed().as_secs_f64() * 1e3;
                assert_eq!(report.completed.len(), n_requests);
                let point = SweepPoint {
                    format: format.label(),
                    workers,
                    max_batch,
                    mean_batch: report.mean_batch_size(),
                    requests_per_sec: report.requests_per_sec(TICK_HZ),
                    p50_latency_ticks: report.latency_percentile_ticks(0.50),
                    p99_latency_ticks: report.latency_percentile_ticks(0.99),
                    makespan_ticks: report.makespan_ticks(),
                    wall_ms,
                };
                println!(
                    "{:<34} {:>7} {:>6} {:>12.0} {:>9} {:>9} {:>9.1}",
                    point.format,
                    point.workers,
                    point.max_batch,
                    point.requests_per_sec,
                    point.p50_latency_ticks,
                    point.p99_latency_ticks,
                    point.wall_ms
                );
                points.push(point);
            }
        }
    }

    println!("\nScaling at batch 32, 4 workers vs 1 (modeled req/s):");
    for format in formats {
        let label = format.label();
        let rps = |w: usize| {
            points
                .iter()
                .find(|p| p.format == label && p.workers == w && p.max_batch == 32)
                .map(|p| p.requests_per_sec)
                .unwrap_or(0.0)
        };
        let speedup = rps(4) / rps(1);
        println!("  {:<34} {}", label, ratio(speedup));
        assert!(
            speedup > 1.5,
            "{label}: 4-worker speedup {speedup:.2} <= 1.5"
        );
    }

    let json = render_json(input_dim, &hidden, classes, n_requests, &service, &points);
    std::fs::write(&out_path, json).expect("write bench JSON");
    println!("\nwrote {out_path}");
}

fn out_path_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
}

fn render_json(
    input_dim: usize,
    hidden: &[usize],
    classes: usize,
    n_requests: usize,
    service: &ServiceModel,
    points: &[SweepPoint],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"serve_throughput\",");
    let _ = writeln!(s, "  \"tick_hz\": {TICK_HZ},");
    let hidden_list = hidden
        .iter()
        .map(|h| h.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        s,
        "  \"model\": {{\"input_dim\": {input_dim}, \"hidden\": [{hidden_list}], \"classes\": {classes}}},"
    );
    let _ = writeln!(s, "  \"requests\": {n_requests},");
    let _ = writeln!(
        s,
        "  \"service_model\": {{\"muls_per_worker_tick\": {}, \"batch_overhead_ticks\": {}}},",
        service.muls_per_worker_tick, service.batch_overhead_ticks
    );
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"format\": \"{}\", \"workers\": {}, \"max_batch\": {}, \"mean_batch\": {:.2}, \
             \"requests_per_sec\": {:.2}, \"p50_latency_ticks\": {}, \"p99_latency_ticks\": {}, \
             \"makespan_ticks\": {}, \"wall_ms\": {:.2}}}",
            p.format,
            p.workers,
            p.max_batch,
            p.mean_batch,
            p.requests_per_sec,
            p.p50_latency_ticks,
            p.p99_latency_ticks,
            p.makespan_ticks,
            p.wall_ms
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
