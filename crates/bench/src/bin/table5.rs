//! Regenerates Table V — Wide ResNet-48 CONV-layer compression and accuracy (p = 4).
//!
//! Paper reference: dense 190.2 MB / 95.14%; PD 61.9 MB (3.07x) / 94.92%;
//! PD + 16-bit 30.9 MB (6.14x) / 94.76%.

fn main() {
    let quick = !permdnn_bench::full_run_requested();
    permdnn_bench::print_header("Table V — Wide ResNet-48 on CIFAR-10 (CONV layers, p=4)");
    let report = permdnn_nn::experiments::conv_tables::run(45, quick, true);
    print!("{}", report.to_table());
    println!();
    println!("Paper reference: 190.2 MB -> 61.9 MB (3.07x) -> 30.9 MB (6.14x); acc 95.14 / 94.92 / 94.76 %.");
}
