//! Cluster scale-out sweep over the simulated-host serving layer.
//!
//! A three-model permuted-diagonal registry serves a Zipf-skewed tenant mix
//! and an on/off flash crowd on replicated clusters of 1/2/4/8 hosts under
//! both routing policies, recording modeled requests/sec and p50/p95/p99
//! latency into `BENCH_cluster.json` — the throughput-vs-replicas scaling
//! curves the cluster layer is judged by. A second sweep row-shards the same
//! models 2/4/8 ways and records the per-host resident snapshot bytes.
//!
//! Asserted acceptance bars:
//!
//! * 4 replicas reach ≥ 3× the modeled requests/sec of 1 host on the Zipf
//!   workload, under both routing policies;
//! * served outputs are bit-identical to the single-host run for every
//!   (traffic, routing, hosts) cell;
//! * under row-sharding every host holds ≤ `ceil(whole-model bytes / shards)`
//!   plus a fixed per-model container overhead.
//!
//! Run: `cargo run --release -p permdnn-bench --bin cluster_sweep [-- --out PATH]`

use std::fmt::Write as _;
use std::sync::Arc;

use pd_tensor::init::seeded_rng;
use permdnn_bench::{assert_floor, out_path, print_header, write_artifact};
use permdnn_core::snapshot::{load_tensor, save_tensor, SnapshotCodec};
use permdnn_core::BlockPermDiagMatrix;
use permdnn_runtime::{
    interleave_streams, AdmissionPolicy, BatchConfig, BatchModel, Cluster, ClusterReport,
    ModelLoader, OnOffFlashCrowd, ParallelExecutor, RoutingPolicy, ServeConfig, ServiceModel,
    SingleLayerModel, TaggedRequest, TrafficConfig, UniformProcess, ZipfMix,
};

/// Nominal tick rate: 1 tick = 1 µs.
const TICK_HZ: f64 = 1e6;
/// Worker count per host (outputs are worker-count independent; this only
/// scales completion ticks).
const WORKERS: usize = 2;
/// Replica counts the throughput curves sweep.
const HOSTS: [usize; 4] = [1, 2, 4, 8];
/// Shard counts the memory sweep covers (≤ block rows of the smallest model).
const SHARDS: [usize; 3] = [2, 4, 8];
/// Requests in the Zipf mix.
const ZIPF_REQUESTS: usize = 800;
/// Mean inter-arrival gap of the Zipf mix in ticks — far below the mean
/// per-request service time, so a single host is deeply oversubscribed and
/// throughput is service-bound, the regime replication is supposed to fix.
const ZIPF_MEAN_GAP: f64 = 0.5;
/// Container framing slack allowed per model on top of the ideal
/// `ceil(whole / shards)` byte split (section headers, CRCs, shard index).
const SECTION_OVERHEAD: u64 = 256;

/// One registered model: a square permuted-diagonal layer, no SLO (nothing
/// sheds, so every cell serves the identical request set and requests/sec is
/// a pure service-capacity measurement).
struct ModelSpec {
    id: &'static str,
    dim: usize,
    seed: u64,
}

fn specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            id: "fast",
            dim: 32,
            seed: 0x810,
        },
        ModelSpec {
            id: "mid",
            dim: 64,
            seed: 0x811,
        },
        ModelSpec {
            id: "bulk",
            dim: 256,
            seed: 0x812,
        },
    ]
}

fn snapshot(spec: &ModelSpec) -> Vec<u8> {
    let w = BlockPermDiagMatrix::random(spec.dim, spec.dim, 4, &mut seeded_rng(spec.seed));
    save_tensor(&w).expect("snapshot")
}

fn tensor_loader() -> ModelLoader {
    Box::new(|bytes| {
        let op = load_tensor(bytes, &SnapshotCodec::new())?;
        Ok(Arc::new(SingleLayerModel::new(op)) as Arc<dyn BatchModel>)
    })
}

fn loaders(n: usize) -> Vec<ModelLoader> {
    (0..n).map(|_| tensor_loader()).collect()
}

fn replicated_cluster(hosts: usize, routing: RoutingPolicy) -> Cluster {
    let mut cluster =
        Cluster::replicated(loaders(hosts), routing, u64::MAX).expect("non-empty host list");
    for spec in specs() {
        cluster
            .insert(spec.id, snapshot(&spec), None)
            .expect("valid snapshot");
    }
    cluster
}

/// The Zipf-skewed tenant mix: hot "fast", warm "mid", cold (but expensive)
/// "bulk".
fn zipf_stream() -> Vec<TaggedRequest> {
    let models: Vec<(String, usize)> = specs().iter().map(|s| (s.id.to_string(), s.dim)).collect();
    ZipfMix::new(models, 1.2, ZIPF_MEAN_GAP)
        .expect("valid mix")
        .stream(0x820, ZIPF_REQUESTS)
}

/// The flash-crowd process: on/off bursts on "fast" over a steady "mid"
/// stream, with a saturated "bulk" wave landing at tick 0.
fn flash_crowd_stream() -> Vec<TaggedRequest> {
    let crowd = OnOffFlashCrowd::new(32, 40, 400, 0.5)
        .expect("valid crowd")
        .stream(0x830, 240);
    let mid = UniformProcess::new(64, 4.0)
        .expect("valid process")
        .stream(0x831, 120);
    let bulk = UniformProcess::new(256, 0.0)
        .expect("valid process")
        .stream(0x832, 60);
    interleave_streams(vec![
        ("fast".to_string(), crowd),
        ("mid".to_string(), mid),
        ("bulk".to_string(), bulk),
    ])
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        batching: BatchConfig::new(8, 16),
        // A deliberately slow engine (vs the 1024 muls/tick default): the
        // request stream then oversubscribes one host by several ×, which is
        // the regime where replica scaling is measurable.
        service: ServiceModel {
            muls_per_worker_tick: 256,
            batch_overhead_ticks: 2,
        },
    }
}

fn run(cluster: &mut Cluster, stream: Vec<TaggedRequest>) -> ClusterReport {
    cluster
        .serve_traffic(
            &ParallelExecutor::new(WORKERS),
            &TrafficConfig::new(serve_cfg(), AdmissionPolicy::Fifo),
            stream,
        )
        .expect("all ids registered")
}

fn routing_label(routing: RoutingPolicy) -> &'static str {
    match routing {
        RoutingPolicy::HashModulo => "hash",
        RoutingPolicy::Rendezvous => "rendezvous",
    }
}

/// The topology-independent fingerprint of a run: who got served, with what
/// bits. Ticks and batch sizes legitimately vary across topologies.
fn decisions(report: &ClusterReport) -> Vec<(String, u64, Vec<f32>)> {
    report
        .completed
        .iter()
        .map(|tc| {
            (
                tc.model_id.clone(),
                tc.completed.id,
                tc.completed.output.clone(),
            )
        })
        .collect()
}

struct Point {
    hosts: usize,
    requests_per_sec: f64,
    p50: u64,
    p95: u64,
    p99: u64,
    makespan_ticks: u64,
}

struct Curve {
    traffic: &'static str,
    routing: &'static str,
    points: Vec<Point>,
}

struct ShardPoint {
    shards: usize,
    per_host_bytes: Vec<u64>,
    bound_bytes: u64,
}

fn main() {
    let out_path = out_path("BENCH_cluster.json");
    print_header("cluster scale-out sweep");

    type StreamFn = fn() -> Vec<TaggedRequest>;
    let traffics: [(&'static str, StreamFn); 2] = [
        ("zipf_mix", zipf_stream),
        ("flash_crowd", flash_crowd_stream),
    ];
    let routings = [RoutingPolicy::HashModulo, RoutingPolicy::Rendezvous];

    let mut curves: Vec<Curve> = Vec::new();
    for (traffic, stream_of) in traffics {
        // One host is the bit-exactness reference for every cell.
        let baseline = decisions(&run(
            &mut replicated_cluster(1, RoutingPolicy::HashModulo),
            stream_of(),
        ));
        for routing in routings {
            println!(
                "\n{traffic} × {} ({WORKERS} workers/host):",
                routing_label(routing)
            );
            println!(
                "  {:>5} {:>10} {:>8} {:>8} {:>8} {:>10}",
                "hosts", "req/s", "p50", "p95", "p99", "makespan"
            );
            let mut points = Vec::new();
            for hosts in HOSTS {
                let report = run(&mut replicated_cluster(hosts, routing), stream_of());
                assert_eq!(
                    decisions(&report),
                    baseline,
                    "{traffic}/{}/{hosts} hosts: outputs must be bit-identical to one host",
                    routing_label(routing)
                );
                let pcts = report.latency_percentiles_ticks(&[0.50, 0.95, 0.99]);
                let point = Point {
                    hosts,
                    requests_per_sec: report.requests_per_sec(TICK_HZ),
                    p50: pcts[0],
                    p95: pcts[1],
                    p99: pcts[2],
                    makespan_ticks: report.makespan_ticks(),
                };
                println!(
                    "  {:>5} {:>10.0} {:>8} {:>8} {:>8} {:>10}",
                    point.hosts,
                    point.requests_per_sec,
                    point.p50,
                    point.p95,
                    point.p99,
                    point.makespan_ticks
                );
                points.push(point);
            }
            curves.push(Curve {
                traffic,
                routing: routing_label(routing),
                points,
            });
        }
    }

    // Acceptance bar: on the service-bound Zipf workload, 4 replicas buy at
    // least 3× the modeled throughput of 1 host, under either routing.
    for curve in curves.iter().filter(|c| c.traffic == "zipf_mix") {
        let rps = |hosts: usize| -> f64 {
            curve
                .points
                .iter()
                .find(|p| p.hosts == hosts)
                .expect("swept host count")
                .requests_per_sec
        };
        let speedup = rps(4) / rps(1);
        assert_floor(
            &format!("zipf_mix/{} 4-replica speedup", curve.routing),
            speedup,
            3.0,
        );
        println!(
            "\nzipf_mix/{}: 4-replica speedup {speedup:.2}×",
            curve.routing
        );
    }

    // Row-shard memory sweep: host k holds only its slice's snapshot bytes.
    let whole_bytes: Vec<(String, u64)> = specs()
        .iter()
        .map(|s| (s.id.to_string(), snapshot(s).len() as u64))
        .collect();
    let whole_total: u64 = whole_bytes.iter().map(|(_, b)| b).sum();
    println!("\nrow-shard residency (whole models: {whole_total} bytes):");
    println!("  {:>6} {:>14} {:>12}", "shards", "max host bytes", "bound");
    let mut shard_points = Vec::new();
    for shards in SHARDS {
        let mut cluster = Cluster::row_sharded(loaders(shards), u64::MAX).expect("non-empty");
        for spec in specs() {
            cluster
                .insert(spec.id, snapshot(&spec), None)
                .expect("valid snapshot");
        }
        let per_host_bytes = cluster.host_loaded_bytes();
        // Acceptance bar: an even byte split plus fixed container framing.
        let bound_bytes: u64 = whole_bytes
            .iter()
            .map(|(_, b)| b.div_ceil(shards as u64) + SECTION_OVERHEAD)
            .sum();
        for (k, &bytes) in per_host_bytes.iter().enumerate() {
            assert!(
                bytes <= bound_bytes,
                "{shards} shards: host {k} holds {bytes} bytes, bound {bound_bytes}"
            );
        }
        let max = per_host_bytes.iter().copied().max().unwrap_or(0);
        println!("  {shards:>6} {max:>14} {bound_bytes:>12}");
        shard_points.push(ShardPoint {
            shards,
            per_host_bytes,
            bound_bytes,
        });
    }

    let json = render_json(&curves, &whole_bytes, &shard_points);
    write_artifact(&out_path, &json);
}

fn render_json(
    curves: &[Curve],
    whole_bytes: &[(String, u64)],
    shard_points: &[ShardPoint],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"cluster_sweep\",");
    let _ = writeln!(s, "  \"tick_hz\": {TICK_HZ},");
    let _ = writeln!(s, "  \"workers_per_host\": {WORKERS},");
    let _ = writeln!(s, "  \"muls_per_worker_tick\": 256,");
    s.push_str("  \"models\": [\n");
    let spec_list = specs();
    for (i, spec) in spec_list.iter().enumerate() {
        let bytes = whole_bytes
            .iter()
            .find(|(id, _)| id == spec.id)
            .map(|(_, b)| *b)
            .unwrap_or(0);
        let _ = write!(
            s,
            "    {{\"id\": \"{}\", \"dim\": {}, \"snapshot_bytes\": {}}}",
            spec.id, spec.dim, bytes
        );
        s.push_str(if i + 1 < spec_list.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"curves\": [\n");
    for (i, curve) in curves.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"traffic\": \"{}\", \"routing\": \"{}\", \"points\": [",
            curve.traffic, curve.routing
        );
        for (j, p) in curve.points.iter().enumerate() {
            let _ = write!(
                s,
                "      {{\"hosts\": {}, \"requests_per_sec\": {:.1}, \"p50_ticks\": {}, \
                 \"p95_ticks\": {}, \"p99_ticks\": {}, \"makespan_ticks\": {}}}",
                p.hosts, p.requests_per_sec, p.p50, p.p95, p.p99, p.makespan_ticks
            );
            s.push_str(if j + 1 < curve.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("    ]}");
        s.push_str(if i + 1 < curves.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"row_shard_residency\": [\n");
    for (i, p) in shard_points.iter().enumerate() {
        let hosts: Vec<String> = p.per_host_bytes.iter().map(|b| b.to_string()).collect();
        let _ = write!(
            s,
            "    {{\"shards\": {}, \"per_host_bytes\": [{}], \"bound_bytes\": {}}}",
            p.shards,
            hosts.join(", "),
            p.bound_bytes
        );
        s.push_str(if i + 1 < shard_points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
