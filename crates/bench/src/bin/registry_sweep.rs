//! Snapshot + multi-model registry sweep.
//!
//! Two questions, one JSON answer (`BENCH_registry.json`):
//!
//! 1. **How small are the snapshots?** For every weight format (plus a
//!    quantized variant), save a frozen MLP and record the on-disk bytes
//!    against the dense-f32 footprint of the same logical weights — the
//!    deployment-artifact version of the paper's Fig. 4 storage comparison.
//! 2. **What does multi-model serving cost?** Load every snapshot into a
//!    `ModelRegistry` and serve one interleaved heterogeneous stream at 1, 2
//!    and 4 workers (modeled ticks, 1 tick = 1 µs), then repeat with a weight
//!    cache squeezed to ~2 resident models to count LRU evictions/reloads —
//!    verifying the cache changes *when* bytes are materialised, never what
//!    is served.
//!
//! Asserted acceptance bars: every snapshot loads and serves bit-identically
//! to its source model; the permuted-diagonal snapshot is ≥ 3× smaller than
//! dense f32 (and ≥ 6× quantized); tight-budget outputs equal unlimited-
//! budget outputs.
//!
//! Run: `cargo run --release -p permdnn-bench --bin registry_sweep [-- --out PATH]`

use std::fmt::Write as _;

use pd_tensor::init::seeded_rng;
use permdnn_bench::{assert_floor, out_path, print_header, write_artifact};
use permdnn_nn::layers::WeightFormat;
use permdnn_nn::snapshot::batch_model_loader;
use permdnn_nn::MlpClassifier;
use permdnn_runtime::{
    interleave_streams, seeded_request_stream, BatchConfig, ModelRegistry, MultiServeReport,
    ParallelExecutor, ServeConfig, ServiceModel,
};
use rand::Rng;

/// Nominal tick rate: 1 tick = 1 µs.
const TICK_HZ: f64 = 1e6;
/// Architecture of every benchmarked model (hidden-layer dominated, as in
/// the paper's FC workloads).
const IN_DIM: usize = 64;
const HIDDEN: [usize; 2] = [128, 128];
const CLASSES: usize = 10;
/// Requests per model in the serving scenario.
const REQUESTS_PER_MODEL: usize = 48;
/// Worker counts swept.
const WORKERS: [usize; 3] = [1, 2, 4];

struct SizePoint {
    name: String,
    format: String,
    snapshot_bytes: usize,
    dense_f32_bytes: usize,
    ratio: f64,
}

/// Dense-f32 footprint of the architecture: every logical weight plus biases
/// at 4 bytes.
fn dense_f32_bytes() -> usize {
    let mut dims = vec![IN_DIM];
    dims.extend(HIDDEN);
    dims.push(CLASSES);
    dims.windows(2).map(|w| (w[0] * w[1] + w[1]) * 4).sum()
}

fn main() {
    let out_path = out_path("BENCH_registry.json");
    print_header("Model snapshots + multi-model registry sweep");

    // ---- 1. Snapshot sizes per format. ----
    let formats: Vec<(&str, WeightFormat)> = vec![
        ("mlp-dense", WeightFormat::Dense),
        ("mlp-pd4", WeightFormat::PermutedDiagonal { p: 4 }),
        ("mlp-circ4", WeightFormat::Circulant { k: 4 }),
        ("mlp-csc4", WeightFormat::UnstructuredSparse { p: 4 }),
        (
            "mlp-shared-pd4",
            WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
        ),
    ];
    let dense_bytes = dense_f32_bytes();
    let mut sizes: Vec<SizePoint> = Vec::new();
    let mut snapshots: Vec<(String, Vec<u8>)> = Vec::new();
    println!(
        "{:<16} {:<34} {:>10} {:>12} {:>8}",
        "model", "format", "snap B", "dense-f32 B", "ratio"
    );
    for (i, (name, format)) in formats.iter().enumerate() {
        let model = MlpClassifier::new_frozen(
            IN_DIM,
            &HIDDEN,
            CLASSES,
            *format,
            &mut seeded_rng(0x6000 + i as u64),
        );
        let bytes = model.save().expect("frozen models snapshot");
        // The snapshot must load and serve identically before it counts.
        let reloaded = MlpClassifier::load(&bytes).expect("snapshot loads");
        let probe: Vec<f32> = (0..IN_DIM).map(|i| (i as f32 * 0.17).sin()).collect();
        assert_eq!(
            model.logits(&probe),
            reloaded.logits(&probe),
            "{name}: reload must be bit-exact"
        );
        push_size(&mut sizes, name, &format.label(), bytes.len(), dense_bytes);
        snapshots.push((name.to_string(), bytes));
    }

    // Quantized PD: f32 values drop to raw i16 inside the QuantizedLinear
    // records.
    {
        let model = MlpClassifier::new_frozen(
            IN_DIM,
            &HIDDEN,
            CLASSES,
            WeightFormat::PermutedDiagonal { p: 4 },
            &mut seeded_rng(0x6100),
        );
        let calibration: Vec<Vec<f32>> = (0..8)
            .map(|i| {
                let mut rng = seeded_rng(0x6101 + i);
                (0..IN_DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
            })
            .collect();
        let (q_model, _) = model.quantize(&calibration);
        let bytes = q_model.save().expect("quantized models snapshot");
        let reloaded = MlpClassifier::load(&bytes).expect("snapshot loads");
        let probe: Vec<f32> = (0..IN_DIM).map(|i| (i as f32 * 0.17).sin()).collect();
        assert_eq!(q_model.logits(&probe), reloaded.logits(&probe));
        push_size(
            &mut sizes,
            "mlp-pd4-q16",
            "q16 permuted-diagonal (p=4)",
            bytes.len(),
            dense_bytes,
        );
        snapshots.push(("mlp-pd4-q16".to_string(), bytes));
    }

    // Acceptance bars: PD at p = 4 must beat 3x against dense f32 even with
    // its dense head and bias vectors on board, and the 16-bit quantized
    // variant must compress strictly further than the f32 PD snapshot.
    let pd_ratio = sizes.iter().find(|s| s.name == "mlp-pd4").unwrap().ratio;
    let q_ratio = sizes
        .iter()
        .find(|s| s.name == "mlp-pd4-q16")
        .unwrap()
        .ratio;
    assert_floor("PD snapshot compression ratio", pd_ratio, 3.0);
    assert!(
        q_ratio > pd_ratio && q_ratio >= 3.3,
        "q16 PD snapshot ratio {q_ratio:.2} should beat f32 PD ({pd_ratio:.2})"
    );

    // ---- 2. Multi-model serving through the registry. ----
    let cfg = ServeConfig {
        batching: BatchConfig::new(8, 16),
        service: ServiceModel::default(),
    };
    let tagged = interleave_streams(
        snapshots
            .iter()
            .enumerate()
            .map(|(i, (id, _))| {
                (
                    id.clone(),
                    seeded_request_stream(0x7000 + i as u64, REQUESTS_PER_MODEL, IN_DIM, 3.0),
                )
            })
            .collect(),
    );
    let run = |workers: usize, budget: u64| -> (MultiServeReport, u64) {
        let mut reg = ModelRegistry::new(batch_model_loader(), budget);
        for (id, bytes) in &snapshots {
            reg.insert(id, bytes.clone()).expect("validated above");
        }
        let report = reg
            .serve_multi(&ParallelExecutor::new(workers), &cfg, tagged.clone())
            .expect("all ids registered");
        (report, reg.loaded_bytes())
    };

    println!(
        "\nmulti-model serving ({} models, {} requests):",
        snapshots.len(),
        tagged.len()
    );
    let mut throughput: Vec<(usize, f64)> = Vec::new();
    for workers in WORKERS {
        let (report, _) = run(workers, u64::MAX);
        let rps = report.requests_per_sec(TICK_HZ);
        println!(
            "  {workers} workers: {rps:>10.0} req/s modeled, makespan {} ticks",
            report.makespan_ticks()
        );
        throughput.push((workers, rps));
    }

    // Tight weight cache: room for ~2 of the 6 models.
    let tight_budget: u64 = snapshots.iter().map(|(_, b)| b.len() as u64).sum::<u64>() / 3;
    let (tight, tight_resident) = run(2, tight_budget);
    let (unlimited, _) = run(2, u64::MAX);
    assert_eq!(
        tight.completed, unlimited.completed,
        "the weight cache must never change served outputs"
    );
    assert!(tight.stats.reloads > 0, "tight budget should force reloads");
    assert!(tight_resident <= tight_budget);
    println!(
        "  tight cache ({tight_budget} B): {} evictions, {} reloads, outputs identical",
        tight.stats.evictions, tight.stats.reloads
    );

    let json = render_json(&sizes, &throughput, &tight, tight_budget);
    write_artifact(&out_path, &json);
}

fn push_size(
    sizes: &mut Vec<SizePoint>,
    name: &str,
    format: &str,
    snapshot_bytes: usize,
    dense_f32: usize,
) {
    let ratio = dense_f32 as f64 / snapshot_bytes as f64;
    println!("{name:<16} {format:<34} {snapshot_bytes:>10} {dense_f32:>12} {ratio:>7.2}x");
    sizes.push(SizePoint {
        name: name.to_string(),
        format: format.to_string(),
        snapshot_bytes,
        dense_f32_bytes: dense_f32,
        ratio,
    });
}

fn render_json(
    sizes: &[SizePoint],
    throughput: &[(usize, f64)],
    tight: &MultiServeReport,
    tight_budget: u64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"registry_sweep\",");
    let _ = writeln!(s, "  \"tick_hz\": {TICK_HZ},");
    let _ = writeln!(
        s,
        "  \"architecture\": {{\"in\": {IN_DIM}, \"hidden\": [{}, {}], \"classes\": {CLASSES}}},",
        HIDDEN[0], HIDDEN[1]
    );
    s.push_str("  \"snapshot_sizes\": [\n");
    for (i, p) in sizes.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"model\": \"{}\", \"format\": \"{}\", \"snapshot_bytes\": {}, \
             \"dense_f32_bytes\": {}, \"compression_ratio\": {:.3}}}",
            p.name, p.format, p.snapshot_bytes, p.dense_f32_bytes, p.ratio
        );
        s.push_str(if i + 1 < sizes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"multi_model_requests_per_sec\": {");
    for (i, (workers, rps)) in throughput.iter().enumerate() {
        let _ = write!(s, "\"{workers}\": {rps:.2}");
        if i + 1 < throughput.len() {
            s.push_str(", ");
        }
    }
    s.push_str("},\n");
    let _ = writeln!(
        s,
        "  \"tight_cache\": {{\"budget_bytes\": {tight_budget}, \"evictions\": {}, \
         \"reloads\": {}, \"outputs_identical_to_unlimited\": true}}",
        tight.stats.evictions, tight.stats.reloads
    );
    s.push_str("}\n");
    s
}
