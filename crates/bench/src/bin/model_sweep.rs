//! Unified model sweep: every architecture (MLP, conv net, seq2seq LSTM)
//! served through the one `CompressedLinear` stack, format × model × workers.
//!
//! For each model family the sweep trains a small f32 model, freezes it onto
//! the serving stack (`MlpClassifier::new_frozen`, `ConvClassifier::freeze`,
//! `Seq2Seq::freeze`), verifies the frozen + quantized forward is bit-for-bit
//! identical across worker counts (the PR 2 invariant, now covering conv and
//! LSTM), and reports the modeled serving throughput of the deterministic
//! `ServiceModel` (`ceil(muls / (throughput·workers))` ticks per batch,
//! 1 tick = 1 µs) at 1, 2 and 4 workers.
//!
//! The acceptance bar asserted here: permuted-diagonal conv and LSTM serving
//! at p = 4 must model ≥ 1.5× the dense throughput.
//!
//! Results land in `BENCH_models.json` (override with `--out PATH`).
//!
//! Run: `cargo run --release -p permdnn-bench --bin model_sweep [-- --full]`

use std::fmt::Write as _;

use pd_tensor::init::seeded_rng;
use permdnn_bench::{full_run_requested, print_header, ratio};
use permdnn_nn::conv_net::ConvClassifier;
use permdnn_nn::data::{GlyphImages, TranslationPairs};
use permdnn_nn::layers::WeightFormat;
use permdnn_nn::lstm::Seq2Seq;
use permdnn_runtime::{ParallelExecutor, ServiceModel};

/// Nominal tick rate: 1 tick = 1 µs.
const TICK_HZ: f64 = 1e6;
/// Batch size the throughput model charges.
const BATCH: u64 = 32;
/// Worker counts reported in the sweep.
const WORKERS: [usize; 3] = [1, 2, 4];
/// Worker counts the bit-exactness checks cover (incl. non-divisors).
const EXACTNESS_WORKERS: [usize; 4] = [1, 2, 3, 7];

struct SweepPoint {
    model: &'static str,
    format: String,
    muls_per_example: u64,
    rps: Vec<f64>, // one per WORKERS entry
}

fn modeled_rps(muls_per_example: u64, workers: usize, service: &ServiceModel) -> f64 {
    let ticks = service.batch_ticks(muls_per_example * BATCH, workers);
    BATCH as f64 / ticks as f64 * TICK_HZ
}

fn sweep_point(model: &'static str, format: String, muls_per_example: u64) -> SweepPoint {
    let service = ServiceModel::default();
    SweepPoint {
        model,
        format,
        muls_per_example,
        rps: WORKERS
            .iter()
            .map(|&w| modeled_rps(muls_per_example, w, &service))
            .collect(),
    }
}

fn main() {
    let full = full_run_requested();
    let out_path = out_path_arg().unwrap_or_else(|| "BENCH_models.json".to_string());
    let (samples, epochs) = if full { (400usize, 6usize) } else { (128, 2) };
    let formats = [WeightFormat::Dense, WeightFormat::PermutedDiagonal { p: 4 }];

    print_header("Unified model sweep: format x model x workers");
    println!(
        "{:<10} {:<28} {:>14} {:>11} {:>11} {:>11}",
        "model", "format", "muls/example", "rps@1w", "rps@2w", "rps@4w"
    );

    let mut points: Vec<SweepPoint> = Vec::new();

    // ---- Conv net ----
    let glyphs = GlyphImages::generate(&mut seeded_rng(31), samples, 4, 12, 1, 0.15);
    for format in formats {
        let mut model = ConvClassifier::new(12, 1, [8, 16], 4, format, &mut seeded_rng(32))
            .expect("dense and PD convolutions are trainable");
        model.fit(&glyphs, epochs, 0.05);
        let frozen = model.freeze();
        let (quantized, report) = frozen.quantize(&glyphs.images[..16.min(glyphs.len())]);
        assert!(
            report.fully_integer(),
            "conv {} should run on integer kernels",
            format.label()
        );

        // Worker-count bit-exactness, f32 and quantized (the PR 2 invariant).
        let image = &glyphs.images[0];
        let sequential = frozen.logits(image).unwrap();
        let q_sequential = quantized.logits(image).unwrap();
        for workers in EXACTNESS_WORKERS {
            let exec = ParallelExecutor::new(workers);
            assert_eq!(
                frozen.logits_parallel(image, &exec).unwrap(),
                sequential,
                "conv {} diverged at {workers} workers",
                format.label()
            );
            assert_eq!(
                quantized.logits_parallel(image, &exec).unwrap(),
                q_sequential,
                "quantized conv {} diverged at {workers} workers",
                format.label()
            );
        }
        points.push(sweep_point(
            "conv",
            format.label(),
            frozen.mul_count_per_example(),
        ));
    }

    // ---- Seq2seq LSTM ----
    let pairs = TranslationPairs::generate(&mut seeded_rng(41), samples, 8, 4);
    for format in formats {
        let mut model = Seq2Seq::new(8, 32, format, &mut seeded_rng(42));
        model.fit(&pairs, epochs, 0.25);
        let frozen = model.freeze();
        let (quantized, report) = frozen.quantize(&pairs);
        assert!(
            report.fully_integer(),
            "lstm {} should run on integer kernels",
            format.label()
        );

        let sources: Vec<Vec<u32>> = pairs.sources.iter().take(7).cloned().collect();
        let sequential: Vec<Vec<u32>> = sources
            .iter()
            .map(|s| frozen.translate(s, 4).unwrap())
            .collect();
        let q_sequential: Vec<Vec<u32>> = sources
            .iter()
            .map(|s| quantized.translate(s, 4).unwrap())
            .collect();
        for workers in EXACTNESS_WORKERS {
            let exec = ParallelExecutor::new(workers);
            assert_eq!(
                frozen.translate_batch(&sources, 4, &exec).unwrap(),
                sequential,
                "lstm {} diverged at {workers} workers",
                format.label()
            );
            assert_eq!(
                quantized.translate_batch(&sources, 4, &exec).unwrap(),
                q_sequential,
                "quantized lstm {} diverged at {workers} workers",
                format.label()
            );
        }
        points.push(sweep_point(
            "lstm",
            format.label(),
            frozen.mul_count_per_translation(4, 4),
        ));
    }

    // ---- MLP (context row: the stack PRs 1-3 already served) ----
    for format in formats {
        let model =
            permdnn_nn::MlpClassifier::new_frozen(32, &[48], 4, format, &mut seeded_rng(52));
        points.push(sweep_point(
            "mlp",
            format.label(),
            model.mul_count_per_example(),
        ));
    }

    for p in &points {
        println!(
            "{:<10} {:<28} {:>14} {:>11.0} {:>11.0} {:>11.0}",
            p.model, p.format, p.muls_per_example, p.rps[0], p.rps[1], p.rps[2]
        );
    }

    // Acceptance: PD conv/LSTM modeled throughput >= 1.5x dense at p = 4.
    let mut speedups = Vec::new();
    for model in ["conv", "lstm"] {
        let dense = points
            .iter()
            .find(|p| p.model == model && p.format == "dense")
            .expect("dense row present");
        let pd = points
            .iter()
            .find(|p| p.model == model && p.format.contains("permuted-diagonal"))
            .expect("pd row present");
        let speedup = pd.rps[2] / dense.rps[2];
        println!(
            "{model}: PD vs dense modeled throughput at 4 workers: {}",
            ratio(speedup)
        );
        assert!(
            speedup >= 1.5,
            "{model}: PD serving should model >= 1.5x dense throughput, got {speedup:.2}x"
        );
        speedups.push((model, speedup));
    }

    let json = render_json(&points, &speedups);
    std::fs::write(&out_path, json).expect("write bench JSON");
    println!("\nwrote {out_path}");
}

fn out_path_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
}

fn render_json(points: &[SweepPoint], speedups: &[(&str, f64)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"model_sweep\",");
    let _ = writeln!(s, "  \"tick_hz\": {TICK_HZ},");
    let _ = writeln!(s, "  \"batch\": {BATCH},");
    let _ = writeln!(
        s,
        "  \"service_model\": {{\"muls_per_worker_tick\": {}, \"batch_overhead_ticks\": {}}},",
        ServiceModel::default().muls_per_worker_tick,
        ServiceModel::default().batch_overhead_ticks
    );
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"model\": \"{}\", \"format\": \"{}\", \"muls_per_example\": {}, \
             \"requests_per_sec\": {{\"1\": {:.2}, \"2\": {:.2}, \"4\": {:.2}}}}}",
            p.model, p.format, p.muls_per_example, p.rps[0], p.rps[1], p.rps[2]
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"pd_vs_dense_throughput_at_4_workers\": {");
    for (i, (model, speedup)) in speedups.iter().enumerate() {
        let _ = write!(s, "\"{model}\": {speedup:.3}");
        if i + 1 < speedups.len() {
            s.push_str(", ");
        }
    }
    s.push_str("}\n}\n");
    s
}
