//! Regenerates Fig. 12 — speedup, area efficiency and energy efficiency of PERMDNN over
//! EIE (projected to 28 nm) on the AlexNet benchmark FC layers.
//!
//! Paper reference bands: 3.3x–4.8x speedup, 5.9x–8.5x area efficiency, 2.8x–4.0x energy
//! efficiency. Pass --all to also include the NMT layers (dense activations).

use permdnn_sim::comparison::{fig12_comparison, full_comparison};

fn main() {
    permdnn_bench::print_header(
        "Fig. 12 — PERMDNN vs EIE (28 nm projected) on benchmark FC layers",
    );
    let rows = if std::env::args().any(|a| a == "--all") {
        full_comparison(42)
    } else {
        fig12_comparison(42)
    };
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>16} {:>18}",
        "layer", "PERMDNN (us)", "EIE (us)", "speedup", "area efficiency", "energy efficiency"
    );
    for row in &rows {
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>12} {:>16} {:>18}",
            row.workload,
            row.permdnn.latency_us,
            row.eie.latency_us,
            permdnn_bench::ratio(row.speedup),
            permdnn_bench::ratio(row.area_efficiency),
            permdnn_bench::ratio(row.energy_efficiency)
        );
    }
    println!();
    println!(
        "Paper reference bands: speedup 3.3x-4.8x, area efficiency 5.9x-8.5x, energy 2.8x-4.0x."
    );
}
