//! Regenerates Table VI — qualitative and quantitative comparison of PermDNN vs CIRCNN
//! (arithmetic type, compression-ratio flexibility, input-sparsity utilisation).

use permdnn_core::cost::{circnn_matvec_ops, circnn_to_permdnn_mul_ratio, permdnn_matvec_ops};

fn main() {
    permdnn_bench::print_header("Table VI — advantages of PermDNN over CIRCNN");
    println!("{:<28} {:<26} {:<26}", "property", "CIRCNN", "PermDNN");
    println!(
        "{:<28} {:<26} {:<26}",
        "Arithmetic operation", "Complex number-based", "Real number-based"
    );
    println!(
        "{:<28} {:<26} {:<26}",
        "Flexible compression", "No (2^t block sizes only)", "Yes (any p)"
    );
    println!(
        "{:<28} {:<26} {:<26}",
        "Utilize input sparsity", "No (frequency domain)", "Yes (time domain)"
    );
    println!();
    println!("Quantitative arithmetic-cost comparison on a 2048x2048 layer (dense input):");
    println!(
        "{:>6} {:>22} {:>22} {:>12}",
        "p=k", "CIRCNN real muls", "PermDNN real muls", "ratio"
    );
    for p in [4usize, 8, 16, 64] {
        let c = circnn_matvec_ops(2048, 2048, p, true);
        let d = permdnn_matvec_ops(2048, 2048, p, 1.0);
        println!(
            "{:>6} {:>22} {:>22} {:>12}",
            p,
            c.real_muls,
            d.real_muls,
            permdnn_bench::ratio(circnn_to_permdnn_mul_ratio(2048, 2048, p))
        );
    }
    println!();
    println!("Non-power-of-two block sizes (p = 10, 12, ...) are usable by PermDNN but not by the");
    println!("FFT-based CIRCNN hardware (see permdnn-circulant::CirculantError::NonPowerOfTwo).");
}
