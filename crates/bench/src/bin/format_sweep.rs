//! Format sweep: build every weight format in the registry at the same layer
//! shape and compare storage, arithmetic cost and simulated engine latency —
//! all through the `CompressedLinear` trait, with zero per-format code at this
//! call site.
//!
//! Run with `cargo run --release -p permdnn-bench --bin format_sweep [--full]`.

use pd_tensor::init::{seeded_rng, sparse_activation_vector};
use permdnn_core::format::CompressedLinear;
use permdnn_nn::layers::WeightFormat;
use permdnn_sim::{engine, EngineConfig};

fn main() {
    let full = permdnn_bench::full_run_requested();
    let (rows, cols) = if full { (4096, 4096) } else { (512, 1024) };
    let activation_nonzero = 0.358; // Alex-FC6's activation density (Table VII)

    permdnn_bench::print_header(&format!(
        "Weight-format sweep on a {rows}x{cols} FC layer ({:.1}% non-zero activations)",
        activation_nonzero * 100.0
    ));

    let formats = [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 8 },
        WeightFormat::SharedPermutedDiagonal { p: 8, tag_bits: 4 },
        WeightFormat::Circulant { k: 8 },
        WeightFormat::UnstructuredSparse { p: 8 },
    ];

    let mut rng = seeded_rng(7);
    let x = sparse_activation_vector(&mut rng, cols, 1.0 - activation_nonzero);
    let cfg = EngineConfig::paper_32pe();

    println!(
        "{:<42} {:>10} {:>8} {:>12} {:>10} {:>10}",
        "format", "stored", "ratio", "mul_count", "cycles", "us"
    );
    for format in formats {
        // Everything below this line goes through the trait: construction via
        // the registry, execution via matvec, accounting via the trait getters,
        // and the cycle model via the format-derived workload.
        let w: Box<dyn CompressedLinear> = format.build(rows, cols, &mut rng);
        let y = w.matvec(&x).expect("input matches layer width");
        let checksum: f32 = y.iter().sum();
        let result = engine::simulate_compressed(&cfg, w.as_ref(), activation_nonzero);
        println!(
            "{:<42} {:>10} {:>7.1}x {:>12} {:>10} {:>10.2}   (checksum {checksum:+.3})",
            w.label(),
            w.stored_weights(),
            w.compression_ratio(),
            w.mul_count(),
            result.cycles,
            result.latency_us,
        );
    }

    println!();
    println!(
        "PermDNN stores weights without indices, multiplies in the real domain and skips \
         zero activations; the sweep shows all three advantages at one glance."
    );
}
