//! Regenerates Fig. 4 — per-weight storage requirement comparison between unstructured
//! sparse formats (EIE 4-bit weight + 4-bit index, CSR) and the permuted-diagonal format.

use permdnn_core::storage::{csr_storage, dense_storage, eie_storage, permdnn_storage, LayerShape};

fn main() {
    permdnn_bench::print_header("Fig. 4 — storage requirement comparison");
    println!(
        "{:<14} {:>10} {:>18} {:>18} {:>18} {:>18}",
        "layer", "density", "dense 32b (MB)", "CSR 16b (MB)", "EIE 4+4b (MB)", "PermDNN 4b (MB)"
    );
    for (name, shape, p) in [
        ("Alex-FC6", LayerShape::new(4096, 9216), 10usize),
        ("Alex-FC7", LayerShape::new(4096, 4096), 10),
        ("Alex-FC8", LayerShape::new(1000, 4096), 4),
        ("NMT-3", LayerShape::new(2048, 2048), 8),
    ] {
        let density = 1.0 / p as f64;
        let dense = dense_storage(shape, 32);
        let csr = csr_storage(shape, density, 16);
        let eie = eie_storage(shape, density, 4, 4, 16, 32);
        let pd = permdnn_storage(shape, p, 4);
        println!(
            "{:<14} {:>10.3} {:>18.2} {:>18.2} {:>18.2} {:>18.2}",
            name,
            density,
            dense.total_mb(),
            csr.total_mb(),
            eie.total_mb(),
            pd.total_mb()
        );
        println!(
            "{:<14} {:>10} {:>18} {:>18} {:>18} {:>18}",
            "",
            "",
            "",
            format!("({:.0}% index)", csr.index_overhead_fraction() * 100.0),
            format!("({:.0}% index)", eie.index_overhead_fraction() * 100.0),
            "(no index)"
        );
    }
    println!();
    println!("At equal non-zero count, EIE spends ~8 bits per weight (4-bit tag + 4-bit index)");
    println!("while PermDNN spends 4: the index elimination of Section III-G / Fig. 4.");
}
