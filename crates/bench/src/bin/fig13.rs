//! Regenerates Fig. 13 — scalability of the PERMDNN engine with the number of PEs
//! (speedup over the 8-PE configuration for every Table VII benchmark layer).

use permdnn_sim::comparison::fig13_scalability;

fn main() {
    permdnn_bench::print_header("Fig. 13 — scalability of PERMDNN on different benchmarks");
    let pe_counts = [8usize, 16, 32, 64, 128, 256];
    let points = fig13_scalability(&pe_counts);
    print!("{:<10}", "layer");
    for p in &points {
        print!(" {:>9}", format!("{} PEs", p.n_pe));
    }
    println!();
    let names: Vec<String> = points[0].speedups.iter().map(|(n, _)| n.clone()).collect();
    for (i, name) in names.iter().enumerate() {
        print!("{:<10}", name);
        for p in &points {
            print!(" {:>9.2}", p.speedups[i].1);
        }
        println!();
    }
    println!();
    println!("Speedups are relative to the 8-PE configuration; the paper reports near-linear");
    println!("scaling because the even non-zero distribution removes load imbalance entirely.");
}
