//! f32-vs-q16 sweep across weight formats: accuracy delta and serving
//! throughput of the 16-bit fixed-point backend.
//!
//! For every registry format the sweep trains the same small classifier on
//! the synthetic Gaussian-clusters task, quantizes it to the fixed-point
//! backend with per-layer calibration, and then:
//!
//! * compares classification accuracy of the f32 and q16 models on the held
//!   out eval set (the acceptance bar: within 1 percentage point);
//! * serves the same saturated request stream through `runtime::serve` with
//!   both models — the f32 one under the default `ServiceModel`, the q16 one
//!   under `ServiceModel::fixed_point()` (the 16-bit datapath retires 4× the
//!   multiplies per worker tick) — and reports modeled requests/sec.
//!
//! Results land in `BENCH_quant.json` (override with `--out PATH`).
//!
//! Run: `cargo run --release -p permdnn-bench --bin quant_sweep [-- --full]`

use std::fmt::Write as _;
use std::sync::Arc;

use pd_tensor::init::seeded_rng;
use permdnn_bench::{full_run_requested, print_header, ratio};
use permdnn_nn::data::GaussianClusters;
use permdnn_nn::layers::WeightFormat;
use permdnn_nn::MlpClassifier;
use permdnn_runtime::{
    seeded_request_stream, serve, BatchConfig, ParallelExecutor, ServeConfig, ServiceModel,
};

/// Nominal tick rate: 1 tick = 1 µs.
const TICK_HZ: f64 = 1e6;

struct SweepPoint {
    format: String,
    f32_accuracy: f64,
    q16_accuracy: f64,
    accuracy_delta: f64,
    fully_integer: bool,
    f32_rps: f64,
    q16_rps: f64,
    throughput_ratio: f64,
}

fn main() {
    let full = full_run_requested();
    let out_path = out_path_arg().unwrap_or_else(|| "BENCH_quant.json".to_string());

    let (input_dim, hidden, classes) = (32usize, [48usize], 4usize);
    let (n_samples, epochs, n_requests) = if full {
        (4000usize, 10usize, 1024usize)
    } else {
        (2000, 6, 256)
    };
    let formats = [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 4 },
        WeightFormat::Circulant { k: 4 },
        WeightFormat::UnstructuredSparse { p: 4 },
        WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
    ];

    let (train, eval) =
        GaussianClusters::generate(&mut seeded_rng(77), n_samples, classes, input_dim, 1.1)
            .split(0.5);
    let calibration: Vec<Vec<f32>> = train.features.iter().take(256).cloned().collect();
    let stream = seeded_request_stream(7, n_requests, input_dim, 0.0);
    let exec = ParallelExecutor::new(4);
    let batching = BatchConfig::new(32, 0);

    print_header("Fixed-point backend: f32 vs q16 per format");
    println!(
        "model {input_dim}-{hidden:?}-{classes}, {} train / {} eval examples, \
         {n_requests}-request saturated stream, 4 workers\n",
        train.len(),
        eval.len()
    );
    println!(
        "{:<34} {:>8} {:>8} {:>8} {:>11} {:>11} {:>7}",
        "format", "f32 acc", "q16 acc", "delta", "f32 req/s", "q16 req/s", "ratio"
    );

    let mut points: Vec<SweepPoint> = Vec::new();
    for format in formats {
        let mut model =
            MlpClassifier::new(input_dim, &hidden, classes, format, &mut seeded_rng(2024));
        model.fit(&train, epochs, 8, 0.1);
        let f32_accuracy = model.evaluate(&eval);
        let (q_model, report) = model.quantize(&calibration);
        let q16_accuracy = q_model.evaluate(&eval);
        let accuracy_delta = f32_accuracy - q16_accuracy;

        let f32_report = serve(
            &model,
            &exec,
            &ServeConfig {
                batching,
                service: ServiceModel::default(),
            },
            stream.clone(),
        )
        .expect("stream inputs match the model width");
        let q_model = Arc::new(q_model);
        let q16_report = serve(
            q_model.as_ref(),
            &exec,
            &ServeConfig {
                batching,
                service: ServiceModel::fixed_point(),
            },
            stream.clone(),
        )
        .expect("stream inputs match the model width");
        // The served quantized outputs are the quantized model's own logits.
        for done in q16_report.completed.iter().take(8) {
            assert_eq!(
                done.output,
                q_model.logits(&stream[done.id as usize].input),
                "{}: served output diverged from sequential quantized inference",
                format.label()
            );
        }

        let point = SweepPoint {
            format: format.label(),
            f32_accuracy,
            q16_accuracy,
            accuracy_delta,
            fully_integer: report.fully_integer(),
            f32_rps: f32_report.requests_per_sec(TICK_HZ),
            q16_rps: q16_report.requests_per_sec(TICK_HZ),
            throughput_ratio: q16_report.requests_per_sec(TICK_HZ)
                / f32_report.requests_per_sec(TICK_HZ),
        };
        println!(
            "{:<34} {:>8.4} {:>8.4} {:>8.4} {:>11.0} {:>11.0} {:>7}",
            point.format,
            point.f32_accuracy,
            point.q16_accuracy,
            point.accuracy_delta,
            point.f32_rps,
            point.q16_rps,
            ratio(point.throughput_ratio)
        );
        assert!(
            point.accuracy_delta.abs() <= 0.01,
            "{}: q16 accuracy drifted by {:.4} (> 1 point) from f32",
            point.format,
            point.accuracy_delta
        );
        assert!(
            point.throughput_ratio > 1.5,
            "{}: fixed-point serving should out-run f32 ({:.2}x)",
            point.format,
            point.throughput_ratio
        );
        points.push(point);
    }

    let json = render_json(input_dim, &hidden, classes, n_requests, &points);
    std::fs::write(&out_path, json).expect("write bench JSON");
    println!("\nwrote {out_path}");
}

fn out_path_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
}

fn render_json(
    input_dim: usize,
    hidden: &[usize],
    classes: usize,
    n_requests: usize,
    points: &[SweepPoint],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"quant_sweep\",");
    let _ = writeln!(s, "  \"tick_hz\": {TICK_HZ},");
    let hidden_list = hidden
        .iter()
        .map(|h| h.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        s,
        "  \"model\": {{\"input_dim\": {input_dim}, \"hidden\": [{hidden_list}], \"classes\": {classes}}},"
    );
    let _ = writeln!(s, "  \"requests\": {n_requests},");
    let _ = writeln!(
        s,
        "  \"service_models\": {{\"f32_muls_per_worker_tick\": {}, \"q16_muls_per_worker_tick\": {}}},",
        ServiceModel::default().muls_per_worker_tick,
        ServiceModel::fixed_point().muls_per_worker_tick
    );
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"format\": \"{}\", \"f32_accuracy\": {:.4}, \"q16_accuracy\": {:.4}, \
             \"accuracy_delta\": {:.4}, \"fully_integer\": {}, \"f32_requests_per_sec\": {:.2}, \
             \"q16_requests_per_sec\": {:.2}, \"throughput_ratio\": {:.3}}}",
            p.format,
            p.f32_accuracy,
            p.q16_accuracy,
            p.accuracy_delta,
            p.fully_integer,
            p.f32_rps,
            p.q16_rps,
            p.throughput_ratio
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
