//! Regenerates Table II — AlexNet FC-layer compression and accuracy.
//!
//! Paper reference: dense 234.5 MB / 80.20% top-5; PD(10,10,4) 25.9 MB (9.0x) / 80.00%;
//! PD + 16-bit fixed 12.9 MB (18.1x) / 79.90%. The accuracy column here is the synthetic
//! MLP proxy (see DESIGN.md §2); the storage columns are exact.

fn main() {
    let quick = !permdnn_bench::full_run_requested();
    permdnn_bench::print_header("Table II — AlexNet on ImageNet (FC layers)");
    let report = permdnn_nn::experiments::alexnet_fc::run(42, quick);
    print!("{}", report.to_table());
    println!();
    println!("Paper reference: 234.5 MB -> 25.9 MB (9.0x) -> 12.9 MB (18.1x);");
    println!("top-5 accuracy 80.20% -> 80.00% -> 79.90% (relative degradation ~0.2-0.3 points).");
}
