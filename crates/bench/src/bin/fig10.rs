//! Regenerates Fig. 10 — cycle-by-cycle computation schedules of a 2-PE engine with
//! N_MUL = 1 and N_ACC = 4 on an 8x8 weight matrix, for p = 2 (Case 1) and p = 3 (Case 2).

use pd_tensor::init::seeded_rng;
use permdnn_core::BlockPermDiagMatrix;
use permdnn_sim::schedule::schedule_dense_input;

fn main() {
    permdnn_bench::print_header(
        "Fig. 10 — example computation schedules (2 PEs, N_MUL=1, N_ACC=4)",
    );
    for p in [2usize, 3] {
        let matrix = BlockPermDiagMatrix::random(8, 8, p, &mut seeded_rng(10 + p as u64));
        let schedule = schedule_dense_input(&matrix, 2, 1, 4);
        println!(
            "--- p = {p} ({}) ---",
            if schedule.passes == 1 {
                "Case 1: continuous column-wise processing"
            } else {
                "Case 2: column revisits after accumulator release"
            }
        );
        print!("{}", schedule.to_text());
        println!();
    }
}
