//! Regenerates Table IV — ResNet-20 CONV-layer compression and accuracy (p = 2).
//!
//! Paper reference: dense 1.09 MB / 91.25%; PD 0.70 MB (1.55x) / 90.85%;
//! PD + 16-bit 0.35 MB (3.10x) / 90.6%.

fn main() {
    let quick = !permdnn_bench::full_run_requested();
    permdnn_bench::print_header("Table IV — ResNet-20 on CIFAR-10 (CONV layers, p=2)");
    let report = permdnn_nn::experiments::conv_tables::run(44, quick, false);
    print!("{}", report.to_table());
    println!();
    println!("Paper reference: 1.09 MB -> 0.70 MB (1.55x) -> 0.35 MB (3.10x); acc 91.25 / 90.85 / 90.6 %.");
}
