//! Regenerates the Section III-F result: converting a pre-trained dense model to PD form
//! (dense -> l2-optimal PD approximation -> fine-tune).
//!
//! Paper reference (LeNet-5 on MNIST, p=4 CONV / p=100 FC): 99.06% accuracy after
//! conversion + re-training, 40x overall compression.

fn main() {
    let quick = !permdnn_bench::full_run_requested();
    permdnn_bench::print_header("Section III-F — pre-trained dense model to PermDNN");
    let report = permdnn_nn::experiments::lenet_pretrained::run(46, quick);
    print!("{}", report.to_table());
    println!();
    println!(
        "Paper reference: LeNet-5 99.06% accuracy and 40x compression after the same pipeline."
    );
}
