//! Regenerates Table X — design parameters of EIE (reported and projected to 28 nm) and
//! the 32-PE PERMDNN engine.

use permdnn_sim::comparison::table10_rows;

fn main() {
    permdnn_bench::print_header("Table X — comparison of EIE and PERMDNN design parameters");
    println!(
        "{:<22} {:>6} {:>8} {:>12} {:>12} {:>10}",
        "design", "PEs", "node", "clock (MHz)", "area (mm2)", "power (W)"
    );
    for row in table10_rows() {
        println!(
            "{:<22} {:>6} {:>6}nm {:>12.0} {:>12.2} {:>10.2}",
            row.design, row.n_pe, row.node_nm, row.clock_mhz, row.area_mm2, row.power_w
        );
    }
    println!();
    println!("Projection rule (footnote 10): linear frequency, quadratic area, constant power.");
    println!("Both designs use 4-bit weight sharing and 16-bit quantization.");
}
