//! Regenerates the committed golden snapshot fixtures under
//! `tests/fixtures/` (one `.snap` + `.logits` pair per entry of
//! `permdnn_bench::fixtures::all`).
//!
//! The fixtures pin the on-disk snapshot format: run this ONLY after an
//! intentional format change (with a container version bump), then commit
//! the results. `tests/snapshot.rs` fails if the committed bytes drift from
//! what today's code writes.
//!
//! Run: `cargo run -p permdnn-bench --bin gen_fixtures`

use std::path::PathBuf;

use permdnn_bench::fixtures;

fn main() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures");
    std::fs::create_dir_all(&dir).expect("create tests/fixtures");
    for fixture in fixtures::all() {
        let snap = dir.join(format!("{}.snap", fixture.name));
        let logits = dir.join(format!("{}.logits", fixture.name));
        std::fs::write(&snap, &fixture.bytes).expect("write fixture snapshot");
        std::fs::write(&logits, fixtures::logits_to_bytes(&fixture.logits))
            .expect("write fixture logits");
        assert!(
            fixture.bytes.len() <= 8 * 1024,
            "{}: fixture is {} bytes, above the 8 KiB cap",
            fixture.name,
            fixture.bytes.len()
        );
        println!(
            "{:<16} {:>5} bytes  -> {}",
            fixture.name,
            fixture.bytes.len(),
            snap.display()
        );
    }
}
