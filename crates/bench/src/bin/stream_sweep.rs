//! Block-streamed snapshot sweep: serving models bigger than the weight
//! cache.
//!
//! Three frozen permuted-diagonal MLPs are saved, block-streamed
//! ([`block_stream_snapshot`]) and registered in a paged
//! [`ModelRegistry`] ([`ModelRegistry::new_paged`]) whose byte budget is
//! swept from "everything fits" down past the footprint of a single model —
//! the regime the whole-load carve-out cannot serve at all. One Zipf-skewed
//! multi-tenant stream ([`ZipfMix`]) runs at every budget and the sweep
//! asserts the paper-level contract of the paging layer:
//!
//! * **Bit-identity.** Outputs, batch membership and completion order are
//!   identical to the unlimited-budget whole-load baseline at *every*
//!   budget — paging moves bytes, never arithmetic.
//! * **Bounded residency.** Peak resident weight bytes never exceed
//!   `budget + max_block` (the incoming block is the only overshoot).
//! * **Cost is visible.** Demand faults are charged modeled ticks, so
//!   req/s degrades monotonically-ish as the budget shrinks instead of
//!   lying about free transfers.
//!
//! Results land in `BENCH_stream.json` (override with `--out PATH`).
//!
//! Run: `cargo run --release -p permdnn-bench --bin stream_sweep [-- --full]`

use std::fmt::Write as _;

use pd_tensor::init::seeded_rng;
use permdnn_bench::{assert_floor, out_path, print_header, ratio, write_artifact};
use permdnn_core::snapshot::{block_stream_snapshot, read_block_index};
use permdnn_nn::layers::WeightFormat;
use permdnn_nn::snapshot::{batch_model_loader, paged_config};
use permdnn_nn::MlpClassifier;
use permdnn_runtime::{
    AdmissionPolicy, BatchConfig, ModelRegistry, ParallelExecutor, ServeConfig, ServiceModel,
    TaggedRequest, TrafficConfig, TrafficReport, ZipfMix,
};

/// Nominal tick rate: 1 tick = 1 µs.
const TICK_HZ: f64 = 1e6;
/// Architecture of every benchmarked model (hidden-layer dominated).
const IN_DIM: usize = 64;
const HIDDEN: [usize; 2] = [128, 128];
const CLASSES: usize = 10;
/// Zipf skew across the three tenants.
const ZIPF_SKEW: f64 = 1.2;
/// Mean inter-arrival ticks: sparse enough that prefetch can hide in idle
/// gaps, dense enough that batches form.
const ARRIVAL_MEAN: f64 = 4.0;

struct BudgetPoint {
    label: &'static str,
    budget_bytes: u64,
    budget_fraction: f64,
    requests_per_sec: f64,
    final_tick: u64,
    blocks_faulted: u64,
    bytes_faulted: u64,
    evictions: u64,
    peak_resident_bytes: u64,
}

fn main() {
    let full = permdnn_bench::full_run_requested();
    let out_path = out_path("BENCH_stream.json");
    let requests = if full { 600 } else { 240 };
    let workers = 2usize;

    print_header("Block-streamed snapshots: budget sweep over a Zipf mix");

    // ---- Models: whole snapshots + their block-streamed forms. ----
    let ids = ["hot", "warm", "cold"];
    let snaps: Vec<Vec<u8>> = ids
        .iter()
        .enumerate()
        .map(|(i, _)| {
            MlpClassifier::new_frozen(
                IN_DIM,
                &HIDDEN,
                CLASSES,
                WeightFormat::PermutedDiagonal { p: 4 },
                &mut seeded_rng(0x9000 + i as u64),
            )
            .save()
            .expect("frozen models snapshot")
        })
        .collect();
    let blocked: Vec<Vec<u8>> = snaps
        .iter()
        .map(|s| block_stream_snapshot(s).expect("MLP snapshots block-stream"))
        .collect();

    let per_model: Vec<u64> = blocked
        .iter()
        .map(|b| {
            read_block_index(b)
                .expect("valid index")
                .total_block_bytes()
        })
        .collect();
    let total: u64 = per_model.iter().sum();
    let largest: u64 = *per_model.iter().max().expect("nonempty");
    let max_block: u64 = blocked
        .iter()
        .map(|b| read_block_index(b).expect("valid index").max_block_bytes())
        .max()
        .expect("nonempty");
    println!(
        "3 models, {total} weight-block bytes total, largest model {largest} B, \
         largest block {max_block} B\n"
    );

    // ---- One Zipf stream shared by every run. ----
    let stream: Vec<TaggedRequest> = ZipfMix::new(
        ids.iter().map(|id| (id.to_string(), IN_DIM)).collect(),
        ZIPF_SKEW,
        ARRIVAL_MEAN,
    )
    .expect("valid mix")
    .stream(0x9100, requests);
    let cfg = TrafficConfig::new(
        ServeConfig {
            batching: BatchConfig::new(8, 16),
            service: ServiceModel::default(),
        },
        AdmissionPolicy::Fifo,
    );
    let exec = ParallelExecutor::new(workers);

    // ---- Whole-load baseline: unlimited budget, plain snapshots. ----
    let mut whole = ModelRegistry::new(batch_model_loader(), u64::MAX);
    for (id, snap) in ids.iter().zip(&snaps) {
        whole.insert(id, snap.clone()).expect("validated snapshot");
    }
    let baseline = whole
        .serve_traffic(&exec, &cfg, stream.clone())
        .expect("all ids registered");
    assert!(baseline.rejections.is_empty(), "no SLOs, nothing sheds");
    let baseline_rps = baseline.serve.requests_per_sec(TICK_HZ);
    let baseline_strip = strip(&baseline);
    println!(
        "whole-load baseline ({workers} workers): {baseline_rps:.0} req/s modeled, \
         makespan {} ticks\n",
        baseline.serve.final_tick
    );

    // ---- Paged budget sweep, down past a single model's footprint. ----
    let budgets: [(&str, u64); 4] = [
        ("all-resident", total),
        ("half", total / 2),
        ("sub-model", (largest * 3) / 4),
        ("near-minimal", max_block + 64),
    ];
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>10} {:>9} {:>11}",
        "budget", "bytes", "req/s", "faults", "fault B", "evicts", "peak res B"
    );

    let mut points: Vec<BudgetPoint> = Vec::new();
    for (label, budget) in budgets {
        assert!(
            budget >= max_block,
            "swept budgets hold at least one block ({budget} < {max_block})"
        );
        let mut reg = ModelRegistry::new_paged(batch_model_loader(), paged_config(), budget);
        for (id, blk) in ids.iter().zip(&blocked) {
            reg.insert(id, blk.clone()).expect("blocked inserts page");
        }
        let report = reg
            .serve_traffic(&exec, &cfg, stream.clone())
            .expect("all ids registered");

        // The two acceptance bars, at every budget.
        assert_eq!(
            strip(&report),
            baseline_strip,
            "{label}: paged outputs must be bit-identical to whole-load"
        );
        let peak = report.serve.stats.peak_resident_bytes;
        assert!(
            peak <= budget + max_block,
            "{label}: peak resident {peak} exceeds budget {budget} + max block {max_block}"
        );
        assert!(reg.loaded_bytes() <= budget + max_block);

        let rps = report.serve.requests_per_sec(TICK_HZ);
        let s = &report.serve.stats;
        println!(
            "{:<14} {:>10} {:>10.0} {:>8} {:>10} {:>9} {:>11}",
            label, budget, rps, s.blocks_faulted, s.bytes_faulted, s.evictions, peak
        );
        points.push(BudgetPoint {
            label,
            budget_bytes: budget,
            budget_fraction: budget as f64 / total as f64,
            requests_per_sec: rps,
            final_tick: report.serve.final_tick,
            blocks_faulted: s.blocks_faulted,
            bytes_faulted: s.bytes_faulted,
            evictions: s.evictions,
            peak_resident_bytes: peak,
        });
    }

    // Generous budget pages every block exactly once; the modeled cost of
    // that one cold pass must not halve throughput.
    let full_budget = &points[0];
    assert_floor(
        "all-resident paged throughput vs whole-load",
        full_budget.requests_per_sec / baseline_rps,
        0.5,
    );
    // The sub-model budget cannot keep every block resident, so it must
    // fault more than the cold pass and evict under pressure.
    let tight = points.iter().find(|p| p.label == "near-minimal").unwrap();
    assert!(
        tight.blocks_faulted > full_budget.blocks_faulted,
        "tight budgets re-fault evicted blocks"
    );
    assert!(tight.evictions > 0, "tight budgets evict");
    println!(
        "\nall budgets bit-identical to whole-load; cold-pass throughput {} of baseline",
        ratio(full_budget.requests_per_sec / baseline_rps)
    );

    let json = render_json(total, largest, max_block, baseline_rps, workers, &points);
    write_artifact(&out_path, &json);
}

/// The budget-invariant fingerprint of a run: everything except modeled
/// ticks (paging is *charged*, so ticks legitimately differ).
fn strip(r: &TrafficReport) -> Vec<(String, u64, usize, Vec<f32>)> {
    r.serve
        .completed
        .iter()
        .map(|tc| {
            (
                tc.model_id.clone(),
                tc.completed.id,
                tc.completed.batch_size,
                tc.completed.output.clone(),
            )
        })
        .collect()
}

fn render_json(
    total: u64,
    largest: u64,
    max_block: u64,
    baseline_rps: f64,
    workers: usize,
    points: &[BudgetPoint],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"stream_sweep\",");
    let _ = writeln!(s, "  \"tick_hz\": {TICK_HZ},");
    let _ = writeln!(s, "  \"workers\": {workers},");
    let _ = writeln!(
        s,
        "  \"models\": {{\"count\": 3, \"total_block_bytes\": {total}, \
         \"largest_model_bytes\": {largest}, \"max_block_bytes\": {max_block}}},"
    );
    let _ = writeln!(
        s,
        "  \"whole_load_baseline\": {{\"budget_bytes\": \"unlimited\", \
         \"requests_per_sec\": {:.2}}},",
        baseline_rps
    );
    s.push_str("  \"paged_budgets\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"label\": \"{}\", \"budget_bytes\": {}, \"budget_fraction\": {:.3}, \
             \"requests_per_sec\": {:.2}, \"final_tick\": {}, \"blocks_faulted\": {}, \
             \"bytes_faulted\": {}, \"evictions\": {}, \"peak_resident_bytes\": {}, \
             \"bit_identical_to_whole_load\": true, \"peak_within_budget_plus_one_block\": true}}",
            p.label,
            p.budget_bytes,
            p.budget_fraction,
            p.requests_per_sec,
            p.final_tick,
            p.blocks_faulted,
            p.bytes_faulted,
            p.evictions,
            p.peak_resident_bytes
        );
        s.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
