//! Per-layer format autotuner: deterministic beam search over mixed-format
//! model specs on the accuracy / multiply-count / snapshot-size Pareto front.
//!
//! The paper fixes one compression format for the whole network; in practice
//! different layers tolerate different formats (an over-provisioned hidden
//! layer survives aggressive PD or pruning, a bottleneck layer may not). The
//! tuner searches the per-layer assignment space:
//!
//! * **Candidates** — every [`WeightFormat`] in [`TuneConfig::formats`]
//!   (dense, permuted-diagonal at several block sizes, circulant,
//!   CSC-pruned, EIE-encoded, shared-PD), each optionally wrapped in the
//!   16-bit fixed-point backend (`q16`).
//! * **Search** — beam search layer by layer. Each partial assignment is
//!   completed with dense-f32 tails and scored in full; because
//!   [`ModelSpec::realize`] derives every layer's projection RNG from
//!   `(seed, layer index)` alone, a layer's realized weights do not depend
//!   on what the search chose for other layers, so prefix scores are honest
//!   predictors of completed specs.
//! * **Scoring** — each candidate spec is realized from one shared trained
//!   dense reference, calibrated on the training features, and measured on
//!   the held-out split: top-1 accuracy (maximize), multiplies per example
//!   (minimize), snapshot bytes (minimize).
//! * **Output** — the full scored table, the 3-objective Pareto frontier
//!   ([`permdnn_core::pareto`]), and the knee point: the cheapest frontier
//!   model whose accuracy stays within [`TuneConfig::accuracy_slack`] of the
//!   all-dense baseline.
//!
//! Everything is seeded: same [`TuneConfig`] → byte-identical
//! [`render_json`] output and a bit-identical chosen model.

use std::collections::BTreeMap;

use permdnn_core::pareto::{knee_point, pareto_frontier, Objectives};
use permdnn_nn::data::GaussianClusters;
use permdnn_nn::layers::WeightFormat;
use permdnn_nn::spec::{LayerSpec, ModelSpec};
use permdnn_nn::MlpClassifier;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

use crate::json_f64;

/// Block sizes the tuner accepts for the PD-family formats. The paper's
/// hardware evaluation only covers power-of-two block sizes in this range,
/// and the search keeps the candidate grid aligned with it.
pub const SUPPORTED_BLOCK_SIZES: [usize; 4] = [2, 4, 8, 16];

/// Configuration for one tuning run. Every field participates in
/// determinism: two runs with equal configs produce byte-identical results.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Master seed: dataset generation, reference training init, and every
    /// candidate realization derive from it.
    pub seed: u64,
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Hidden layer widths of the reference MLP (one spec slot per entry).
    pub hidden_dims: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
    /// Total dataset size before the train/test split.
    pub samples: usize,
    /// Gaussian cluster overlap (0.3–0.8 is learnable but not trivial).
    pub noise: f32,
    /// Fraction of the dataset used for training (rest is held out).
    pub train_fraction: f64,
    /// Training epochs for the dense reference.
    pub epochs: usize,
    /// Mini-batch size for the dense reference.
    pub batch_size: usize,
    /// Learning rate for the dense reference.
    pub learning_rate: f32,
    /// Beam width: partial assignments kept per layer. Must be non-zero.
    pub beam_width: usize,
    /// Per-layer candidate formats.
    pub formats: Vec<WeightFormat>,
    /// When `true`, every format is also tried with q16 quantization.
    pub try_q16: bool,
    /// Knee-point accuracy slack: the chosen model must stay within this
    /// many accuracy points (0.01 = 1 point) of the all-dense baseline.
    pub accuracy_slack: f64,
}

impl TuneConfig {
    /// The fixture-scale search shared by `gen_fixtures`, `pareto_sweep` and
    /// the `tune` test suite: small enough for debug-profile test runs, rich
    /// enough that the frontier contains genuinely mixed assignments and the
    /// knee-point snapshot fits the 8 KiB fixture budget.
    pub fn sweep_config() -> Self {
        TuneConfig {
            seed: 0x7A12,
            input_dim: 16,
            hidden_dims: vec![24, 16],
            num_classes: 4,
            samples: 420,
            noise: 0.50,
            train_fraction: 0.7,
            epochs: 10,
            batch_size: 8,
            learning_rate: 0.1,
            beam_width: 4,
            formats: vec![
                WeightFormat::Dense,
                WeightFormat::PermutedDiagonal { p: 2 },
                WeightFormat::PermutedDiagonal { p: 4 },
                WeightFormat::Circulant { k: 4 },
                WeightFormat::UnstructuredSparse { p: 4 },
                WeightFormat::EieEncoded { p: 4 },
                WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
            ],
            try_q16: true,
            accuracy_slack: 0.01,
        }
    }

    /// Validates the search space before any work happens.
    pub fn validate(&self) -> Result<(), TuneError> {
        if self.beam_width == 0 {
            return Err(TuneError::EmptyBeam);
        }
        if self.formats.is_empty() {
            return Err(TuneError::NoCandidates);
        }
        for format in &self.formats {
            let p = match *format {
                WeightFormat::PermutedDiagonal { p }
                | WeightFormat::SharedPermutedDiagonal { p, .. } => p,
                _ => continue,
            };
            if !SUPPORTED_BLOCK_SIZES.contains(&p) {
                return Err(TuneError::InvalidBlockSize { p });
            }
        }
        Ok(())
    }

    /// The per-layer candidate list this config induces, in deterministic
    /// order: each format as f32, then (when [`TuneConfig::try_q16`]) each
    /// format again with q16.
    pub fn layer_candidates(&self) -> Vec<LayerSpec> {
        let mut out: Vec<LayerSpec> = self.formats.iter().map(|&f| LayerSpec::f32(f)).collect();
        if self.try_q16 {
            out.extend(self.formats.iter().map(|&f| LayerSpec::q16(f)));
        }
        out
    }
}

/// Typed errors from [`tune`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// `beam_width` was zero: the search would keep no partial assignments.
    EmptyBeam,
    /// The candidate format list was empty.
    NoCandidates,
    /// A PD-family candidate used a block size outside
    /// [`SUPPORTED_BLOCK_SIZES`].
    InvalidBlockSize {
        /// The rejected block size.
        p: usize,
    },
    /// A candidate spec failed to realize (propagated from the spec layer).
    Spec(permdnn_nn::SpecError),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::EmptyBeam => write!(f, "beam width must be non-zero"),
            TuneError::NoCandidates => write!(f, "candidate format list is empty"),
            TuneError::InvalidBlockSize { p } => write!(
                f,
                "block size {p} is outside the supported set {SUPPORTED_BLOCK_SIZES:?}"
            ),
            TuneError::Spec(e) => write!(f, "candidate failed to realize: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<permdnn_nn::SpecError> for TuneError {
    fn from(e: permdnn_nn::SpecError) -> Self {
        TuneError::Spec(e)
    }
}

/// One fully-scored candidate spec.
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    /// The per-layer assignment.
    pub spec: ModelSpec,
    /// Human-readable spec label (also the dedup key — unique per spec).
    pub label: String,
    /// Measured objectives: held-out accuracy, multiplies per example,
    /// snapshot bytes.
    pub objectives: Objectives,
}

/// The result of one tuning run: the scored table, the frontier over it,
/// and everything needed to reproduce the chosen model bit-for-bit.
pub struct TuneRun {
    /// Every distinct spec the search scored, in first-scored order
    /// (deterministic given the config).
    pub scored: Vec<ScoredCandidate>,
    /// Indices into [`TuneRun::scored`] forming the Pareto frontier
    /// (ascending).
    pub frontier: Vec<usize>,
    /// Index of the knee-point spec the tuner chose.
    pub chosen: usize,
    /// Index of the all-dense f32 baseline (always scored).
    pub all_dense: usize,
    reference: MlpClassifier,
    calibration: Vec<Vec<f32>>,
    test: GaussianClusters,
    seed: u64,
}

impl TuneRun {
    /// Rebuilds the scored candidate at `index` bit-identically to how it was
    /// scored during the search.
    pub fn realize(&self, index: usize) -> Result<MlpClassifier, TuneError> {
        Ok(self.scored[index]
            .spec
            .realize(&self.reference, &self.calibration, self.seed)?)
    }

    /// The chosen knee-point model, rebuilt bit-identically.
    pub fn chosen_model(&self) -> Result<MlpClassifier, TuneError> {
        self.realize(self.chosen)
    }

    /// The held-out evaluation split (for serving-path cross-checks).
    pub fn test_set(&self) -> &GaussianClusters {
        &self.test
    }

    /// Convenience accessor: the chosen candidate's scored objectives.
    pub fn chosen_objectives(&self) -> Objectives {
        self.scored[self.chosen].objectives
    }

    /// Convenience accessor: the all-dense baseline's objectives.
    pub fn dense_objectives(&self) -> Objectives {
        self.scored[self.all_dense].objectives
    }
}

/// Runs the full deterministic tuning pipeline: generate data, train the
/// dense reference, beam-search per-layer assignments, score every distinct
/// candidate, and pick the knee point of the Pareto frontier.
pub fn tune(cfg: &TuneConfig) -> Result<TuneRun, TuneError> {
    cfg.validate()?;
    let layers = cfg.hidden_dims.len();

    // Shared trained dense reference + data splits, all derived from the seed.
    let mut rng = ChaCha20Rng::seed_from_u64(cfg.seed);
    let data = GaussianClusters::generate(
        &mut rng,
        cfg.samples,
        cfg.num_classes,
        cfg.input_dim,
        cfg.noise,
    );
    let (train, test) = data.split(cfg.train_fraction);
    let mut reference = MlpClassifier::new(
        cfg.input_dim,
        &cfg.hidden_dims,
        cfg.num_classes,
        WeightFormat::Dense,
        &mut rng,
    );
    reference.fit(&train, cfg.epochs, cfg.batch_size, cfg.learning_rate);
    let calibration = train.features.clone();

    let mut scored: Vec<ScoredCandidate> = Vec::new();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    fn score(
        spec: ModelSpec,
        reference: &MlpClassifier,
        calibration: &[Vec<f32>],
        test: &GaussianClusters,
        seed: u64,
        scored: &mut Vec<ScoredCandidate>,
        seen: &mut BTreeMap<String, usize>,
    ) -> Result<usize, TuneError> {
        let label = spec.label();
        if let Some(&idx) = seen.get(&label) {
            return Ok(idx);
        }
        let model = spec.realize(reference, calibration, seed)?;
        let objectives = Objectives {
            accuracy: model.evaluate(test),
            mul_count: model.mul_count_per_example(),
            snapshot_bytes: model.save().expect("candidate snapshot encodes").len() as u64,
        };
        let idx = scored.len();
        scored.push(ScoredCandidate {
            spec,
            label: label.clone(),
            objectives,
        });
        seen.insert(label, idx);
        Ok(idx)
    }

    // Completes a partial assignment with dense-f32 tail layers.
    let complete = |prefix: &[LayerSpec]| -> ModelSpec {
        let mut hidden = prefix.to_vec();
        hidden.resize(layers, LayerSpec::f32(WeightFormat::Dense));
        ModelSpec { hidden }
    };

    // The all-dense baseline is always scored first so index 0 is the anchor
    // the frontier assertions and normalized beam utility compare against.
    let all_dense = score(
        complete(&[]),
        &reference,
        &calibration,
        &test,
        cfg.seed,
        &mut scored,
        &mut seen,
    )?;
    let dense = scored[all_dense].objectives;
    let utility = |o: Objectives| -> f64 {
        let mul_share = o.mul_count as f64 / dense.mul_count.max(1) as f64;
        let byte_share = o.snapshot_bytes as f64 / dense.snapshot_bytes.max(1) as f64;
        o.accuracy - 0.25 * mul_share - 0.25 * byte_share
    };

    let candidates = cfg.layer_candidates();
    let mut beam: Vec<Vec<LayerSpec>> = vec![Vec::new()];
    for _layer in 0..layers {
        let mut expansions: Vec<(Vec<LayerSpec>, usize)> = Vec::new();
        for prefix in &beam {
            for choice in &candidates {
                let mut extended = prefix.clone();
                extended.push(*choice);
                let idx = score(
                    complete(&extended),
                    &reference,
                    &calibration,
                    &test,
                    cfg.seed,
                    &mut scored,
                    &mut seen,
                )?;
                expansions.push((extended, idx));
            }
        }
        // Deterministic ranking: utility descending, label ascending as the
        // tie-break so equal-utility candidates never depend on insert order.
        expansions.sort_by(|a, b| {
            let (ua, ub) = (
                utility(scored[a.1].objectives),
                utility(scored[b.1].objectives),
            );
            ub.partial_cmp(&ua)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| scored[a.1].label.cmp(&scored[b.1].label))
        });
        expansions.truncate(cfg.beam_width);
        beam = expansions.into_iter().map(|(prefix, _)| prefix).collect();
    }

    let objectives: Vec<Objectives> = scored.iter().map(|s| s.objectives).collect();
    let frontier = pareto_frontier(&objectives);
    let floor = dense.accuracy - cfg.accuracy_slack;
    let chosen = knee_point(&objectives, &frontier, floor).expect("frontier of a non-empty table");

    Ok(TuneRun {
        scored,
        frontier,
        chosen,
        all_dense,
        reference,
        calibration,
        test,
        seed: cfg.seed,
    })
}

/// Renders a tuning run as the deterministic JSON artifact committed as
/// `BENCH_pareto.json`: byte-identical for equal configs.
pub fn render_json(cfg: &TuneConfig, run: &TuneRun) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"pareto_sweep\",\n");
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!(
        "  \"architecture\": \"{}-{}-{}\",\n",
        cfg.input_dim,
        cfg.hidden_dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("-"),
        cfg.num_classes
    ));
    out.push_str(&format!("  \"beam_width\": {},\n", cfg.beam_width));
    out.push_str(&format!(
        "  \"candidates_per_layer\": {},\n",
        cfg.layer_candidates().len()
    ));
    out.push_str(&format!("  \"specs_scored\": {},\n", run.scored.len()));
    out.push_str("  \"scored\": [\n");
    let frontier: std::collections::BTreeSet<usize> = run.frontier.iter().copied().collect();
    for (i, cand) in run.scored.iter().enumerate() {
        let comma = if i + 1 == run.scored.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"accuracy\": {}, \"mul_count\": {}, \"snapshot_bytes\": {}, \"on_frontier\": {}}}{}\n",
            cand.label,
            json_f64(cand.objectives.accuracy, 4),
            cand.objectives.mul_count,
            cand.objectives.snapshot_bytes,
            frontier.contains(&i),
            comma
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"frontier\": [{}],\n",
        run.frontier
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"all_dense_index\": {},\n", run.all_dense));
    out.push_str(&format!("  \"chosen_index\": {},\n", run.chosen));
    out.push_str(&format!(
        "  \"chosen_label\": \"{}\",\n",
        run.scored[run.chosen].label
    ));
    let dense = run.dense_objectives();
    let chosen = run.chosen_objectives();
    out.push_str(&format!(
        "  \"dense_accuracy\": {},\n  \"chosen_accuracy\": {},\n",
        json_f64(dense.accuracy, 4),
        json_f64(chosen.accuracy, 4)
    ));
    out.push_str(&format!(
        "  \"mul_reduction\": {},\n  \"size_reduction\": {}\n",
        json_f64(dense.mul_count as f64 / chosen.mul_count.max(1) as f64, 3),
        json_f64(
            dense.snapshot_bytes as f64 / chosen.snapshot_bytes.max(1) as f64,
            3
        )
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> TuneConfig {
        TuneConfig {
            hidden_dims: vec![8],
            samples: 80,
            epochs: 2,
            ..TuneConfig::sweep_config()
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = TuneConfig::sweep_config();
        cfg.beam_width = 0;
        assert_eq!(cfg.validate(), Err(TuneError::EmptyBeam));

        let mut cfg = TuneConfig::sweep_config();
        cfg.formats.clear();
        assert_eq!(cfg.validate(), Err(TuneError::NoCandidates));

        let mut cfg = TuneConfig::sweep_config();
        cfg.formats.push(WeightFormat::PermutedDiagonal { p: 3 });
        assert_eq!(cfg.validate(), Err(TuneError::InvalidBlockSize { p: 3 }));
    }

    #[test]
    fn candidate_list_is_deterministic_and_doubles_with_q16() {
        let mut cfg = TuneConfig::sweep_config();
        cfg.try_q16 = false;
        let plain = cfg.layer_candidates();
        assert_eq!(plain.len(), cfg.formats.len());
        cfg.try_q16 = true;
        assert_eq!(cfg.layer_candidates().len(), 2 * plain.len());
    }

    #[test]
    fn all_dense_is_always_scored_and_on_the_table() {
        let run = tune(&tiny_config()).expect("tune");
        assert_eq!(run.all_dense, 0);
        let dense_label = ModelSpec::all_dense(1).label();
        assert_eq!(run.scored[0].label, dense_label);
    }
}
