//! Deterministic golden-fixture construction for the snapshot format.
//!
//! The committed files under `tests/fixtures/` pin the on-disk snapshot
//! format against accidental drift: `gen_fixtures` writes exactly what this
//! module builds, and `tests/snapshot.rs` asserts that (a) rebuilding each
//! fixture today produces byte-identical snapshots, (b) every committed
//! fixture still loads, and (c) the loaded model's outputs on a fixed probe
//! input match the committed `.logits` sidecar bit-for-bit.
//!
//! Everything here is seeded: same code, same bytes, on every run. If a
//! fixture test fails after an intentional format change, bump
//! [`permdnn_core::snapshot::VERSION`] and regenerate with
//! `cargo run -p permdnn-bench --bin gen_fixtures`.

use pd_tensor::init::seeded_rng;
use permdnn_core::format::CompressedLinear;
use permdnn_core::snapshot::save_tensor;
use permdnn_nn::layers::WeightFormat;
use permdnn_nn::MlpClassifier;
use permdnn_prune::eie_format::{uniform_codebook, EieEncodedMatrix};
use permdnn_prune::magnitude_prune;

/// One golden fixture: its file stem, snapshot bytes and the expected logits
/// of the fixed probe input.
pub struct Fixture {
    /// File stem (`<name>.snap` / `<name>.logits` under `tests/fixtures/`).
    pub name: &'static str,
    /// The snapshot bytes.
    pub bytes: Vec<u8>,
    /// Model output for [`probe_input`] of the model's input width.
    pub logits: Vec<f32>,
}

/// The deterministic probe input every fixture's expected logits are
/// computed on.
pub fn probe_input(dim: usize) -> Vec<f32> {
    (0..dim).map(|i| (i as f32 * 0.37).sin()).collect()
}

/// Fixture MLP input width.
pub const MLP_IN: usize = 8;
/// Fixture MLP hidden width.
pub const MLP_HIDDEN: usize = 8;
/// Fixture MLP class count.
pub const MLP_CLASSES: usize = 3;

fn mlp_fixture(name: &'static str, format: WeightFormat, seed: u64) -> Fixture {
    let model = MlpClassifier::new_frozen(
        MLP_IN,
        &[MLP_HIDDEN],
        MLP_CLASSES,
        format,
        &mut seeded_rng(seed),
    );
    Fixture {
        name,
        bytes: model.save().expect("frozen models always snapshot"),
        logits: model.logits(&probe_input(MLP_IN)),
    }
}

/// Builds every golden fixture: one tiny frozen MLP per registry format, a
/// bare EIE-encoded tensor (EIE has no training-registry entry — it is a
/// storage format), and one quantized model.
pub fn all() -> Vec<Fixture> {
    let mut fixtures = vec![
        mlp_fixture("mlp_dense", WeightFormat::Dense, 0xF100),
        mlp_fixture("mlp_pd", WeightFormat::PermutedDiagonal { p: 4 }, 0xF101),
        mlp_fixture("mlp_circulant", WeightFormat::Circulant { k: 4 }, 0xF102),
        mlp_fixture("mlp_csc", WeightFormat::UnstructuredSparse { p: 4 }, 0xF103),
        mlp_fixture(
            "mlp_shared_pd",
            WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
            0xF104,
        ),
    ];

    // Bare EIE tensor: encode a pruned 16x12 matrix with the paper's 4+4-bit
    // fields (long zero runs included, so padding entries are pinned too).
    let dense = pd_tensor::init::xavier_uniform(&mut seeded_rng(0xF105), 16, 12);
    let pruned = magnitude_prune(&dense, 0.25).pruned;
    let codebook = uniform_codebook(4, pruned.max_abs());
    let eie = EieEncodedMatrix::encode(&pruned, &codebook, 4, 4);
    fixtures.push(Fixture {
        name: "tensor_eie",
        bytes: save_tensor(&eie).expect("eie has a codec"),
        logits: CompressedLinear::matvec(&eie, &probe_input(12)).expect("probe matches"),
    });

    // Quantized model: the PD fixture dropped onto the 16-bit fixed-point
    // backend with a deterministic calibration set — pins the QuantizedLinear
    // record (QScheme + raw i16 weights) end to end.
    let model = MlpClassifier::new_frozen(
        MLP_IN,
        &[MLP_HIDDEN],
        MLP_CLASSES,
        WeightFormat::PermutedDiagonal { p: 4 },
        &mut seeded_rng(0xF106),
    );
    let calibration: Vec<Vec<f32>> = (0..8)
        .map(|i| {
            let mut rng = seeded_rng(0xF107 + i);
            (0..MLP_IN)
                .map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0))
                .collect()
        })
        .collect();
    let (q_model, _) = model.quantize(&calibration);
    fixtures.push(Fixture {
        name: "mlp_pd_q16",
        bytes: q_model.save().expect("quantized models snapshot"),
        logits: q_model.logits(&probe_input(MLP_IN)),
    });

    // Mixed-format model: the knee point of the format autotuner's Pareto
    // sweep (`crate::tune`, same config as `pareto_sweep`). Pins the
    // per-record format ids of a snapshot that mixes weight formats (and
    // possibly q16) across layers — the container needs no change for this,
    // which is exactly what the fixture proves.
    let cfg = crate::tune::TuneConfig::sweep_config();
    let run = crate::tune::tune(&cfg).expect("the sweep config is valid");
    let mixed = run.chosen_model().expect("the chosen spec realizes");
    fixtures.push(Fixture {
        name: "mlp_mixed",
        bytes: mixed.save().expect("mixed-format models snapshot"),
        logits: mixed.logits(&probe_input(cfg.input_dim)),
    });

    fixtures
}

/// Encodes a logits vector as the `.logits` sidecar bytes (little-endian
/// `f32`s, nothing else).
pub fn logits_to_bytes(logits: &[f32]) -> Vec<u8> {
    logits.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Decodes a `.logits` sidecar.
pub fn logits_from_bytes(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect()
}
