//! Property-based tests of the permuted-diagonal core invariants.
//!
//! These complement the unit tests in each module by checking the structural invariants
//! over randomly drawn shapes, block sizes, permutations and inputs:
//!
//! * Eqn. (1) structure: every non-zero lies on its block's permuted diagonal, exactly one
//!   per row and column of each (unpadded) block.
//! * The PD kernels agree with the dense expansion for every shape and input.
//! * Storage is exactly `⌈m/p⌉·⌈n/p⌉·p` and the compression ratio equals `p` whenever the
//!   dimensions divide evenly.
//! * The l2-optimal approximation is idempotent, never worse than natural indexing, and
//!   exact on matrices that already have the structure.
//! * The structure-preserving SGD update never creates a non-zero off the permuted
//!   diagonal.

use pd_tensor::init::seeded_rng;
use permdnn_core::approx::{pd_approximate, ApproxStrategy};
use permdnn_core::grad::{input_gradient, sgd_step, weight_gradient};
use permdnn_core::matvec::matvec_column_wise;
use permdnn_core::{BlockPermDiagMatrix, PermutationIndexing};
use proptest::prelude::*;
use rand::Rng;

/// Strategy producing a random PD matrix together with its construction seed.
fn pd_matrix_strategy() -> impl Strategy<Value = (BlockPermDiagMatrix, u64)> {
    (
        2usize..=24,
        2usize..=24,
        1usize..=6,
        0u64..1000,
        any::<bool>(),
    )
        .prop_map(|(rows, cols, p, seed, random_indexing)| {
            let indexing = if random_indexing {
                PermutationIndexing::Random
            } else {
                PermutationIndexing::Natural
            };
            let m = BlockPermDiagMatrix::random_with_indexing(
                rows,
                cols,
                p.min(rows).min(cols).max(1),
                indexing,
                &mut seeded_rng(seed),
            );
            (m, seed)
        })
}

fn random_input(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = seeded_rng(seed ^ 0xabcd);
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nonzeros_lie_on_permuted_diagonals((w, _) in pd_matrix_strategy()) {
        let p = w.p();
        let dense = w.to_dense();
        for i in 0..w.rows() {
            for j in 0..w.cols() {
                if dense[(i, j)] != 0.0 {
                    let k = w.perm_at(i, j);
                    prop_assert_eq!((i % p + k) % p, j % p, "non-zero off the permuted diagonal");
                }
            }
        }
    }

    #[test]
    fn each_block_has_at_most_one_nonzero_per_row_and_column((w, _) in pd_matrix_strategy()) {
        let p = w.p();
        for br in 0..w.block_rows() {
            for bc in 0..w.block_cols() {
                let block = w.block(br, bc).to_dense();
                for r in 0..p {
                    let row_nnz = (0..p).filter(|&c| block[(r, c)] != 0.0).count();
                    prop_assert!(row_nnz <= 1);
                }
                for c in 0..p {
                    let col_nnz = (0..p).filter(|&r| block[(r, c)] != 0.0).count();
                    prop_assert!(col_nnz <= 1);
                }
            }
        }
    }

    #[test]
    fn matvec_agrees_with_dense_expansion((w, seed) in pd_matrix_strategy()) {
        let x = random_input(w.cols(), seed);
        let expected = w.to_dense().matvec(&x);
        let got = w.matvec(&x);
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert!((g - e).abs() < 1e-3, "{g} vs {e}");
        }
    }

    #[test]
    fn column_wise_kernel_agrees_and_counts_nonzero_columns((w, seed) in pd_matrix_strategy()) {
        let mut x = random_input(w.cols(), seed);
        // Zero out roughly half the activations to exercise the skip path.
        for (i, v) in x.iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let expected = w.matvec(&x);
        let (got, processed) = matvec_column_wise(&w, &x).unwrap();
        prop_assert_eq!(processed, x.iter().filter(|&&v| v != 0.0).count());
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert!((g - e).abs() < 1e-3);
        }
    }

    #[test]
    fn transposed_kernel_agrees_with_dense_transpose((w, seed) in pd_matrix_strategy()) {
        let x = random_input(w.rows(), seed);
        let expected = w.to_dense().transpose().matvec(&x);
        let got = w.matvec_transposed(&x);
        for (g, e) in got.iter().zip(expected.iter()) {
            prop_assert!((g - e).abs() < 1e-3);
        }
    }

    #[test]
    fn storage_and_compression_ratio((w, _) in pd_matrix_strategy()) {
        let p = w.p();
        prop_assert_eq!(
            w.stored_weights(),
            w.rows().div_ceil(p) * w.cols().div_ceil(p) * p
        );
        if w.rows() % p == 0 && w.cols() % p == 0 {
            prop_assert!((w.compression_ratio() - p as f64).abs() < 1e-9);
        } else {
            prop_assert!(w.compression_ratio() <= p as f64 + 1e-9);
        }
    }

    #[test]
    fn row_nonzero_counts_are_balanced_for_divisible_shapes(
        (block_rows, block_cols, p, seed) in (1usize..=6, 1usize..=6, 1usize..=5, 0u64..500)
    ) {
        let rows = block_rows * p;
        let cols = block_cols * p;
        let w = BlockPermDiagMatrix::random(rows, cols, p, &mut seeded_rng(seed));
        let row_counts = w.row_nonzero_counts();
        let col_counts = w.col_nonzero_counts();
        prop_assert!(row_counts.iter().all(|&c| c == block_cols));
        prop_assert!(col_counts.iter().all(|&c| c == block_rows));
    }

    #[test]
    fn approximation_is_exact_on_pd_matrices_and_idempotent((w, _) in pd_matrix_strategy()) {
        let dense = w.to_dense();
        let approx = pd_approximate(&dense, w.p(), ApproxStrategy::BestPerBlock).unwrap();
        prop_assert!(approx.relative_error < 1e-5, "error {}", approx.relative_error);
        let twice = pd_approximate(&approx.matrix.to_dense(), w.p(), ApproxStrategy::BestPerBlock)
            .unwrap();
        prop_assert!(twice.relative_error < 1e-5);
    }

    #[test]
    fn best_per_block_approximation_never_worse_than_natural(
        (rows, cols, p, seed) in (2usize..=20, 2usize..=20, 1usize..=5, 0u64..500)
    ) {
        let mut rng = seeded_rng(seed);
        let dense = pd_tensor::Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0));
        let p = p.min(rows).min(cols).max(1);
        let best = pd_approximate(&dense, p, ApproxStrategy::BestPerBlock).unwrap();
        let natural = pd_approximate(&dense, p, ApproxStrategy::Natural).unwrap();
        prop_assert!(best.relative_error <= natural.relative_error + 1e-9);
    }

    #[test]
    fn sgd_update_preserves_structure_and_matches_gradient_layout((w, seed) in pd_matrix_strategy()) {
        let mut w = w;
        let x = random_input(w.cols(), seed);
        let g = random_input(w.rows(), seed.wrapping_add(1));
        let grad = weight_gradient(&w, &x, &g).unwrap();
        prop_assert_eq!(grad.len(), w.values().len());
        let before_perms = w.perms().to_vec();
        sgd_step(&mut w, &x, &g, 0.1).unwrap();
        prop_assert_eq!(w.perms(), &before_perms[..]);
        // No non-zero appears off the permuted diagonal after the update.
        let p = w.p();
        let dense = w.to_dense();
        for i in 0..w.rows() {
            for j in 0..w.cols() {
                if dense[(i, j)] != 0.0 {
                    prop_assert_eq!((i % p + w.perm_at(i, j)) % p, j % p);
                }
            }
        }
        // The input gradient has the input's length.
        let dx = input_gradient(&w, &g).unwrap();
        prop_assert_eq!(dx.len(), w.cols());
    }
}
