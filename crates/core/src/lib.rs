//! Permuted-diagonal structured-sparse DNN representation (the PermDNN contribution).
//!
//! This crate implements the algorithmic core of *"PermDNN: Efficient Compressed DNN
//! Architecture with Permuted Diagonal Matrices"* (Deng et al., MICRO 2018):
//!
//! * [`PermutedDiagonalBlock`] — a single `p × p` permuted-diagonal matrix: `p` stored
//!   values plus one permutation parameter `k`; non-zeros sit at `(c, (c + k) mod p)`.
//! * [`BlockPermDiagMatrix`] — an `m × n` block-permuted-diagonal weight matrix
//!   (Section III-A, Eqn. 1): a tiling of permuted-diagonal blocks with one permutation
//!   parameter per block and compression ratio exactly `p`.
//! * [`matvec`] — forward-propagation kernels (Section III-B), including the column-wise,
//!   input-zero-skipping schedule the PERMDNN hardware uses (Fig. 5).
//! * [`format`] — the format-agnostic [`CompressedLinear`] operator API that every weight
//!   format in the workspace (dense, PD, circulant, CSC/EIE, weight-shared) implements,
//!   with the shared [`FormatError`] and the batched [`BatchView`] entry point.
//! * [`qlinear`] — the 16-bit fixed-point inference backend: [`QuantizedLinear`] executes
//!   any [`CompressedLinear`] operator in integer arithmetic (i16 weights, 24-bit
//!   saturating accumulation, requantize-on-output), matching the hardware's datapath.
//! * [`grad`] — structure-preserving gradients and weight updates for FC layers
//!   (Eqns. 2–3), enabling end-to-end training that never leaves the PD manifold.
//! * [`conv`] — the extension to convolutional layers (Section III-C, Eqns. 4–6):
//!   permuted-diagonal structure on the (output-channel, input-channel) dimensions of a
//!   4-D weight tensor.
//! * [`lowering`] — im2col lowering of convolution weights onto the [`CompressedLinear`]
//!   surface: dense tensors flatten to a `Matrix`, permuted-diagonal tensors become
//!   [`PdConvMatrix`] (a zero-skipping macro-row kernel, no densification), so conv
//!   layers serve through the same batched matmul datapath as FC layers.
//! * [`snapshot`] — the versioned binary snapshot container (magic + checksummed
//!   length-prefixed sections) and the per-format tensor codec: every
//!   [`CompressedLinear`] operator persists its *compressed* representation and is
//!   rebuilt through a [`SnapshotCodec`] registry, with typed [`SnapshotError`]s for
//!   corrupted input.
//! * [`approx`] — the l2-optimal permuted-diagonal approximation of a pre-trained dense
//!   matrix/tensor (Section III-F), used to convert dense models before fine-tuning.
//! * [`storage`] — exact storage and compression-ratio accounting used to reproduce
//!   Tables II–V and the per-weight storage comparison of Fig. 4.
//! * [`cost`] — arithmetic-operation counting for PD, dense and circulant formats
//!   (Section III-H, Table VI).
//! * [`pareto`] — three-objective (accuracy / multiplications / snapshot bytes)
//!   dominance, frontier extraction and knee-point selection: the scoring arithmetic of
//!   the per-layer format autotuner.
//! * [`connect`] — the "connectedness" property underlying the universal-approximation
//!   argument (Section III-E): with non-identical `k_l`, stacked PD layers do not cut any
//!   neuron off from the next layer.
//! * [`sparsity`] — activation-sparsity measurement helpers (Table VII).
//!
//! # Quick example
//!
//! ```
//! use permdnn_core::BlockPermDiagMatrix;
//! use pd_tensor::init::seeded_rng;
//!
//! // A 16x32 weight matrix with 4x4 permuted-diagonal blocks: 4x compression.
//! let w = BlockPermDiagMatrix::random(16, 32, 4, &mut seeded_rng(0));
//! let x = vec![1.0f32; 32];
//! let y = w.matvec(&x);
//! assert_eq!(y.len(), 16);
//! assert_eq!(w.stored_weights(), 16 * 32 / 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod connect;
pub mod conv;
pub mod cost;
pub mod error;
pub mod format;
pub mod grad;
pub mod lowering;
pub mod matvec;
pub mod pareto;
pub mod pd_block;
pub mod pd_matrix;
pub mod qlinear;
pub mod scratch;
pub mod snapshot;
pub mod sparsity;
pub mod storage;

pub use conv::BlockPermDiagTensor4;
pub use error::PdError;
pub use format::{BatchView, CompressedLinear, FormatError};
pub use lowering::{lower_dense_conv, ConvGeometry, PdConvMatrix};
pub use pd_block::PermutedDiagonalBlock;
pub use pd_matrix::{BlockPermDiagMatrix, PermutationIndexing};
pub use qlinear::{QKernelStats, QScheme, QScratch, QuantKernel, QuantizedLinear};
pub use scratch::Scratch;
pub use snapshot::{Snapshot, SnapshotBuilder, SnapshotCodec, SnapshotError};
