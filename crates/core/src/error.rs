//! Error type for permuted-diagonal construction and kernels.

/// Errors returned by fallible permuted-diagonal operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdError {
    /// The block size `p` was zero.
    ZeroBlockSize,
    /// A permutation parameter was outside `0..p`.
    InvalidPermutation {
        /// The offending permutation value.
        k: usize,
        /// The block size.
        p: usize,
    },
    /// The number of supplied permutation parameters does not match the number of blocks.
    PermutationCountMismatch {
        /// Number of parameters supplied.
        got: usize,
        /// Number of blocks expected.
        expected: usize,
    },
    /// The number of supplied non-zero values does not match `block_rows * n` (one value
    /// per (block, row-within-block) pair).
    ValueCountMismatch {
        /// Number of values supplied.
        got: usize,
        /// Number expected.
        expected: usize,
    },
    /// An input vector had the wrong length for the operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Expected length.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// A dense matrix being converted does not actually have permuted-diagonal structure.
    NotPermutedDiagonal {
        /// Row of the first offending non-zero entry.
        row: usize,
        /// Column of the first offending non-zero entry.
        col: usize,
    },
}

impl std::fmt::Display for PdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdError::ZeroBlockSize => write!(f, "block size p must be non-zero"),
            PdError::InvalidPermutation { k, p } => {
                write!(f, "permutation parameter {k} is not in 0..{p}")
            }
            PdError::PermutationCountMismatch { got, expected } => {
                write!(f, "expected {expected} permutation parameters, got {got}")
            }
            PdError::ValueCountMismatch { got, expected } => {
                write!(f, "expected {expected} stored values, got {got}")
            }
            PdError::DimensionMismatch { op, expected, got } => {
                write!(
                    f,
                    "dimension mismatch in {op}: expected {expected}, got {got}"
                )
            }
            PdError::NotPermutedDiagonal { row, col } => write!(
                f,
                "dense matrix has a non-zero at ({row}, {col}) outside the permuted diagonal"
            ),
        }
    }
}

impl std::error::Error for PdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = PdError::InvalidPermutation { k: 5, p: 4 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('4'));
        let e = PdError::DimensionMismatch {
            op: "matvec",
            expected: 8,
            got: 7,
        };
        assert!(e.to_string().contains("matvec"));
    }
}
