//! Arithmetic-cost accounting for the structured formats (Section III-H, Table VI).
//!
//! The paper's comparison with CIRCNN rests on a simple operation count: multiplying a
//! compressed `p × p` block by a length-`p` vector slice costs
//!
//! * **PermDNN**: `p` real multiplications and (at most) `p` real additions into the
//!   accumulators;
//! * **CIRCNN**: `p` complex multiplications for the element-wise product plus
//!   `p·log2(p)` complex butterflies for FFT/IFFT, where every complex multiplication is
//!   4 real multiplications + 2 real additions.
//!
//! These counters feed Table VI and the roughly-4× arithmetic advantage quoted in
//! Section V-C.

/// Count of real arithmetic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// Real multiplications.
    pub real_muls: u64,
    /// Real additions.
    pub real_adds: u64,
}

impl OpCount {
    /// Total real operations (multiplications + additions).
    pub fn total(&self) -> u64 {
        self.real_muls + self.real_adds
    }

    /// Sums two counts.
    pub fn plus(self, other: OpCount) -> OpCount {
        OpCount {
            real_muls: self.real_muls + other.real_muls,
            real_adds: self.real_adds + other.real_adds,
        }
    }

    /// Scales a count by an integer factor.
    pub fn times(self, factor: u64) -> OpCount {
        OpCount {
            real_muls: self.real_muls * factor,
            real_adds: self.real_adds * factor,
        }
    }
}

/// Cost of one complex multiplication expressed in real operations (4 muls + 2 adds).
pub const COMPLEX_MUL: OpCount = OpCount {
    real_muls: 4,
    real_adds: 2,
};

/// Cost of one complex addition expressed in real operations (2 adds).
pub const COMPLEX_ADD: OpCount = OpCount {
    real_muls: 0,
    real_adds: 2,
};

/// Real-operation cost of a dense `m × n` matrix-vector product.
pub fn dense_matvec_ops(m: usize, n: usize) -> OpCount {
    OpCount {
        real_muls: (m * n) as u64,
        real_adds: (m * n) as u64,
    }
}

/// Real-operation cost of a permuted-diagonal `m × n` mat-vec with block size `p` and an
/// input vector whose non-zero fraction is `input_density` (1.0 = dense input).
///
/// Only columns with a non-zero activation are processed (the zero-skipping dataflow), and
/// each processed column touches `m / p` stored weights.
pub fn permdnn_matvec_ops(m: usize, n: usize, p: usize, input_density: f64) -> OpCount {
    assert!(p > 0, "block size must be non-zero");
    let processed_cols = (n as f64 * input_density.clamp(0.0, 1.0)).round() as u64;
    let per_col = (m as u64).div_ceil(p as u64);
    OpCount {
        real_muls: processed_cols * per_col,
        real_adds: processed_cols * per_col,
    }
}

/// Real-operation cost of a block-circulant `m × n` mat-vec with block size `p`
/// (CIRCNN): per block, an FFT of the input slice, an element-wise complex product, and
/// an IFFT, using `p/2·log2(p)` complex butterflies per transform (each butterfly is one
/// complex multiplication and two complex additions).
///
/// Input FFTs can be shared across a block column and output IFFTs across a block row;
/// `share_transforms` selects that optimistic accounting (the paper's own comparison is
/// even simpler, so both options are provided for the ablation bench).
pub fn circnn_matvec_ops(m: usize, n: usize, p: usize, share_transforms: bool) -> OpCount {
    assert!(
        p > 0 && p.is_power_of_two(),
        "CIRCNN requires power-of-two block size"
    );
    let block_rows = (m as u64).div_ceil(p as u64);
    let block_cols = (n as u64).div_ceil(p as u64);
    let blocks = block_rows * block_cols;
    let logp = (p as f64).log2() as u64;
    let butterflies_per_fft = (p as u64 / 2) * logp;
    let fft_cost = COMPLEX_MUL
        .times(butterflies_per_fft)
        .plus(COMPLEX_ADD.times(2 * butterflies_per_fft));
    // Element-wise complex product per block: p complex multiplications.
    let ewise = COMPLEX_MUL.times(p as u64).times(blocks);
    // Accumulating block results along a row: (block_cols - 1) complex adds per output bin.
    let accum = COMPLEX_ADD
        .times(p as u64)
        .times(block_rows * block_cols.saturating_sub(1));
    let transforms = if share_transforms {
        // One FFT per block column (input reuse) + one IFFT per block row (output reuse).
        fft_cost.times(block_cols + block_rows)
    } else {
        // One FFT + one IFFT per block.
        fft_cost.times(2 * blocks)
    };
    transforms.plus(ewise).plus(accum)
}

/// Ratio of CIRCNN to PermDNN real-multiplication counts at equal compression `p`
/// (the "roughly 4×" of Section V-C when transforms are amortised).
pub fn circnn_to_permdnn_mul_ratio(m: usize, n: usize, p: usize) -> f64 {
    let pd = permdnn_matvec_ops(m, n, p, 1.0);
    let circ = circnn_matvec_ops(m, n, p, true);
    circ.real_muls as f64 / pd.real_muls as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ops_count() {
        let c = dense_matvec_ops(100, 200);
        assert_eq!(c.real_muls, 20_000);
        assert_eq!(c.total(), 40_000);
    }

    #[test]
    fn permdnn_ops_scale_with_p_and_density() {
        let full = permdnn_matvec_ops(1024, 1024, 8, 1.0);
        assert_eq!(full.real_muls, 1024 * 1024 / 8);
        let sparse = permdnn_matvec_ops(1024, 1024, 8, 0.5);
        assert_eq!(sparse.real_muls, 1024 * 1024 / 8 / 2);
        let dense_equiv = permdnn_matvec_ops(1024, 1024, 1, 1.0);
        assert_eq!(dense_equiv.real_muls, 1024 * 1024);
    }

    #[test]
    fn circnn_requires_power_of_two() {
        let result = std::panic::catch_unwind(|| circnn_matvec_ops(64, 64, 10, true));
        assert!(result.is_err());
    }

    #[test]
    fn circnn_costs_more_real_muls_than_permdnn() {
        for &p in &[4usize, 8, 16, 64] {
            let ratio = circnn_to_permdnn_mul_ratio(2048, 2048, p);
            assert!(
                ratio >= 4.0,
                "CIRCNN should need at least 4x the real multiplications (p={p}, ratio={ratio})"
            );
        }
    }

    #[test]
    fn circnn_element_wise_part_is_4x() {
        // With transform sharing on a large matrix the element-wise complex products
        // dominate, giving a ratio close to (but above) 4.
        let ratio = circnn_to_permdnn_mul_ratio(4096, 4096, 8);
        assert!(ratio > 4.0 && ratio < 6.5, "ratio {ratio}");
    }

    #[test]
    fn unshared_transforms_cost_more() {
        let shared = circnn_matvec_ops(1024, 1024, 8, true);
        let unshared = circnn_matvec_ops(1024, 1024, 8, false);
        assert!(unshared.total() > shared.total());
    }

    #[test]
    fn opcount_algebra() {
        let a = OpCount {
            real_muls: 1,
            real_adds: 2,
        };
        let b = a.times(3).plus(a);
        assert_eq!(b.real_muls, 4);
        assert_eq!(b.real_adds, 8);
    }

    #[test]
    fn input_sparsity_reduces_permdnn_cost_linearly() {
        let dense_in = permdnn_matvec_ops(512, 512, 4, 1.0);
        let third = permdnn_matvec_ops(512, 512, 4, 1.0 / 3.0);
        let ratio = dense_in.real_muls as f64 / third.real_muls as f64;
        assert!((ratio - 3.0).abs() < 0.05);
    }
}
