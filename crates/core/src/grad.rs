//! Structure-preserving gradients and weight updates for FC layers (Eqns. 2–3).
//!
//! The key property of PermDNN training is that the permuted-diagonal structure is fixed
//! at initialisation and *preserved by every update*: only the stored values `q` are ever
//! modified, so the trained network never needs pruning or re-structuring. This module
//! provides:
//!
//! * [`weight_gradient`] — `∂J/∂q` for one (input, output-gradient) pair, laid out exactly
//!   like [`BlockPermDiagMatrix::values`], so an optimizer can update the stored weights
//!   directly.
//! * [`input_gradient`] — `∂J/∂x` (Eqn. 3), the value back-propagated to the previous
//!   layer.
//! * [`sgd_step`] — the in-place update of Eqn. (2): `w_ij ← w_ij − ε · x_j · ∂J/∂a_i`
//!   applied only to the structural non-zeros.

use crate::{BlockPermDiagMatrix, PdError};

/// Gradient of the loss with respect to the stored weights `q`, for a single example.
///
/// `x` is the layer input (length `n`) and `grad_output` is `∂J/∂a` (length `m`). The
/// result has the same length and layout as [`BlockPermDiagMatrix::values`]:
/// `∂J/∂q[l·p + c] = x_j · ∂J/∂a_i` with `i = block_row·p + c` and
/// `j = block_col·p + (c + k_l) mod p`.
///
/// # Errors
///
/// Returns [`PdError::DimensionMismatch`] if the vector lengths do not match the matrix.
pub fn weight_gradient(
    w: &BlockPermDiagMatrix,
    x: &[f32],
    grad_output: &[f32],
) -> Result<Vec<f32>, PdError> {
    if x.len() != w.cols() {
        return Err(PdError::DimensionMismatch {
            op: "weight_gradient (input)",
            expected: w.cols(),
            got: x.len(),
        });
    }
    if grad_output.len() != w.rows() {
        return Err(PdError::DimensionMismatch {
            op: "weight_gradient (grad_output)",
            expected: w.rows(),
            got: grad_output.len(),
        });
    }
    let p = w.p();
    let block_cols = w.block_cols();
    let mut grad = vec![0.0f32; w.values().len()];
    for br in 0..w.block_rows() {
        for bc in 0..block_cols {
            let l = br * block_cols + bc;
            let k = w.perms()[l];
            for c in 0..p {
                let i = br * p + c;
                let j = bc * p + (c + k) % p;
                if i < w.rows() && j < w.cols() {
                    grad[l * p + c] = x[j] * grad_output[i];
                }
            }
        }
    }
    Ok(grad)
}

/// Accumulates the weight gradient for one example on top of an existing buffer, which is
/// how mini-batch gradients are formed without allocating per example.
///
/// # Errors
///
/// Returns [`PdError::DimensionMismatch`] if any length is inconsistent.
pub fn accumulate_weight_gradient(
    w: &BlockPermDiagMatrix,
    x: &[f32],
    grad_output: &[f32],
    grad_accum: &mut [f32],
) -> Result<(), PdError> {
    if grad_accum.len() != w.values().len() {
        return Err(PdError::DimensionMismatch {
            op: "accumulate_weight_gradient (accumulator)",
            expected: w.values().len(),
            got: grad_accum.len(),
        });
    }
    let g = weight_gradient(w, x, grad_output)?;
    for (a, gi) in grad_accum.iter_mut().zip(g.iter()) {
        *a += gi;
    }
    Ok(())
}

/// Gradient of the loss with respect to the layer input, `∂J/∂x = Wᵀ · ∂J/∂a` (Eqn. 3).
///
/// # Errors
///
/// Returns [`PdError::DimensionMismatch`] if `grad_output.len() != w.rows()`.
pub fn input_gradient(w: &BlockPermDiagMatrix, grad_output: &[f32]) -> Result<Vec<f32>, PdError> {
    crate::matvec::matvec_transposed(w, grad_output)
}

/// Applies the structure-preserving SGD update of Eqn. (2) in place:
/// `q[l·p + c] ← q[l·p + c] − lr · x_j · ∂J/∂a_i` for every structural non-zero.
///
/// # Errors
///
/// Returns [`PdError::DimensionMismatch`] if the vector lengths do not match the matrix.
pub fn sgd_step(
    w: &mut BlockPermDiagMatrix,
    x: &[f32],
    grad_output: &[f32],
    lr: f32,
) -> Result<(), PdError> {
    let grad = weight_gradient(w, x, grad_output)?;
    for (v, g) in w.values_mut().iter_mut().zip(grad.iter()) {
        *v -= lr * g;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_tensor::init::seeded_rng;
    use pd_tensor::Matrix;
    use rand::Rng;

    fn setup(rows: usize, cols: usize, p: usize) -> (BlockPermDiagMatrix, Vec<f32>, Vec<f32>) {
        let w = BlockPermDiagMatrix::random(rows, cols, p, &mut seeded_rng(5));
        let mut rng = seeded_rng(6);
        let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let g: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (w, x, g)
    }

    /// Dense reference: the gradient of a dense layer is the outer product g·xᵀ; the PD
    /// gradient must equal that outer product sampled at the structural non-zero positions.
    #[test]
    fn weight_gradient_matches_dense_outer_product() {
        for &(rows, cols, p) in &[(8usize, 8usize, 4usize), (12, 20, 4), (9, 15, 3)] {
            let (w, x, g) = setup(rows, cols, p);
            let grad = weight_gradient(&w, &x, &g).unwrap();
            let mut dense_grad = Matrix::zeros(rows, cols);
            dense_grad.rank1_update(1.0, &g, &x);
            for br in 0..w.block_rows() {
                for bc in 0..w.block_cols() {
                    let l = br * w.block_cols() + bc;
                    let k = w.perms()[l];
                    for c in 0..p {
                        let i = br * p + c;
                        let j = bc * p + (c + k) % p;
                        if i < rows && j < cols {
                            assert!(
                                (grad[l * p + c] - dense_grad[(i, j)]).abs() < 1e-5,
                                "block ({br},{bc}) slot {c}"
                            );
                        } else {
                            assert_eq!(grad[l * p + c], 0.0, "padded slot must stay zero");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn input_gradient_matches_dense_transpose() {
        let (w, _x, g) = setup(16, 24, 4);
        let got = input_gradient(&w, &g).unwrap();
        let expected = w.to_dense().transpose().matvec(&g);
        for (a, b) in got.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn sgd_step_preserves_structure() {
        let (mut w, x, g) = setup(16, 16, 4);
        let perms_before = w.perms().to_vec();
        let dense_before = w.to_dense();
        sgd_step(&mut w, &x, &g, 0.1).unwrap();
        // Permutation parameters unchanged; zero pattern unchanged.
        assert_eq!(w.perms(), &perms_before[..]);
        let dense_after = w.to_dense();
        for i in 0..16 {
            for j in 0..16 {
                if dense_before[(i, j)] == 0.0 && w.entry(i, j) != 0.0 {
                    // A previously-zero structural slot may only change if it is on the
                    // permuted diagonal (structural), never off it.
                    let c = i % 4;
                    let d = j % 4;
                    let k = w.perm_at(i, j);
                    assert_eq!((c + k) % 4, d, "update leaked off the permuted diagonal");
                }
                if (i % 4 + w.perm_at(i, j)) % 4 != j % 4 {
                    assert_eq!(dense_after[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn sgd_step_reduces_quadratic_loss() {
        // J = 0.5 * ||W x - t||^2  =>  dJ/da = Wx - t. A small step must reduce J.
        let (mut w, x, _) = setup(12, 12, 4);
        let target: Vec<f32> = (0..12).map(|i| (i as f32 * 0.3).sin()).collect();
        let loss = |w: &BlockPermDiagMatrix| -> f32 {
            let a = w.matvec(&x);
            a.iter()
                .zip(target.iter())
                .map(|(ai, ti)| 0.5 * (ai - ti) * (ai - ti))
                .sum()
        };
        let before = loss(&w);
        for _ in 0..20 {
            let a = w.matvec(&x);
            let grad_out: Vec<f32> = a
                .iter()
                .zip(target.iter())
                .map(|(ai, ti)| ai - ti)
                .collect();
            sgd_step(&mut w, &x, &grad_out, 0.05).unwrap();
        }
        let after = loss(&w);
        assert!(
            after < before * 0.5,
            "training on the PD manifold should reduce the loss: {before} -> {after}"
        );
    }

    #[test]
    fn numerical_gradient_check() {
        // Finite-difference check of ∂J/∂q for J = 0.5 ||Wx - t||².
        let (w, x, _) = setup(8, 8, 4);
        let target: Vec<f32> = (0..8).map(|i| 0.1 * i as f32).collect();
        let loss = |w: &BlockPermDiagMatrix| -> f64 {
            w.matvec(&x)
                .iter()
                .zip(target.iter())
                .map(|(a, t)| 0.5 * ((a - t) as f64).powi(2))
                .sum()
        };
        let a = w.matvec(&x);
        let grad_out: Vec<f32> = a
            .iter()
            .zip(target.iter())
            .map(|(ai, ti)| ai - ti)
            .collect();
        let analytic = weight_gradient(&w, &x, &grad_out).unwrap();
        let eps = 1e-3f32;
        #[allow(clippy::needless_range_loop)] // idx perturbs two clones and labels failures
        for idx in 0..w.values().len() {
            let mut wp = w.clone();
            wp.values_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.values_mut()[idx] -= eps;
            let numeric = (loss(&wp) - loss(&wm)) / (2.0 * eps as f64);
            assert!(
                (numeric - analytic[idx] as f64).abs() < 1e-2,
                "slot {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn accumulate_matches_sum_of_examples() {
        let (w, x, g) = setup(8, 12, 4);
        let mut rng = seeded_rng(9);
        let x2: Vec<f32> = (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let g2: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut acc = vec![0.0f32; w.values().len()];
        accumulate_weight_gradient(&w, &x, &g, &mut acc).unwrap();
        accumulate_weight_gradient(&w, &x2, &g2, &mut acc).unwrap();
        let g1 = weight_gradient(&w, &x, &g).unwrap();
        let gg2 = weight_gradient(&w, &x2, &g2).unwrap();
        for i in 0..acc.len() {
            assert!((acc[i] - (g1[i] + gg2[i])).abs() < 1e-5);
        }
    }

    #[test]
    fn dimension_errors() {
        let (w, x, g) = setup(8, 12, 4);
        assert!(weight_gradient(&w, &g, &g).is_err());
        assert!(weight_gradient(&w, &x, &x).is_err());
        let mut short = vec![0.0; 3];
        assert!(accumulate_weight_gradient(&w, &x, &g, &mut short).is_err());
    }
}
