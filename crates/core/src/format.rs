//! The format-agnostic compressed linear-operator API.
//!
//! PermDNN is at heart a *comparison of weight-matrix formats* — permuted
//! diagonal versus dense, block-circulant (CIRCNN) and unstructured sparse
//! (EIE). Historically each format exposed its own ad-hoc kernel entry point;
//! this module defines the one polymorphic surface the rest of the workspace
//! programs against:
//!
//! * [`CompressedLinear`] — any compressed (or dense) weight matrix acting as a
//!   linear operator `y = W·x`, with storage, arithmetic-cost and dense-expansion
//!   accounting.
//! * [`FormatError`] — the shared error type; per-format errors
//!   ([`PdError`], `permdnn_circulant::CirculantError`) convert into it.
//! * [`BatchView`] — a borrowed batch of input vectors for the batched
//!   [`CompressedLinear::matmul`] entry point.
//!
//! Implementations provided across the workspace:
//!
//! | format                      | type                                      | crate               |
//! |-----------------------------|-------------------------------------------|---------------------|
//! | dense                       | `pd_tensor::Matrix`                       | `permdnn-core` (here) |
//! | permuted diagonal           | [`BlockPermDiagMatrix`]                   | `permdnn-core` (here) |
//! | block circulant (FFT)       | `permdnn_circulant::BlockCirculantMatrix` | `permdnn-circulant` |
//! | unstructured sparse (CSC)   | `permdnn_prune::CscMatrix`                | `permdnn-prune`     |
//! | EIE tag + index encoding    | `permdnn_prune::eie_format::EieEncodedMatrix` | `permdnn-prune` |
//! | PD + shared-weight codebook | `permdnn_quant::SharedWeightPdMatrix`     | `permdnn-quant`     |
//!
//! Adding a new format means implementing this trait for its matrix type; all
//! call sites (`nn` layers, the `sim` workload bridge, the `bench` sweeps, the
//! integration tests) pick it up without modification.
//!
//! # Example
//!
//! ```
//! use permdnn_core::format::CompressedLinear;
//! use permdnn_core::BlockPermDiagMatrix;
//! use pd_tensor::init::seeded_rng;
//!
//! let w = BlockPermDiagMatrix::random(16, 32, 4, &mut seeded_rng(0));
//! let op: &dyn CompressedLinear = &w;
//! let y = op.matvec(&vec![1.0; 32]).unwrap();
//! assert_eq!(y.len(), op.out_dim());
//! assert_eq!(op.stored_weights(), 16 * 32 / 4);
//! assert!(op.label().contains("permuted-diagonal"));
//! ```

use pd_tensor::Matrix;

use crate::{BlockPermDiagMatrix, PdError, Scratch};

/// Error type shared by every [`CompressedLinear`] implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// An input or output slice had the wrong length for the operator.
    DimensionMismatch {
        /// The operation that failed (e.g. `"matvec_into"`).
        op: &'static str,
        /// Expected slice length.
        expected: usize,
        /// Supplied slice length.
        got: usize,
    },
    /// A format-specific invariant was violated during construction or execution.
    Format {
        /// The format's label.
        format: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::DimensionMismatch { op, expected, got } => {
                write!(
                    f,
                    "dimension mismatch in {op}: expected length {expected}, got {got}"
                )
            }
            FormatError::Format { format, reason } => {
                write!(f, "{format} format error: {reason}")
            }
        }
    }
}

impl std::error::Error for FormatError {}

impl From<PdError> for FormatError {
    fn from(e: PdError) -> Self {
        match e {
            PdError::DimensionMismatch { op, expected, got } => {
                FormatError::DimensionMismatch { op, expected, got }
            }
            other => FormatError::Format {
                format: "permuted-diagonal",
                reason: other.to_string(),
            },
        }
    }
}

/// Checks an input/output slice length, mapping mismatches to
/// [`FormatError::DimensionMismatch`].
pub fn check_dim(op: &'static str, expected: usize, got: usize) -> Result<(), FormatError> {
    if expected == got {
        Ok(())
    } else {
        Err(FormatError::DimensionMismatch { op, expected, got })
    }
}

/// A borrowed batch of `batch` input vectors of length `dim`, stored
/// contiguously row-major (one vector per row).
#[derive(Debug, Clone, Copy)]
pub struct BatchView<'a> {
    data: &'a [f32],
    batch: usize,
    dim: usize,
}

impl<'a> BatchView<'a> {
    /// Wraps a contiguous row-major buffer as a batch of `batch` vectors of
    /// length `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] if `data.len() != batch * dim`.
    pub fn new(data: &'a [f32], batch: usize, dim: usize) -> Result<Self, FormatError> {
        check_dim("BatchView::new", batch * dim, data.len())?;
        Ok(BatchView { data, batch, dim })
    }

    /// Views a matrix as a batch: each matrix row is one input vector.
    pub fn from_matrix(m: &'a Matrix) -> Self {
        BatchView {
            data: m.as_slice(),
            batch: m.rows(),
            dim: m.cols(),
        }
    }

    /// Number of vectors in the batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Length of each vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th input vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.batch()`.
    pub fn row(&self, i: usize) -> &'a [f32] {
        assert!(
            i < self.batch,
            "batch row {i} out of bounds ({})",
            self.batch
        );
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// Partitions the row indices `0..n_rows` into at most `n_shards` contiguous,
/// non-empty, near-equal ranges (the first `n_rows % n_shards` ranges are one
/// row longer). The ranges concatenate back to `0..n_rows` in order, which is
/// what makes sharded execution bit-for-bit identical to sequential execution:
/// each row is processed exactly once, by exactly the same kernel.
///
/// Used by `permdnn_runtime::ParallelExecutor` to split batched matmuls across
/// workers and by the multi-host engine model to split output rows across
/// hosts.
///
/// # Example
///
/// ```
/// use permdnn_core::format::par_row_ranges;
/// assert_eq!(par_row_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
/// assert_eq!(par_row_ranges(2, 8).len(), 2); // never more shards than rows
/// assert!(par_row_ranges(0, 4).is_empty());
/// ```
pub fn par_row_ranges(n_rows: usize, n_shards: usize) -> Vec<std::ops::Range<usize>> {
    if n_rows == 0 {
        return Vec::new();
    }
    let shards = n_shards.max(1).min(n_rows);
    let base = n_rows / shards;
    let extra = n_rows % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Partitions `0..n_rows` into at most `n_shards` contiguous row ranges whose
/// boundaries fall only on multiples of the block size `p` (the final range
/// absorbs any ragged trailing rows). This is the *block-granular* variant of
/// [`par_row_ranges`]: a shard owning a fractional `p × p` block would break
/// the one-nonzero-per-column-per-block invariant of the permuted-diagonal
/// format — the phantom-row MAC-overcount bug class — so every consumer that
/// splits PD rows (the multi-host engine model, the snapshot row-sharder)
/// must split here instead.
///
/// Never more shards than block rows; `p = 0` is treated as 1 (row granular).
///
/// # Example
///
/// ```
/// use permdnn_core::format::block_row_ranges;
/// // 10 rows in blocks of 4 → 3 block rows; the last block is ragged.
/// assert_eq!(block_row_ranges(10, 4, 2), vec![0..8, 8..10]);
/// assert_eq!(block_row_ranges(10, 4, 8).len(), 3); // clamped to block rows
/// assert_eq!(block_row_ranges(10, 1, 2), vec![0..5, 5..10]); // = par_row_ranges
/// assert!(block_row_ranges(0, 4, 2).is_empty());
/// ```
pub fn block_row_ranges(n_rows: usize, p: usize, n_shards: usize) -> Vec<std::ops::Range<usize>> {
    let p = p.max(1);
    let block_rows = n_rows.div_ceil(p);
    par_row_ranges(block_rows, n_shards)
        .into_iter()
        .map(|r| (r.start * p)..((r.end * p).min(n_rows)))
        .collect()
}

/// A compressed (or dense) weight matrix acting as the linear operator
/// `y = W·x`.
///
/// The trait is object safe: call sites hold `Box<dyn CompressedLinear>` (see
/// `permdnn_nn::layers::WeightFormat::build`) and new formats drop in without
/// touching them. Concrete types keep their richer inherent APIs (training
/// updates, structure accessors); inherent methods shadow same-named trait
/// methods at method-call syntax, so implementing this trait is non-breaking.
///
/// `Send + Sync` are supertraits: an operator is immutable weight data at
/// inference time, and the parallel runtime (`permdnn_runtime`) shares one
/// operator across worker threads. Every format in the workspace is plain
/// owned data (`Vec`-backed), so the bounds cost implementations nothing.
pub trait CompressedLinear: Send + Sync {
    /// Output dimension `m` (rows of the logical matrix).
    fn out_dim(&self) -> usize;

    /// Input dimension `n` (columns of the logical matrix).
    fn in_dim(&self) -> usize;

    /// Human-readable format label used in reports and error messages,
    /// e.g. `"permuted-diagonal (p=8)"`.
    fn label(&self) -> String;

    /// Number of weight values actually stored by the representation.
    fn stored_weights(&self) -> usize;

    /// Real multiplications one matvec costs on a fully dense input — the
    /// arithmetic-cost axis of the paper's format comparison (Table VI).
    /// Formats that skip zero *inputs* (PD, CSC) cost proportionally less on
    /// sparse activations; this counter reports the dense-input worst case.
    fn mul_count(&self) -> u64;

    /// Whether the format's kernel can skip zero *input* activations.
    ///
    /// This is the dynamic-sparsity axis of the paper's comparison: the
    /// time-domain formats (permuted diagonal, CSC/EIE) process only non-zero
    /// activations, while the frequency-domain circulant format transforms the
    /// whole input (its time-domain zeros are lost, Section II-C) and a dense
    /// mat-vec reads every column regardless. Consumers such as the cycle
    /// model use this to decide whether activation sparsity buys latency.
    fn exploits_input_sparsity(&self) -> bool {
        false
    }

    /// Computes `y = W·x` into a caller-provided output slice.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] unless `x.len() == in_dim()`
    /// and `y.len() == out_dim()`.
    fn matvec_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), FormatError>;

    /// Expands the operator into a dense matrix — the correctness reference
    /// every implementation is property-tested against.
    fn to_dense(&self) -> Matrix;

    /// Computes `y = W·x` into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] if `x.len() != in_dim()`.
    fn matvec(&self, x: &[f32]) -> Result<Vec<f32>, FormatError> {
        let mut y = vec![0.0f32; self.out_dim()];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Computes `y = W·x` using caller-owned [`Scratch`] buffers for the
    /// kernel's temporaries.
    ///
    /// Bit-identical to [`matvec_into`](Self::matvec_into) — the scratch only
    /// changes *where* temporaries live, never what is computed. The default
    /// ignores the scratch; formats whose kernels need temporaries (circulant
    /// FFT buffers, quantized accumulators) override this and make
    /// `matvec_into` delegate here with a throwaway arena.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] unless `x.len() == in_dim()`
    /// and `y.len() == out_dim()`.
    fn matvec_scratch(
        &self,
        x: &[f32],
        y: &mut [f32],
        scratch: &mut Scratch,
    ) -> Result<(), FormatError> {
        let _ = scratch;
        self.matvec_into(x, y)
    }

    /// Batched product into a caller-provided `(batch × out_dim)` row-major
    /// buffer, with temporaries drawn from `scratch`.
    ///
    /// This is the allocation-free hot path `permdnn_runtime::ParallelExecutor`
    /// drives per worker shard. The default applies
    /// [`matvec_scratch`](Self::matvec_scratch) row by row; formats with a
    /// cache-blocked batched kernel (dense, permuted diagonal, CSC) override it.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] unless `xs.dim() == in_dim()`
    /// and `out.len() == xs.batch() * out_dim()`.
    fn matmul_into(
        &self,
        xs: &BatchView<'_>,
        out: &mut [f32],
        scratch: &mut Scratch,
    ) -> Result<(), FormatError> {
        check_dim("matmul_into", self.in_dim(), xs.dim())?;
        let m = self.out_dim();
        check_dim("matmul_into", xs.batch() * m, out.len())?;
        for i in 0..xs.batch() {
            self.matvec_scratch(xs.row(i), &mut out[i * m..(i + 1) * m], scratch)?;
        }
        Ok(())
    }

    /// Batched product: applies the operator to every vector of `xs`, returning
    /// a `(batch × out_dim)` matrix with one output per row.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] if `xs.dim() != in_dim()`.
    fn matmul(&self, xs: &BatchView<'_>) -> Result<Matrix, FormatError> {
        let mut out = Matrix::zeros(xs.batch(), self.out_dim());
        self.matmul_into(xs, out.as_mut_slice(), &mut Scratch::new())?;
        Ok(out)
    }

    /// Largest absolute stored weight — the dynamic range the fixed-point
    /// backend calibrates its weight Q-format against. The default expands to
    /// dense; formats with direct value access should override.
    fn max_weight_abs(&self) -> f32 {
        self.to_dense().max_abs()
    }

    /// Builds this format's 16-bit integer kernel at the given weight
    /// Q-format, or `None` if the format has no integer kernel (it will then
    /// execute through the generic dequantize fallback of
    /// [`QuantizedLinear`](crate::qlinear::QuantizedLinear)).
    ///
    /// Implementing this for a new format is all it takes to make it execute
    /// natively in fixed point: express the weight layout as one of the
    /// [`QuantKernel`](crate::qlinear::QuantKernel) traversals (row-major
    /// dense, or column-compressed sparse for anything processed column-wise
    /// with input zero-skipping).
    fn quantize_kernel(&self, weight_frac: u32) -> Option<crate::qlinear::QuantKernel> {
        let _ = weight_frac;
        None
    }

    /// Writes this operator's *compressed* on-disk representation into the
    /// snapshot payload writer and returns its tensor-format code, or `None`
    /// if the format has no snapshot codec (it then cannot be saved —
    /// [`crate::snapshot::encode_tensor`] reports a typed error).
    ///
    /// Contract: an implementation either writes its complete payload and
    /// returns `Some(code)`, or writes nothing and returns `None`. Payloads
    /// must encode the stored representation (values + structure parameters),
    /// never a dense expansion; decoding goes through
    /// [`crate::snapshot::SnapshotCodec`].
    fn write_snapshot(&self, out: &mut crate::snapshot::ByteWriter) -> Option<u16> {
        let _ = out;
        None
    }

    /// Compression ratio versus the dense `m × n` matrix.
    fn compression_ratio(&self) -> f64 {
        let stored = self.stored_weights();
        if stored == 0 {
            0.0
        } else {
            (self.out_dim() * self.in_dim()) as f64 / stored as f64
        }
    }
}

impl CompressedLinear for BlockPermDiagMatrix {
    fn out_dim(&self) -> usize {
        self.rows()
    }

    fn in_dim(&self) -> usize {
        self.cols()
    }

    fn label(&self) -> String {
        format!("permuted-diagonal (p={})", self.p())
    }

    fn stored_weights(&self) -> usize {
        self.stored_weights()
    }

    fn mul_count(&self) -> u64 {
        // One multiplication per structural non-zero: the column-wise kernel
        // touches each stored (unpadded) weight exactly once on a dense input.
        self.structural_nonzeros() as u64
    }

    fn exploits_input_sparsity(&self) -> bool {
        true
    }

    /// Delegates to the column-wise, input-zero-skipping kernel the PERMDNN
    /// hardware uses (Fig. 5): zero activations are skipped entirely. Streams
    /// the precomputed [`column_kernel`](BlockPermDiagMatrix::column_kernel)
    /// index arrays instead of re-deriving the permutation arithmetic per
    /// entry; identical entry order, so bit-identical to
    /// [`matvec_reference`](BlockPermDiagMatrix::matvec_reference).
    fn matvec_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), FormatError> {
        check_dim("matvec_into", self.cols(), x.len())?;
        check_dim("matvec_into", self.rows(), y.len())?;
        y.fill(0.0);
        let (col_ptr, rows, vals) = self.column_kernel();
        let values = self.values();
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let (s, e) = (col_ptr[j] as usize, col_ptr[j + 1] as usize);
            for (&i, &v) in rows[s..e].iter().zip(&vals[s..e]) {
                y[i as usize] += values[v as usize] * xj;
            }
        }
        Ok(())
    }

    /// Cache-blocked batched kernel: processes the batch in chunks of rows and,
    /// within a chunk, walks columns once, scattering each column's kernel
    /// entries across all chunk rows while the index arrays are hot in cache.
    /// Per output row the columns still arrive in ascending order with the
    /// same entry order per column, so every row is bit-identical to
    /// `matvec_into` on that row.
    fn matmul_into(
        &self,
        xs: &BatchView<'_>,
        out: &mut [f32],
        scratch: &mut Scratch,
    ) -> Result<(), FormatError> {
        let _ = scratch;
        check_dim("matmul_into", self.cols(), xs.dim())?;
        let m = self.rows();
        check_dim("matmul_into", xs.batch() * m, out.len())?;
        if m == 0 || xs.batch() == 0 {
            return Ok(());
        }
        let (col_ptr, rows, vals) = self.column_kernel();
        let values = self.values();
        const CHUNK: usize = 16;
        for (chunk_idx, out_chunk) in out.chunks_mut(CHUNK * m).enumerate() {
            let b0 = chunk_idx * CHUNK;
            let chunk_rows = out_chunk.len() / m;
            out_chunk.fill(0.0);
            for j in 0..self.cols() {
                let (s, e) = (col_ptr[j] as usize, col_ptr[j + 1] as usize);
                if s == e {
                    continue;
                }
                for (bi, y) in out_chunk.chunks_mut(m).enumerate().take(chunk_rows) {
                    let xj = xs.row(b0 + bi)[j];
                    if xj == 0.0 {
                        continue;
                    }
                    for (&i, &v) in rows[s..e].iter().zip(&vals[s..e]) {
                        y[i as usize] += values[v as usize] * xj;
                    }
                }
            }
        }
        Ok(())
    }

    fn to_dense(&self) -> Matrix {
        self.to_dense()
    }

    fn max_weight_abs(&self) -> f32 {
        self.values().iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// The PD integer kernel is the column-compressed zero-skipping traversal:
    /// each column stores exactly one weight per block row, reached through
    /// [`BlockPermDiagMatrix::column_nonzeros`].
    fn quantize_kernel(&self, weight_frac: u32) -> Option<crate::qlinear::QuantKernel> {
        let columns: Vec<Vec<(usize, f32)>> = (0..self.cols())
            .map(|j| {
                self.column_nonzeros(j)
                    .map(|(i, value_idx)| (i, self.values()[value_idx]))
                    .collect()
            })
            .collect();
        Some(crate::qlinear::QuantKernel::column_sparse(
            self.rows(),
            self.cols(),
            weight_frac,
            &columns,
        ))
    }

    fn write_snapshot(&self, out: &mut crate::snapshot::ByteWriter) -> Option<u16> {
        if !crate::snapshot::pd_perms_encodable(self.p()) {
            return None;
        }
        crate::snapshot::write_pd_matrix(self, out);
        Some(crate::snapshot::FORMAT_PERMUTED_DIAGONAL)
    }
}

impl CompressedLinear for Matrix {
    fn out_dim(&self) -> usize {
        self.rows()
    }

    fn in_dim(&self) -> usize {
        self.cols()
    }

    fn label(&self) -> String {
        "dense".to_string()
    }

    fn stored_weights(&self) -> usize {
        self.len()
    }

    fn mul_count(&self) -> u64 {
        (self.rows() * self.cols()) as u64
    }

    fn matvec_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), FormatError> {
        check_dim("matvec_into", self.cols(), x.len())?;
        check_dim("matvec_into", self.rows(), y.len())?;
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (w, xv) in self.row(r).iter().zip(x.iter()) {
                acc += w * xv;
            }
            *out = acc;
        }
        Ok(())
    }

    /// Cache-blocked batched kernel: for each chunk of batch rows, the outer
    /// loop walks weight rows so one `W` row is streamed once against every
    /// input vector in the chunk while it is hot in cache. Each output is
    /// still the same left-to-right dot product as `matvec_into`, so results
    /// are bit-identical to the per-row default.
    fn matmul_into(
        &self,
        xs: &BatchView<'_>,
        out: &mut [f32],
        scratch: &mut Scratch,
    ) -> Result<(), FormatError> {
        let _ = scratch;
        check_dim("matmul_into", self.cols(), xs.dim())?;
        let m = self.rows();
        check_dim("matmul_into", xs.batch() * m, out.len())?;
        if m == 0 || xs.batch() == 0 {
            return Ok(());
        }
        const CHUNK: usize = 16;
        for (chunk_idx, out_chunk) in out.chunks_mut(CHUNK * m).enumerate() {
            let b0 = chunk_idx * CHUNK;
            let chunk_rows = out_chunk.len() / m;
            for r in 0..m {
                let w_row = self.row(r);
                for bi in 0..chunk_rows {
                    let x = xs.row(b0 + bi);
                    let mut acc = 0.0f32;
                    for (w, xv) in w_row.iter().zip(x.iter()) {
                        acc += w * xv;
                    }
                    out_chunk[bi * m + r] = acc;
                }
            }
        }
        Ok(())
    }

    fn to_dense(&self) -> Matrix {
        self.clone()
    }

    fn max_weight_abs(&self) -> f32 {
        self.max_abs()
    }

    fn quantize_kernel(&self, weight_frac: u32) -> Option<crate::qlinear::QuantKernel> {
        Some(crate::qlinear::QuantKernel::dense(self, weight_frac))
    }

    fn write_snapshot(&self, out: &mut crate::snapshot::ByteWriter) -> Option<u16> {
        crate::snapshot::write_dense(self, out);
        Some(crate::snapshot::FORMAT_DENSE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_tensor::init::{seeded_rng, sparse_activation_vector, xavier_uniform};

    #[test]
    fn pd_trait_matvec_matches_dense_expansion() {
        let w = BlockPermDiagMatrix::random(24, 36, 4, &mut seeded_rng(1));
        let x = sparse_activation_vector(&mut seeded_rng(2), 36, 0.4);
        let op: &dyn CompressedLinear = &w;
        let got = op.matvec(&x).unwrap();
        let expected = op.to_dense().matvec(&x);
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-4);
        }
    }

    #[test]
    fn dense_trait_matvec_matches_inherent() {
        let m = xavier_uniform(&mut seeded_rng(3), 8, 12);
        let x: Vec<f32> = (0..12).map(|i| (i as f32 * 0.3).sin()).collect();
        let via_trait = CompressedLinear::matvec(&m, &x).unwrap();
        assert_eq!(via_trait, m.matvec(&x));
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let w = BlockPermDiagMatrix::random(8, 8, 4, &mut seeded_rng(4));
        let op: &dyn CompressedLinear = &w;
        assert!(matches!(
            op.matvec(&[0.0; 7]),
            Err(FormatError::DimensionMismatch {
                expected: 8,
                got: 7,
                ..
            })
        ));
        let mut y_short = [0.0; 7];
        assert!(matches!(
            op.matvec_into(&[0.0; 8], &mut y_short),
            Err(FormatError::DimensionMismatch {
                expected: 8,
                got: 7,
                ..
            })
        ));
    }

    #[test]
    fn matmul_applies_operator_per_row() {
        let w = BlockPermDiagMatrix::random(6, 9, 3, &mut seeded_rng(5));
        let xs_mat = xavier_uniform(&mut seeded_rng(6), 4, 9);
        let xs = BatchView::from_matrix(&xs_mat);
        let out = CompressedLinear::matmul(&w, &xs).unwrap();
        assert_eq!(out.shape(), (4, 6));
        for i in 0..4 {
            let single = CompressedLinear::matvec(&w, xs.row(i)).unwrap();
            assert_eq!(out.row(i), &single[..]);
        }
    }

    #[test]
    fn blocked_matmul_matches_per_row_matvec_across_chunk_boundaries() {
        // Batch 37 exercises full 16-row chunks plus a ragged 5-row tail for
        // both cache-blocked overrides (dense and permuted diagonal).
        let dense = xavier_uniform(&mut seeded_rng(20), 11, 9);
        let pd = BlockPermDiagMatrix::random(6, 9, 3, &mut seeded_rng(21));
        let xs_mat = xavier_uniform(&mut seeded_rng(22), 37, 9);
        let xs = BatchView::from_matrix(&xs_mat);
        for op in [&dense as &dyn CompressedLinear, &pd] {
            let out = op.matmul(&xs).unwrap();
            for i in 0..37 {
                assert_eq!(out.row(i), &op.matvec(xs.row(i)).unwrap()[..]);
            }
        }
    }

    #[test]
    fn pd_cached_kernel_matches_reference_matvec() {
        let w = BlockPermDiagMatrix::random(24, 36, 4, &mut seeded_rng(23));
        let x = sparse_activation_vector(&mut seeded_rng(24), 36, 0.4);
        let mut reference = vec![0.0f32; 24];
        w.matvec_reference(&x, &mut reference);
        assert_eq!(CompressedLinear::matvec(&w, &x).unwrap(), reference);
    }

    #[test]
    fn batch_view_validates_shape() {
        let data = vec![0.0f32; 10];
        assert!(BatchView::new(&data, 2, 5).is_ok());
        assert!(matches!(
            BatchView::new(&data, 3, 5),
            Err(FormatError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mul_count_reflects_compression() {
        let dense = xavier_uniform(&mut seeded_rng(7), 32, 32);
        let pd = BlockPermDiagMatrix::random(32, 32, 4, &mut seeded_rng(8));
        assert_eq!(CompressedLinear::mul_count(&dense), 32 * 32);
        assert_eq!(CompressedLinear::mul_count(&pd), 32 * 32 / 4);
        assert!((CompressedLinear::compression_ratio(&pd) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pd_error_converts_into_format_error() {
        let pd_err = PdError::DimensionMismatch {
            op: "matvec",
            expected: 4,
            got: 3,
        };
        assert_eq!(
            FormatError::from(pd_err),
            FormatError::DimensionMismatch {
                op: "matvec",
                expected: 4,
                got: 3
            }
        );
        let other = FormatError::from(PdError::ZeroBlockSize);
        assert!(matches!(
            other,
            FormatError::Format {
                format: "permuted-diagonal",
                ..
            }
        ));
    }

    #[test]
    fn par_row_ranges_partition_exactly() {
        for n_rows in [0usize, 1, 2, 7, 16, 37, 100] {
            for n_shards in [1usize, 2, 3, 7, 8, 64] {
                let ranges = par_row_ranges(n_rows, n_shards);
                assert!(ranges.len() <= n_shards);
                assert_eq!(ranges.len(), n_shards.min(n_rows));
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "ranges must be contiguous in order");
                    assert!(!r.is_empty(), "no empty shards");
                    next = r.end;
                }
                assert_eq!(next, n_rows, "ranges must cover all rows");
                if let (Some(first), Some(last)) = (ranges.first(), ranges.last()) {
                    assert!(first.len() - last.len() <= 1, "near-equal split");
                }
            }
        }
    }

    #[test]
    fn par_row_ranges_zero_shards_is_one_shard() {
        assert_eq!(par_row_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn block_row_ranges_partition_on_block_boundaries() {
        for (n_rows, p) in [(16usize, 4usize), (100, 8), (37, 5), (40, 10), (7, 7)] {
            for n_shards in [1usize, 2, 3, 7, 64] {
                let ranges = block_row_ranges(n_rows, p, n_shards);
                assert_eq!(ranges.len(), n_shards.min(n_rows.div_ceil(p)));
                let mut next = 0usize;
                for (i, r) in ranges.iter().enumerate() {
                    assert_eq!(r.start, next, "contiguous in order");
                    assert!(!r.is_empty(), "no empty shards");
                    assert_eq!(r.start % p, 0, "every boundary on a block multiple");
                    if i + 1 < ranges.len() {
                        assert_eq!(r.end % p, 0, "interior boundaries on block multiples");
                    }
                    next = r.end;
                }
                assert_eq!(next, n_rows, "ranges cover all rows");
            }
        }
    }

    #[test]
    fn block_row_ranges_degenerate_inputs() {
        assert!(block_row_ranges(0, 4, 3).is_empty());
        // p = 0 behaves as row-granular, matching par_row_ranges.
        assert_eq!(block_row_ranges(10, 0, 4), par_row_ranges(10, 4));
        assert_eq!(block_row_ranges(10, 1, 4), par_row_ranges(10, 4));
    }

    #[test]
    fn compressed_linear_objects_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn CompressedLinear>();
        assert_send_sync::<Box<dyn CompressedLinear>>();
        assert_send_sync::<std::sync::Arc<dyn CompressedLinear>>();
    }

    #[test]
    fn labels_identify_formats() {
        let pd = BlockPermDiagMatrix::random(8, 8, 2, &mut seeded_rng(9));
        assert_eq!(CompressedLinear::label(&pd), "permuted-diagonal (p=2)");
        assert_eq!(CompressedLinear::label(&Matrix::zeros(2, 2)), "dense");
    }
}
