//! Permuted-diagonal convolutional weight tensors (Section III-C, Eqns. 4–6).
//!
//! The CONV-layer weight tensor `F ∈ R^{c_out × c_in × kh × kw}` is viewed as a "macro"
//! matrix over the (output-channel, input-channel) dimensions whose entries are whole
//! `kh × kw` filter kernels (Fig. 2). The permuted-diagonal structure is imposed on that
//! macro matrix: filter `F(o, i, ·, ·)` is non-zero only when input channel `i` lies on
//! the permuted diagonal of output channel `o`'s block. The compression ratio for the
//! layer is therefore exactly `p`, as for FC layers.

use pd_tensor::tensor4::conv_out_dim;
use pd_tensor::Tensor4;
use rand::Rng;

use crate::{PdError, PermutationIndexing};

/// A permuted-diagonal 4-D convolution weight tensor.
///
/// Only the kernels on the permuted channel diagonal are stored: `(c_out·c_in/p)·kh·kw`
/// values plus one permutation parameter per channel block.
///
/// # Example
///
/// ```
/// use permdnn_core::BlockPermDiagTensor4;
/// use permdnn_core::PermutationIndexing;
/// use pd_tensor::init::seeded_rng;
///
/// let f = BlockPermDiagTensor4::random(8, 8, 3, 3, 2, PermutationIndexing::Natural,
///                                      &mut seeded_rng(0));
/// assert_eq!(f.stored_weights(), 8 * 8 / 2 * 9);
/// assert_eq!(f.compression_ratio(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPermDiagTensor4 {
    c_out: usize,
    c_in: usize,
    kh: usize,
    kw: usize,
    p: usize,
    block_rows: usize,
    block_cols: usize,
    /// Permutation parameter per channel block, `l = block_row * block_cols + block_col`.
    perms: Vec<usize>,
    /// Stored kernels: index `((l * p + c) * kh + ky) * kw + kx` where `c` is the
    /// output-channel offset within the block.
    kernels: Vec<f32>,
}

impl BlockPermDiagTensor4 {
    /// Creates an all-zero permuted-diagonal weight tensor.
    ///
    /// # Errors
    ///
    /// Returns [`PdError::ZeroBlockSize`] if `p == 0`.
    pub fn zeros(
        c_out: usize,
        c_in: usize,
        kh: usize,
        kw: usize,
        p: usize,
        indexing: PermutationIndexing,
    ) -> Result<Self, PdError> {
        if p == 0 {
            return Err(PdError::ZeroBlockSize);
        }
        let block_rows = c_out.div_ceil(p);
        let block_cols = c_in.div_ceil(p);
        let nblocks = block_rows * block_cols;
        let perms = match indexing {
            PermutationIndexing::Natural => (0..nblocks).map(|l| l % p).collect(),
            PermutationIndexing::Random => vec![0; nblocks],
        };
        Ok(BlockPermDiagTensor4 {
            c_out,
            c_in,
            kh,
            kw,
            p,
            block_rows,
            block_cols,
            perms,
            kernels: vec![0.0; nblocks * p * kh * kw],
        })
    }

    /// Creates a randomly initialised permuted-diagonal weight tensor (Xavier scaled to
    /// the effective fan-in `c_in/p · kh · kw`).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn random(
        c_out: usize,
        c_in: usize,
        kh: usize,
        kw: usize,
        p: usize,
        indexing: PermutationIndexing,
        rng: &mut impl Rng,
    ) -> Self {
        let mut t = Self::zeros(c_out, c_in, kh, kw, p, indexing).expect("p must be non-zero");
        if indexing == PermutationIndexing::Random {
            for k in t.perms.iter_mut() {
                *k = rng.gen_range(0..p);
            }
        }
        let fan_in = (c_in.div_ceil(p)).max(1) * kh * kw;
        let fan_out = (c_out.div_ceil(p)).max(1) * kh * kw;
        let a = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
        for v in t.kernels.iter_mut() {
            *v = rng.gen_range(-a..=a);
        }
        t
    }

    /// Number of output channels.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Number of input channels.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Kernel height.
    pub fn kh(&self) -> usize {
        self.kh
    }

    /// Kernel width.
    pub fn kw(&self) -> usize {
        self.kw
    }

    /// Block size / compression ratio `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Per-block permutation parameters.
    pub fn perms(&self) -> &[usize] {
        &self.perms
    }

    /// Flat stored-kernel values.
    pub fn kernels(&self) -> &[f32] {
        &self.kernels
    }

    /// Mutable flat stored-kernel values.
    pub fn kernels_mut(&mut self) -> &mut [f32] {
        &mut self.kernels
    }

    /// Number of stored weight values.
    pub fn stored_weights(&self) -> usize {
        self.kernels.len()
    }

    /// Compression ratio versus the dense `c_out·c_in·kh·kw` tensor.
    pub fn compression_ratio(&self) -> f64 {
        (self.c_out * self.c_in * self.kh * self.kw) as f64 / self.stored_weights() as f64
    }

    /// Returns `true` if filter `(o, i)` is structurally non-zero (on the permuted channel
    /// diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `o >= c_out` or `i >= c_in`.
    pub fn is_structural(&self, o: usize, i: usize) -> bool {
        assert!(
            o < self.c_out && i < self.c_in,
            "channel index out of range"
        );
        let l = (o / self.p) * self.block_cols + (i / self.p);
        (o % self.p + self.perms[l]) % self.p == i % self.p
    }

    /// For output channel `o`, the structurally connected input channels (one per channel
    /// block column).
    pub fn connected_inputs(&self, o: usize) -> Vec<usize> {
        assert!(o < self.c_out, "output channel out of range");
        let c = o % self.p;
        let br = o / self.p;
        (0..self.block_cols)
            .filter_map(|bc| {
                let l = br * self.block_cols + bc;
                let i = bc * self.p + (c + self.perms[l]) % self.p;
                (i < self.c_in).then_some(i)
            })
            .collect()
    }

    fn kernel_base(&self, o: usize, i: usize) -> usize {
        let l = (o / self.p) * self.block_cols + (i / self.p);
        (l * self.p + o % self.p) * self.kh * self.kw
    }

    /// Flat offset into [`kernels`](Self::kernels) of the stored kernel for filter
    /// `(o, i)`, or `None` if that filter is structurally zero. Used by the im2col
    /// lowering to address stored kernels without re-deriving the block layout.
    ///
    /// # Panics
    ///
    /// Panics if `o >= c_out` or `i >= c_in`.
    pub fn kernel_offset(&self, o: usize, i: usize) -> Option<usize> {
        self.is_structural(o, i).then(|| self.kernel_base(o, i))
    }

    /// The stored kernel for filter `(o, i)`, or `None` if that filter is structurally
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `o >= c_out` or `i >= c_in`.
    pub fn kernel(&self, o: usize, i: usize) -> Option<&[f32]> {
        if self.is_structural(o, i) {
            let base = self.kernel_base(o, i);
            Some(&self.kernels[base..base + self.kh * self.kw])
        } else {
            None
        }
    }

    /// Single weight entry `F(o, i, ky, kx)` (zero off the permuted channel diagonal).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn entry(&self, o: usize, i: usize, ky: usize, kx: usize) -> f32 {
        assert!(ky < self.kh && kx < self.kw, "kernel index out of range");
        match self.kernel(o, i) {
            Some(k) => k[ky * self.kw + kx],
            None => 0.0,
        }
    }

    /// Replaces the per-block permutation parameters.
    ///
    /// # Panics
    ///
    /// Panics if `perms.len()` does not equal the number of channel blocks or any value
    /// is `>= p`.
    pub fn set_perms(&mut self, perms: &[usize]) {
        assert_eq!(
            perms.len(),
            self.perms.len(),
            "expected {} permutation parameters",
            self.perms.len()
        );
        assert!(
            perms.iter().all(|&k| k < self.p),
            "permutation parameter out of range 0..{}",
            self.p
        );
        self.perms.copy_from_slice(perms);
    }

    /// Sets a single weight entry on the structural (permuted-diagonal) positions.
    ///
    /// # Panics
    ///
    /// Panics if `(o, i)` is not a structural filter position or any index is out of
    /// range.
    pub fn set_entry(&mut self, o: usize, i: usize, ky: usize, kx: usize, v: f32) {
        assert!(
            self.is_structural(o, i),
            "filter ({o},{i}) is structurally zero and cannot be set"
        );
        assert!(ky < self.kh && kx < self.kw, "kernel index out of range");
        let base = self.kernel_base(o, i);
        self.kernels[base + ky * self.kw + kx] = v;
    }

    /// Expands into a dense [`Tensor4`] of shape `[c_out, c_in, kh, kw]`.
    pub fn to_dense(&self) -> Tensor4 {
        Tensor4::from_fn(
            [self.c_out, self.c_in, self.kh, self.kw],
            |(o, i, ky, kx)| self.entry(o, i, ky, kx),
        )
    }

    /// Forward convolution of a single image (Eqn. 4): input `[1, c_in, h, w]`, output
    /// `[1, c_out, out_h, out_w]`. Only the structurally non-zero channel pairs are
    /// visited, giving the `p ×` reduction in multiply-accumulate work.
    ///
    /// # Errors
    ///
    /// Returns [`PdError::DimensionMismatch`] if the input channel count differs from
    /// `c_in` or the batch dimension is not 1.
    pub fn forward(
        &self,
        input: &Tensor4,
        stride: usize,
        padding: usize,
    ) -> Result<Tensor4, PdError> {
        let [b, ci, h, w] = input.shape();
        if b != 1 {
            return Err(PdError::DimensionMismatch {
                op: "conv forward (batch)",
                expected: 1,
                got: b,
            });
        }
        if ci != self.c_in {
            return Err(PdError::DimensionMismatch {
                op: "conv forward (input channels)",
                expected: self.c_in,
                got: ci,
            });
        }
        let out_h = conv_out_dim(h, self.kh, stride, padding);
        let out_w = conv_out_dim(w, self.kw, stride, padding);
        let mut out = Tensor4::zeros([1, self.c_out, out_h, out_w]);
        for o in 0..self.c_out {
            for i in self.connected_inputs(o) {
                let base = self.kernel_base(o, i);
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        let mut acc = 0.0f32;
                        for ky in 0..self.kh {
                            for kx in 0..self.kw {
                                let iy = (oy * stride + ky) as isize - padding as isize;
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    acc += self.kernels[base + ky * self.kw + kx]
                                        * input[[0, i, iy as usize, ix as usize]];
                                }
                            }
                        }
                        out[[0, o, oy, ox]] += acc;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Gradient of the loss with respect to the stored kernels (Eqn. 5), for one image.
    ///
    /// Layout matches [`kernels`](Self::kernels). `grad_output` must have shape
    /// `[1, c_out, out_h, out_w]` consistent with `input`, `stride` and `padding`.
    ///
    /// # Errors
    ///
    /// Returns [`PdError::DimensionMismatch`] on any shape inconsistency.
    pub fn weight_gradient(
        &self,
        input: &Tensor4,
        grad_output: &Tensor4,
        stride: usize,
        padding: usize,
    ) -> Result<Vec<f32>, PdError> {
        let [b, ci, h, w] = input.shape();
        let [gb, go, out_h, out_w] = grad_output.shape();
        if b != 1 || gb != 1 {
            return Err(PdError::DimensionMismatch {
                op: "conv weight_gradient (batch)",
                expected: 1,
                got: b.max(gb),
            });
        }
        if ci != self.c_in || go != self.c_out {
            return Err(PdError::DimensionMismatch {
                op: "conv weight_gradient (channels)",
                expected: self.c_in,
                got: ci,
            });
        }
        if out_h != conv_out_dim(h, self.kh, stride, padding)
            || out_w != conv_out_dim(w, self.kw, stride, padding)
        {
            return Err(PdError::DimensionMismatch {
                op: "conv weight_gradient (spatial)",
                expected: conv_out_dim(h, self.kh, stride, padding),
                got: out_h,
            });
        }
        let mut grad = vec![0.0f32; self.kernels.len()];
        for o in 0..self.c_out {
            for i in self.connected_inputs(o) {
                let base = self.kernel_base(o, i);
                for ky in 0..self.kh {
                    for kx in 0..self.kw {
                        let mut acc = 0.0f32;
                        for oy in 0..out_h {
                            for ox in 0..out_w {
                                let iy = (oy * stride + ky) as isize - padding as isize;
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    acc += input[[0, i, iy as usize, ix as usize]]
                                        * grad_output[[0, o, oy, ox]];
                                }
                            }
                        }
                        grad[base + ky * self.kw + kx] += acc;
                    }
                }
            }
        }
        Ok(grad)
    }

    /// Gradient of the loss with respect to the input image (Eqn. 6), for one image.
    ///
    /// # Errors
    ///
    /// Returns [`PdError::DimensionMismatch`] on any shape inconsistency.
    pub fn input_gradient(
        &self,
        grad_output: &Tensor4,
        input_shape: [usize; 4],
        stride: usize,
        padding: usize,
    ) -> Result<Tensor4, PdError> {
        let [b, ci, h, w] = input_shape;
        let [gb, go, out_h, out_w] = grad_output.shape();
        if b != 1 || gb != 1 {
            return Err(PdError::DimensionMismatch {
                op: "conv input_gradient (batch)",
                expected: 1,
                got: b.max(gb),
            });
        }
        if ci != self.c_in || go != self.c_out {
            return Err(PdError::DimensionMismatch {
                op: "conv input_gradient (channels)",
                expected: self.c_in,
                got: ci,
            });
        }
        let mut grad = Tensor4::zeros(input_shape);
        for o in 0..self.c_out {
            for i in self.connected_inputs(o) {
                let base = self.kernel_base(o, i);
                for oy in 0..out_h {
                    for ox in 0..out_w {
                        let g = grad_output[[0, o, oy, ox]];
                        if g == 0.0 {
                            continue;
                        }
                        for ky in 0..self.kh {
                            for kx in 0..self.kw {
                                let iy = (oy * stride + ky) as isize - padding as isize;
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    grad[[0, i, iy as usize, ix as usize]] +=
                                        self.kernels[base + ky * self.kw + kx] * g;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad)
    }

    /// Applies the structure-preserving SGD update (Eqn. 5) in place.
    ///
    /// # Errors
    ///
    /// Returns [`PdError::DimensionMismatch`] on any shape inconsistency.
    pub fn sgd_step(
        &mut self,
        input: &Tensor4,
        grad_output: &Tensor4,
        stride: usize,
        padding: usize,
        lr: f32,
    ) -> Result<(), PdError> {
        let grad = self.weight_gradient(input, grad_output, stride, padding)?;
        for (v, g) in self.kernels.iter_mut().zip(grad.iter()) {
            *v -= lr * g;
        }
        Ok(())
    }
}

/// Dense reference convolution used to validate the permuted-diagonal kernels in tests
/// and by the dense baselines in the training framework.
///
/// `weights` has shape `[c_out, c_in, kh, kw]`, `input` `[1, c_in, h, w]`.
///
/// # Panics
///
/// Panics if the shapes are inconsistent.
pub fn dense_conv2d(weights: &Tensor4, input: &Tensor4, stride: usize, padding: usize) -> Tensor4 {
    let [c_out, c_in, kh, kw] = weights.shape();
    let [b, ci, h, w] = input.shape();
    assert_eq!(b, 1, "dense_conv2d expects batch == 1");
    assert_eq!(ci, c_in, "channel mismatch");
    let out_h = conv_out_dim(h, kh, stride, padding);
    let out_w = conv_out_dim(w, kw, stride, padding);
    let mut out = Tensor4::zeros([1, c_out, out_h, out_w]);
    for o in 0..c_out {
        for i in 0..c_in {
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = 0.0f32;
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                acc += weights[[o, i, ky, kx]]
                                    * input[[0, i, iy as usize, ix as usize]];
                            }
                        }
                    }
                    out[[0, o, oy, ox]] += acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_tensor::init::seeded_rng;
    use rand::Rng;

    fn random_input(c: usize, h: usize, w: usize, seed: u64) -> Tensor4 {
        let mut rng = seeded_rng(seed);
        Tensor4::from_fn([1, c, h, w], |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn storage_and_compression() {
        let f = BlockPermDiagTensor4::zeros(16, 8, 3, 3, 4, PermutationIndexing::Natural).unwrap();
        assert_eq!(f.stored_weights(), 16 * 8 / 4 * 9);
        assert!((f.compression_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn structural_pattern_one_input_per_block() {
        let f = BlockPermDiagTensor4::zeros(8, 8, 1, 1, 4, PermutationIndexing::Natural).unwrap();
        for o in 0..8 {
            let conn = f.connected_inputs(o);
            assert_eq!(conn.len(), 2, "one connected input per block column");
            for &i in &conn {
                assert!(f.is_structural(o, i));
            }
            let non_conn = (0..8).filter(|i| !conn.contains(i));
            for i in non_conn {
                assert!(!f.is_structural(o, i));
                assert!(f.kernel(o, i).is_none());
            }
        }
    }

    #[test]
    fn forward_matches_dense_reference() {
        let mut rng = seeded_rng(31);
        let f = BlockPermDiagTensor4::random(8, 4, 3, 3, 2, PermutationIndexing::Natural, &mut rng);
        let input = random_input(4, 6, 6, 32);
        for &(stride, padding) in &[(1usize, 1usize), (1, 0), (2, 1)] {
            let pd_out = f.forward(&input, stride, padding).unwrap();
            let dense_out = dense_conv2d(&f.to_dense(), &input, stride, padding);
            assert_eq!(pd_out.shape(), dense_out.shape());
            for (a, b) in pd_out.as_slice().iter().zip(dense_out.as_slice().iter()) {
                assert!((a - b).abs() < 1e-4, "stride {stride} pad {padding}");
            }
        }
    }

    #[test]
    fn forward_validates_shapes() {
        let f = BlockPermDiagTensor4::zeros(4, 4, 3, 3, 2, PermutationIndexing::Natural).unwrap();
        let wrong_channels = Tensor4::zeros([1, 3, 6, 6]);
        assert!(f.forward(&wrong_channels, 1, 1).is_err());
        let wrong_batch = Tensor4::zeros([2, 4, 6, 6]);
        assert!(f.forward(&wrong_batch, 1, 1).is_err());
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = seeded_rng(41);
        let f = BlockPermDiagTensor4::random(4, 4, 2, 2, 2, PermutationIndexing::Natural, &mut rng);
        let input = random_input(4, 4, 4, 42);
        let target = {
            let mut rng = seeded_rng(43);
            let out = f.forward(&input, 1, 0).unwrap();
            Tensor4::from_fn(out.shape(), |_| rng.gen_range(-1.0..1.0))
        };
        let loss = |f: &BlockPermDiagTensor4| -> f64 {
            let out = f.forward(&input, 1, 0).unwrap();
            out.as_slice()
                .iter()
                .zip(target.as_slice().iter())
                .map(|(o, t)| 0.5 * ((o - t) as f64).powi(2))
                .sum()
        };
        let out = f.forward(&input, 1, 0).unwrap();
        let grad_out = Tensor4::from_vec(
            out.shape(),
            out.as_slice()
                .iter()
                .zip(target.as_slice().iter())
                .map(|(o, t)| o - t)
                .collect(),
        )
        .unwrap();
        let analytic = f.weight_gradient(&input, &grad_out, 1, 0).unwrap();
        let eps = 1e-3f32;
        // Spot-check a sample of kernel slots.
        for idx in (0..f.kernels().len()).step_by(7) {
            let mut fp = f.clone();
            fp.kernels_mut()[idx] += eps;
            let mut fm = f.clone();
            fm.kernels_mut()[idx] -= eps;
            let numeric = (loss(&fp) - loss(&fm)) / (2.0 * eps as f64);
            assert!(
                (numeric - analytic[idx] as f64).abs() < 5e-2,
                "slot {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = seeded_rng(51);
        let f = BlockPermDiagTensor4::random(4, 2, 3, 3, 2, PermutationIndexing::Natural, &mut rng);
        let input = random_input(2, 5, 5, 52);
        let out = f.forward(&input, 1, 1).unwrap();
        let target = Tensor4::from_fn(out.shape(), |(_, o, y, x)| ((o + y + x) as f32 * 0.1).sin());
        let grad_out = Tensor4::from_vec(
            out.shape(),
            out.as_slice()
                .iter()
                .zip(target.as_slice().iter())
                .map(|(o, t)| o - t)
                .collect(),
        )
        .unwrap();
        let analytic = f.input_gradient(&grad_out, input.shape(), 1, 1).unwrap();
        let loss = |inp: &Tensor4| -> f64 {
            let out = f.forward(inp, 1, 1).unwrap();
            out.as_slice()
                .iter()
                .zip(target.as_slice().iter())
                .map(|(o, t)| 0.5 * ((o - t) as f64).powi(2))
                .sum()
        };
        let eps = 1e-3f32;
        for idx in (0..input.len()).step_by(11) {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&ip) - loss(&im)) / (2.0 * eps as f64);
            assert!(
                (numeric - analytic.as_slice()[idx] as f64).abs() < 5e-2,
                "pixel {idx}: numeric {numeric} vs analytic {}",
                analytic.as_slice()[idx]
            );
        }
    }

    #[test]
    fn sgd_step_reduces_loss_and_preserves_structure() {
        let mut rng = seeded_rng(61);
        let mut f =
            BlockPermDiagTensor4::random(4, 4, 3, 3, 2, PermutationIndexing::Natural, &mut rng);
        let input = random_input(4, 5, 5, 62);
        let out0 = f.forward(&input, 1, 1).unwrap();
        let target = Tensor4::from_fn(out0.shape(), |(_, o, y, x)| {
            ((o * 3 + y + x) as f32 * 0.05).cos()
        });
        let loss = |f: &BlockPermDiagTensor4| -> f64 {
            let out = f.forward(&input, 1, 1).unwrap();
            out.as_slice()
                .iter()
                .zip(target.as_slice().iter())
                .map(|(o, t)| 0.5 * ((o - t) as f64).powi(2))
                .sum()
        };
        let before = loss(&f);
        for _ in 0..10 {
            let out = f.forward(&input, 1, 1).unwrap();
            let grad_out = Tensor4::from_vec(
                out.shape(),
                out.as_slice()
                    .iter()
                    .zip(target.as_slice().iter())
                    .map(|(o, t)| o - t)
                    .collect(),
            )
            .unwrap();
            f.sgd_step(&input, &grad_out, 1, 1, 0.01).unwrap();
        }
        let after = loss(&f);
        assert!(
            after < before,
            "conv training should reduce loss: {before} -> {after}"
        );
        // Structure preserved: off-diagonal filters remain exactly zero in the dense view.
        let dense = f.to_dense();
        for o in 0..4 {
            for i in 0..4 {
                if !f.is_structural(o, i) {
                    for ky in 0..3 {
                        for kx in 0..3 {
                            assert_eq!(dense[[o, i, ky, kx]], 0.0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dense_conv_identity_kernel_preserves_input() {
        // 1x1 kernel equal to 1.0 on a single channel: output equals input.
        let w = Tensor4::from_fn([1, 1, 1, 1], |_| 1.0);
        let input = random_input(1, 4, 4, 71);
        let out = dense_conv2d(&w, &input, 1, 0);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn ragged_channel_counts() {
        // c_out=6, c_in=10, p=4: blocks are padded; forward must still match dense.
        let mut rng = seeded_rng(81);
        let f =
            BlockPermDiagTensor4::random(6, 10, 3, 3, 4, PermutationIndexing::Natural, &mut rng);
        let input = random_input(10, 5, 5, 82);
        let pd = f.forward(&input, 1, 1).unwrap();
        let dense = dense_conv2d(&f.to_dense(), &input, 1, 1);
        for (a, b) in pd.as_slice().iter().zip(dense.as_slice().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
