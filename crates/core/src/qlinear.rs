//! The 16-bit fixed-point inference backend: [`QuantizedLinear`] executes any
//! [`CompressedLinear`] weight operator in integer arithmetic.
//!
//! The PermDNN hardware computes entirely in 16-bit fixed point with 24-bit
//! accumulators (Table VIII); this module is the software twin of that
//! datapath. A [`QuantizedLinear`] stores:
//!
//! * a per-layer [`QScheme`] — the Q-formats of the input activations, the
//!   stored weights and the output activations (fractional widths chosen by
//!   calibration, see [`pd_tensor::fixed::choose_frac_bits`]);
//! * raw `i16` weights inside a [`QuantKernel`] — a hand-written integer
//!   kernel for the hot formats (row-major dense, and the column-wise
//!   zero-skipping kernel shared by permuted-diagonal / CSC / EIE layouts);
//! * or, for formats with no integer kernel (the frequency-domain circulant
//!   format), a generic *dequantize fallback* that runs the f32 kernel on
//!   dequantized activations and requantizes the outputs.
//!
//! Arithmetic contract (the thing the property tests pin down):
//!
//! 1. products are formed exactly in `i32` (`x_raw · w_raw`), then rounded
//!    back to the input's Q-format (`+half; >> weight_frac`) — the same
//!    rounding as [`Q16::mul`](pd_tensor::fixed::Q16::mul);
//! 2. rounded products accumulate in a saturating 24-bit
//!    [`Accumulator24`] — 8 bits of headroom over the 16-bit activation
//!    range, exactly the PE accumulator width;
//! 3. the (optional) bias is quantized at the input Q-format and seeded
//!    into the accumulator before any product arrives, so requantization —
//!    a round-to-nearest shift to the layer's output Q-format, saturating
//!    at the `i16` range — always sees the complete affine sum.
//!
//! Every step is integer and deterministic, so quantized inference — single
//! vectors, batches, or batches sharded across the runtime's worker pool — is
//! bit-for-bit reproducible. [`QuantizedLinear`] also implements
//! [`CompressedLinear`] itself (quantize input → integer kernel → dequantize
//! output), which is what lets quantized models flow through the `nn` layers,
//! the `runtime` serving loop, the `sim` cost models and the benches without
//! any of those call sites learning a second API.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use permdnn_core::format::CompressedLinear;
//! use permdnn_core::qlinear::{QScheme, QuantizedLinear};
//! use permdnn_core::BlockPermDiagMatrix;
//! use pd_tensor::init::seeded_rng;
//!
//! let w = BlockPermDiagMatrix::random(16, 32, 4, &mut seeded_rng(0));
//! let op: Arc<dyn CompressedLinear> = Arc::new(w);
//! let q = QuantizedLinear::from_op(Arc::clone(&op), QScheme::calibrate(1.0, op.max_weight_abs(), 4.0));
//! assert!(q.has_integer_kernel());
//! let x = vec![0.25f32; 32];
//! let y = q.matvec(&x).unwrap();          // f32 surface: quantize -> integer kernel -> dequantize
//! assert_eq!(y.len(), 16);
//! ```

use std::sync::Arc;

use pd_tensor::fixed::{choose_frac_bits, dequantize_raw, quantize_to_raw, Accumulator24};
use pd_tensor::Matrix;

use crate::format::{check_dim, CompressedLinear, FormatError};

/// The per-layer Q-formats of a quantized layer: fractional widths (1..=14) of
/// the input activations, the stored weights and the output activations.
///
/// `Q(15-frac).frac` format throughout: e.g. `frac = 12` is Q3.12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QScheme {
    /// Fractional bits of the incoming activation vector.
    pub input_frac: u32,
    /// Fractional bits of the stored weights.
    pub weight_frac: u32,
    /// Fractional bits of the produced output vector.
    pub output_frac: u32,
}

impl QScheme {
    /// Builds a scheme from explicit fractional widths.
    ///
    /// # Panics
    ///
    /// Panics unless every width is in `1..=14` (the range
    /// [`choose_frac_bits`] produces; width 0 would break product rounding,
    /// width 15 leaves no integer bit).
    pub fn new(input_frac: u32, weight_frac: u32, output_frac: u32) -> Self {
        for (name, frac) in [
            ("input_frac", input_frac),
            ("weight_frac", weight_frac),
            ("output_frac", output_frac),
        ] {
            assert!(
                (1..=14).contains(&frac),
                "{name} = {frac} outside the supported 1..=14 range"
            );
        }
        QScheme {
            input_frac,
            weight_frac,
            output_frac,
        }
    }

    /// Chooses each width from the observed dynamic range of the
    /// corresponding tensor (largest width whose integer range still covers
    /// the maximum absolute value) — the per-layer calibration rule.
    pub fn calibrate(input_max_abs: f32, weight_max_abs: f32, output_max_abs: f32) -> Self {
        QScheme::new(
            choose_frac_bits(input_max_abs),
            choose_frac_bits(weight_max_abs),
            choose_frac_bits(output_max_abs),
        )
    }

    /// The default Q3.12 everywhere — adequate for post-batch-norm
    /// activations and weights in `(-8, 8)`.
    pub fn q3_12() -> Self {
        QScheme::new(12, 12, 12)
    }

    /// Smallest representable increment of the output format.
    pub fn output_epsilon(&self) -> f32 {
        1.0 / (1u32 << self.output_frac) as f32
    }

    /// Smallest representable increment of the accumulator, which holds
    /// values in the *input* Q-format (products are rounded back to it).
    pub fn accumulator_epsilon(&self) -> f32 {
        1.0 / (1u32 << self.input_frac) as f32
    }
}

/// A hand-written 16-bit integer kernel: the raw `i16` weights plus the
/// layout-specific traversal. Formats advertise theirs through
/// [`CompressedLinear::quantize_kernel`]; formats that return `None` execute
/// through the generic dequantize fallback instead.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantKernel {
    /// Row-major dense weights; one 24-bit accumulator per output row,
    /// sequential dot products.
    Dense {
        /// `rows × cols` raw weights, row-major.
        weights: Vec<i16>,
    },
    /// Column-compressed sparse weights — the one integer kernel behind the
    /// permuted-diagonal, CSC and EIE layouts, all of which process columns of
    /// non-zero weights against broadcast activations and skip zero inputs
    /// entirely (the PERMDNN / EIE PE dataflow).
    ColumnSparse {
        /// `col_ptr[c]..col_ptr[c+1]` indexes the entries of column `c`.
        col_ptr: Vec<usize>,
        /// Output row of each stored entry.
        row_idx: Vec<u32>,
        /// Raw weight of each stored entry.
        weights: Vec<i16>,
    },
}

impl QuantKernel {
    /// Quantizes a dense matrix into the row-major integer kernel.
    pub fn dense(m: &Matrix, weight_frac: u32) -> QuantKernel {
        QuantKernel::Dense {
            weights: m
                .as_slice()
                .iter()
                .map(|&v| quantize_to_raw(v, weight_frac))
                .collect(),
        }
    }

    /// Builds the column-sparse kernel from per-column `(row, value)` entries.
    ///
    /// # Panics
    ///
    /// Panics if `columns.len() != cols` or any row index is `>= rows`.
    pub fn column_sparse(
        rows: usize,
        cols: usize,
        weight_frac: u32,
        columns: &[Vec<(usize, f32)>],
    ) -> QuantKernel {
        assert_eq!(columns.len(), cols, "one entry list per column");
        let nnz = columns.iter().map(|c| c.len()).sum();
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut weights = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for column in columns {
            for &(r, v) in column {
                assert!(r < rows, "row {r} out of bounds ({rows})");
                row_idx.push(r as u32);
                weights.push(quantize_to_raw(v, weight_frac));
            }
            col_ptr.push(row_idx.len());
        }
        QuantKernel::ColumnSparse {
            col_ptr,
            row_idx,
            weights,
        }
    }

    /// Number of raw weights the kernel stores.
    pub fn stored_weights(&self) -> usize {
        match self {
            QuantKernel::Dense { weights } | QuantKernel::ColumnSparse { weights, .. } => {
                weights.len()
            }
        }
    }
}

/// Counters from one integer kernel invocation: how much arithmetic ran and
/// how often the fixed-point datapath clipped. The simulator turns these into
/// datapath cost and overflow reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QKernelStats {
    /// Integer products formed (16×16 → 32-bit multiplies).
    pub products: u64,
    /// Times the 24-bit accumulator clamped at a saturation bound.
    pub accumulator_saturations: u64,
    /// Times requantization to the output format (or the quantized bias add)
    /// clamped at the 16-bit range.
    pub requantize_saturations: u64,
}

impl QKernelStats {
    /// Adds another invocation's counters into this one.
    pub fn merge(&mut self, other: &QKernelStats) {
        self.products += other.products;
        self.accumulator_saturations += other.accumulator_saturations;
        self.requantize_saturations += other.requantize_saturations;
    }

    /// Whether any clamp fired anywhere in the datapath.
    pub fn saturated(&self) -> bool {
        self.accumulator_saturations > 0 || self.requantize_saturations > 0
    }
}

/// How a [`QuantizedLinear`] executes: natively in integer arithmetic, or
/// through the f32 kernel of a format without an integer kernel.
#[derive(Clone)]
enum QExec {
    Integer(QuantKernel),
    /// Dequantize the input, run the wrapped f32 kernel, requantize the
    /// output. The weights stay in the wrapped format's own storage.
    Fallback(Arc<dyn CompressedLinear>),
}

/// A compressed linear operator executing in 16-bit fixed point — the
/// deployment form of any [`CompressedLinear`] weight matrix.
///
/// Build one with [`QuantizedLinear::from_op`]; add a bias with
/// [`QuantizedLinear::with_bias`]. The integer surface is
/// [`matvec_q_into`](QuantizedLinear::matvec_q_into) /
/// [`matmul_q`](QuantizedLinear::matmul_q) (raw `i16` in, raw `i16` out, with
/// [`QKernelStats`]); the [`CompressedLinear`] impl provides the f32 surface
/// the rest of the workspace programs against.
#[derive(Clone)]
pub struct QuantizedLinear {
    rows: usize,
    cols: usize,
    scheme: QScheme,
    exec: QExec,
    /// Quantized bias at the *input* Q-format (the accumulator's grid),
    /// seeded into the 24-bit accumulator before the products accumulate.
    bias_raw: Option<Vec<i32>>,
    label: String,
    stored_weights: usize,
    mul_count: u64,
    exploits_input_sparsity: bool,
}

impl std::fmt::Debug for QuantizedLinear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedLinear")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("scheme", &self.scheme)
            .field("label", &self.label)
            .field("integer_kernel", &self.has_integer_kernel())
            .finish()
    }
}

/// Rounds a full-precision `i32` product back to the input Q-format — the
/// per-product rounding step of the datapath (`+half; >> weight_frac`).
#[inline]
fn product_to_acc(x_raw: i16, w_raw: i16, weight_frac: u32) -> i32 {
    let wide = x_raw as i32 * w_raw as i32;
    (wide + (1 << (weight_frac - 1))) >> weight_frac
}

/// Requantizes a 24-bit accumulator value from the input Q-format to the
/// output Q-format (round-to-nearest shift, saturating at the `i16` range).
/// Returns the raw output and whether the clamp fired.
#[inline]
fn requantize_acc(value: i32, input_frac: u32, output_frac: u32) -> (i16, bool) {
    let shifted: i64 = if output_frac >= input_frac {
        (value as i64) << (output_frac - input_frac)
    } else {
        let shift = input_frac - output_frac;
        ((value as i64) + (1i64 << (shift - 1))) >> shift
    };
    let clamped = shifted.clamp(i16::MIN as i64, i16::MAX as i64);
    (clamped as i16, clamped != shifted)
}

/// Reusable buffers for the quantized hot path: the raw activation staging
/// vectors of the f32 trait surface, the flat accumulator array of the
/// column-sparse kernel, and the f32 staging vectors of the dequantize
/// fallback. One lives in each `Scratch` arena slot the runtime owns per
/// worker, so steady-state quantized serving performs no per-call allocation.
#[derive(Debug, Default)]
pub struct QScratch {
    /// Quantized input staging for the f32 `CompressedLinear` surface.
    x_raw: Vec<i16>,
    /// Raw output staging for the f32 `CompressedLinear` surface.
    y_raw: Vec<i16>,
    /// One 24-bit (i32-backed) accumulator per output row for the
    /// column-sparse kernel.
    accs: Vec<i32>,
    /// Dequantized input staging for the fallback exec path.
    x_f32: Vec<f32>,
    /// f32 output staging for the fallback exec path.
    y_f32: Vec<f32>,
}

/// One column-sparse accumulation step on a flat `i32` accumulator array,
/// replicating [`Accumulator24::accumulate_checked`] exactly: saturating add,
/// clamp to the 24-bit bounds, report whether the clamp fired. Kept free so
/// the unrolled inner loop below stays a straight-line instruction sequence.
#[inline(always)]
fn acc_step(accs: &mut [i32], row: u32, x_raw: i16, w_raw: i16, weight_frac: u32) -> u64 {
    let product = product_to_acc(x_raw, w_raw, weight_frac);
    let a = &mut accs[row as usize];
    let unclamped = a.saturating_add(product);
    let clamped = unclamped.clamp(Accumulator24::MIN, Accumulator24::MAX);
    *a = clamped;
    u64::from(clamped != unclamped)
}

impl QuantizedLinear {
    /// Quantizes any weight operator: formats advertising an integer kernel
    /// ([`CompressedLinear::quantize_kernel`]) execute natively in `i16`/`i32`
    /// arithmetic; the rest get the generic dequantize fallback.
    pub fn from_op(op: Arc<dyn CompressedLinear>, scheme: QScheme) -> QuantizedLinear {
        let (exec, label, stored_weights) = match op.quantize_kernel(scheme.weight_frac) {
            Some(kernel) => {
                let stored = kernel.stored_weights();
                (
                    QExec::Integer(kernel),
                    format!("q16 {}", op.label()),
                    stored,
                )
            }
            None => (
                QExec::Fallback(Arc::clone(&op)),
                format!("q16-fallback {}", op.label()),
                op.stored_weights(),
            ),
        };
        QuantizedLinear {
            rows: op.out_dim(),
            cols: op.in_dim(),
            scheme,
            exec,
            bias_raw: None,
            label,
            stored_weights,
            mul_count: op.mul_count(),
            exploits_input_sparsity: op.exploits_input_sparsity(),
        }
    }

    /// Attaches a bias. It is quantized at the *input* Q-format and seeded
    /// into the 24-bit accumulator before the products accumulate — the
    /// requantizer therefore sees the complete affine sum, so a layer whose
    /// final output fits the calibrated output range is exact even when the
    /// pre-bias product sum alone would not fit (the hardware initialises
    /// its accumulators the same way).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != out_dim()`.
    pub fn with_bias(mut self, bias: &[f32]) -> QuantizedLinear {
        assert_eq!(bias.len(), self.rows, "bias length mismatch");
        let scale = (1u32 << self.scheme.input_frac) as f32;
        self.bias_raw = Some(bias.iter().map(|&b| (b * scale).round() as i32).collect());
        self
    }

    /// The layer's Q-formats.
    pub fn scheme(&self) -> QScheme {
        self.scheme
    }

    /// Whether the operator executes through a native integer kernel (`true`)
    /// or the dequantize fallback (`false`).
    pub fn has_integer_kernel(&self) -> bool {
        matches!(self.exec, QExec::Integer(_))
    }

    /// Weight storage in bits: 16 per stored weight — half the f32 formats'
    /// footprint, the "16-bit fixed with PD" row of Tables II–V.
    pub fn weight_storage_bits(&self) -> u64 {
        self.stored_weights as u64 * 16
    }

    /// Quantizes an f32 activation vector to the layer's input Q-format.
    pub fn quantize_input(&self, x: &[f32]) -> Vec<i16> {
        x.iter()
            .map(|&v| quantize_to_raw(v, self.scheme.input_frac))
            .collect()
    }

    /// Dequantizes a raw output vector from the layer's output Q-format.
    pub fn dequantize_output(&self, y_raw: &[i16]) -> Vec<f32> {
        y_raw
            .iter()
            .map(|&r| dequantize_raw(r, self.scheme.output_frac))
            .collect()
    }

    /// The integer matvec: raw input at `input_frac` in, raw output at
    /// `output_frac` out, datapath counters returned.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] unless
    /// `x_raw.len() == in_dim()` and `y_raw.len() == out_dim()`.
    pub fn matvec_q_into(
        &self,
        x_raw: &[i16],
        y_raw: &mut [i16],
    ) -> Result<QKernelStats, FormatError> {
        self.matvec_q_scratch(x_raw, y_raw, &mut QScratch::default())
    }

    /// The integer matvec with caller-owned scratch buffers — the serving hot
    /// path. Bit-identical outputs and counters to
    /// [`matvec_q_reference`](Self::matvec_q_reference): the column-sparse
    /// kernel runs on a flat reusable `i32` accumulator array (replicating
    /// [`Accumulator24`] arithmetic exactly, in the same per-accumulator
    /// order) with its inner loop unrolled four-wide over each column's
    /// entry slices, and the fallback path stages through reusable f32
    /// buffers.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] unless
    /// `x_raw.len() == in_dim()` and `y_raw.len() == out_dim()`.
    pub fn matvec_q_scratch(
        &self,
        x_raw: &[i16],
        y_raw: &mut [i16],
        scratch: &mut QScratch,
    ) -> Result<QKernelStats, FormatError> {
        check_dim("matvec_q_into", self.cols, x_raw.len())?;
        check_dim("matvec_q_into", self.rows, y_raw.len())?;
        let mut stats = QKernelStats::default();
        match &self.exec {
            QExec::Integer(QuantKernel::Dense { weights }) => {
                let wf = self.scheme.weight_frac;
                for (r, out) in y_raw.iter_mut().enumerate() {
                    let mut acc = self.seeded_acc(r, &mut stats);
                    let row = &weights[r * self.cols..(r + 1) * self.cols];
                    for (&w, &x) in row.iter().zip(x_raw.iter()) {
                        stats.products += 1;
                        stats.accumulator_saturations +=
                            u64::from(acc.accumulate_checked(product_to_acc(x, w, wf)));
                    }
                    *out = self.finish_output(acc.value(), &mut stats);
                }
            }
            QExec::Integer(QuantKernel::ColumnSparse {
                col_ptr,
                row_idx,
                weights,
            }) => {
                // The column-wise dataflow: one running accumulator per output
                // row, zero input activations skipped entirely. Accumulators
                // are flat i32s (acc_step replays Accumulator24 exactly) and
                // each column's entries stream four-wide; entries are applied
                // in stored order, so every accumulator sees the same
                // saturating-add sequence as the reference kernel.
                let wf = self.scheme.weight_frac;
                let accs = &mut scratch.accs;
                accs.clear();
                match &self.bias_raw {
                    Some(bias) => {
                        accs.extend(
                            bias.iter()
                                .map(|&b| b.clamp(Accumulator24::MIN, Accumulator24::MAX)),
                        );
                        stats.accumulator_saturations += bias
                            .iter()
                            .filter(|&&b| !(Accumulator24::MIN..=Accumulator24::MAX).contains(&b))
                            .count()
                            as u64;
                    }
                    None => accs.resize(self.rows, 0),
                }
                for (c, &x) in x_raw.iter().enumerate() {
                    if x == 0 {
                        continue;
                    }
                    let (s, e) = (col_ptr[c], col_ptr[c + 1]);
                    let mut sat = 0u64;
                    let mut idx = row_idx[s..e].chunks_exact(4);
                    let mut ws = weights[s..e].chunks_exact(4);
                    for (ri, wi) in (&mut idx).zip(&mut ws) {
                        sat += acc_step(accs, ri[0], x, wi[0], wf);
                        sat += acc_step(accs, ri[1], x, wi[1], wf);
                        sat += acc_step(accs, ri[2], x, wi[2], wf);
                        sat += acc_step(accs, ri[3], x, wi[3], wf);
                    }
                    for (&r, &w) in idx.remainder().iter().zip(ws.remainder()) {
                        sat += acc_step(accs, r, x, w, wf);
                    }
                    stats.products += (e - s) as u64;
                    stats.accumulator_saturations += sat;
                }
                for (out, &acc) in y_raw.iter_mut().zip(accs.iter()) {
                    *out = self.finish_output(acc, &mut stats);
                }
            }
            QExec::Fallback(op) => {
                let QScratch { x_f32, y_f32, .. } = scratch;
                x_f32.clear();
                x_f32.extend(
                    x_raw
                        .iter()
                        .map(|&r| dequantize_raw(r, self.scheme.input_frac)),
                );
                y_f32.clear();
                y_f32.resize(self.rows, 0.0);
                op.matvec_into(x_f32, y_f32)?;
                stats.products += op.mul_count();
                let bias_scale = (1u32 << self.scheme.input_frac) as f32;
                let out_scale = (1u32 << self.scheme.output_frac) as f32;
                for (r, (out, &v)) in y_raw.iter_mut().zip(y_f32.iter()).enumerate() {
                    let biased = match &self.bias_raw {
                        Some(bias) => v + bias[r] as f32 / bias_scale,
                        None => v,
                    };
                    // Same clamp detection as `requantize_acc`: compare the
                    // pre-clamp scaled value, so a value landing exactly on
                    // the rail does not count as a saturation.
                    let scaled = (biased * out_scale).round();
                    let clamped = scaled.clamp(i16::MIN as f32, i16::MAX as f32);
                    stats.requantize_saturations += u64::from(scaled != clamped);
                    *out = clamped as i16;
                }
            }
        }
        Ok(stats)
    }

    /// The pre-optimization integer matvec, retained verbatim as the
    /// wall-clock and bit-identity baseline for `wall_sweep` and
    /// `tests/wall.rs`: the column-sparse path allocates a fresh
    /// [`Accumulator24`] vector per call and applies entries one at a time.
    /// Production call sites use [`matvec_q_into`](Self::matvec_q_into) /
    /// [`matvec_q_scratch`](Self::matvec_q_scratch).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] unless
    /// `x_raw.len() == in_dim()` and `y_raw.len() == out_dim()`.
    pub fn matvec_q_reference(
        &self,
        x_raw: &[i16],
        y_raw: &mut [i16],
    ) -> Result<QKernelStats, FormatError> {
        check_dim("matvec_q_into", self.cols, x_raw.len())?;
        check_dim("matvec_q_into", self.rows, y_raw.len())?;
        let mut stats = QKernelStats::default();
        match &self.exec {
            QExec::Integer(QuantKernel::Dense { weights }) => {
                let wf = self.scheme.weight_frac;
                for (r, out) in y_raw.iter_mut().enumerate() {
                    let mut acc = self.seeded_acc(r, &mut stats);
                    let row = &weights[r * self.cols..(r + 1) * self.cols];
                    for (&w, &x) in row.iter().zip(x_raw.iter()) {
                        stats.products += 1;
                        stats.accumulator_saturations +=
                            u64::from(acc.accumulate_checked(product_to_acc(x, w, wf)));
                    }
                    *out = self.finish_output(acc.value(), &mut stats);
                }
            }
            QExec::Integer(QuantKernel::ColumnSparse {
                col_ptr,
                row_idx,
                weights,
            }) => {
                // The column-wise dataflow: one running accumulator per output
                // row, zero input activations skipped entirely.
                let wf = self.scheme.weight_frac;
                let mut accs: Vec<Accumulator24> = (0..self.rows)
                    .map(|r| self.seeded_acc(r, &mut stats))
                    .collect();
                for (c, &x) in x_raw.iter().enumerate() {
                    if x == 0 {
                        continue;
                    }
                    for i in col_ptr[c]..col_ptr[c + 1] {
                        stats.products += 1;
                        stats.accumulator_saturations += u64::from(
                            accs[row_idx[i] as usize]
                                .accumulate_checked(product_to_acc(x, weights[i], wf)),
                        );
                    }
                }
                for (out, acc) in y_raw.iter_mut().zip(accs.iter()) {
                    *out = self.finish_output(acc.value(), &mut stats);
                }
            }
            QExec::Fallback(_) => return self.matvec_q_into(x_raw, y_raw),
        }
        Ok(stats)
    }

    /// A fresh accumulator, pre-loaded with the row's quantized bias (if
    /// any); a bias outside the 24-bit range clamps and is counted.
    #[inline]
    fn seeded_acc(&self, row: usize, stats: &mut QKernelStats) -> Accumulator24 {
        let mut acc = Accumulator24::new();
        if let Some(bias) = &self.bias_raw {
            stats.accumulator_saturations += u64::from(acc.accumulate_checked(bias[row]));
        }
        acc
    }

    /// Requantizes one finished accumulator to the output Q-format.
    #[inline]
    fn finish_output(&self, acc_value: i32, stats: &mut QKernelStats) -> i16 {
        let (raw, clipped) =
            requantize_acc(acc_value, self.scheme.input_frac, self.scheme.output_frac);
        stats.requantize_saturations += u64::from(clipped);
        raw
    }

    /// Writes the snapshot payload for [`FORMAT_QUANTIZED`]
    /// (`crate::snapshot::FORMAT_QUANTIZED`): shape, Q-scheme, label and cost
    /// metadata, then the raw integer kernel (or the nested tensor record of
    /// the fallback operator), then the quantized bias. Returns `None`
    /// without writing anything if a fallback-wrapped operator has no codec.
    pub(crate) fn snapshot_write(&self, out: &mut crate::snapshot::ByteWriter) -> Option<u16> {
        use crate::snapshot::ByteWriter;
        // Build the whole payload first so an unsupported inner operator
        // leaves `out` untouched.
        let mut w = ByteWriter::new();
        w.dim(self.rows);
        w.dim(self.cols);
        w.u8(self.scheme.input_frac as u8);
        w.u8(self.scheme.weight_frac as u8);
        w.u8(self.scheme.output_frac as u8);
        w.str(&self.label);
        w.u64(self.mul_count);
        w.u8(u8::from(self.exploits_input_sparsity));
        match &self.exec {
            QExec::Integer(QuantKernel::Dense { weights }) => {
                w.u8(0);
                for &v in weights {
                    w.i16(v);
                }
            }
            QExec::Integer(QuantKernel::ColumnSparse {
                col_ptr,
                row_idx,
                weights,
            }) => {
                w.u8(1);
                w.u64(weights.len() as u64);
                // Row indices take 2 bytes whenever they fit (they always do
                // below 64Ki rows) — at u32 the indices would outweigh the
                // i16 weights 2:1, wrecking the compression the formats buy.
                let idx_width: u8 = if self.rows <= (u16::MAX as usize) + 1 {
                    2
                } else {
                    4
                };
                w.u8(idx_width);
                for &p in col_ptr {
                    w.u32(p as u32);
                }
                for &r in row_idx {
                    if idx_width == 2 {
                        w.u16(r as u16);
                    } else {
                        w.u32(r);
                    }
                }
                for &v in weights {
                    w.i16(v);
                }
            }
            QExec::Fallback(op) => {
                let inner = crate::snapshot::encode_tensor(op.as_ref()).ok()?;
                w.u8(2);
                w.u64(inner.len() as u64);
                w.bytes(&inner);
            }
        }
        match &self.bias_raw {
            Some(bias) => {
                w.u8(1);
                for &b in bias {
                    w.i32(b);
                }
            }
            None => w.u8(0),
        }
        out.bytes(w.as_slice());
        Some(crate::snapshot::FORMAT_QUANTIZED)
    }

    /// Decodes a [`FORMAT_QUANTIZED`](crate::snapshot::FORMAT_QUANTIZED)
    /// payload written by [`QuantizedLinear::snapshot_write`]. Every field is
    /// validated; corrupted payloads produce a typed
    /// [`SnapshotError`](crate::snapshot::SnapshotError), never a panic.
    pub(crate) fn snapshot_read(
        r: &mut crate::snapshot::ByteReader<'_>,
        codec: &crate::snapshot::SnapshotCodec,
    ) -> Result<QuantizedLinear, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let rows = r.dim("quantized rows")?;
        let cols = r.dim("quantized cols")?;
        let mut frac = [0u32; 3];
        for (name, slot) in ["input_frac", "weight_frac", "output_frac"]
            .iter()
            .zip(frac.iter_mut())
        {
            let v = u32::from(r.u8("quantized scheme")?);
            if !(1..=14).contains(&v) {
                return Err(SnapshotError::Malformed {
                    context: "quantized scheme",
                    reason: format!("{name} = {v} outside 1..=14"),
                });
            }
            *slot = v;
        }
        let scheme = QScheme::new(frac[0], frac[1], frac[2]);
        let label = r.str("quantized label")?;
        let mul_count = r.u64("quantized mul count")?;
        let exploits_input_sparsity = r.u8("quantized sparsity flag")? != 0;
        let exec_kind = r.u8("quantized exec kind")?;
        let (exec, stored_weights) = match exec_kind {
            0 => {
                let weights = r.i16_vec(rows * cols, "quantized dense weights")?;
                let stored = weights.len();
                (QExec::Integer(QuantKernel::Dense { weights }), stored)
            }
            1 => {
                let nnz = r.u64("quantized nnz")? as usize;
                let idx_width = r.u8("quantized index width")?;
                if idx_width != 2 && idx_width != 4 {
                    return Err(SnapshotError::Malformed {
                        context: "quantized index width",
                        reason: format!("width {idx_width} is not 2 or 4"),
                    });
                }
                // Guard before the three allocations below: the declared nnz
                // must fit in the bytes present (index + 2 per entry).
                let per_entry = u64::from(idx_width) + 2;
                if (nnz as u64).saturating_mul(per_entry) > r.remaining() as u64 {
                    return Err(SnapshotError::Truncated {
                        context: "quantized column-sparse kernel",
                        needed: (nnz as u64).saturating_mul(per_entry),
                        got: r.remaining() as u64,
                    });
                }
                let col_ptr = r.u32_vec(cols + 1, "quantized col_ptr")?;
                if col_ptr.first() != Some(&0)
                    || col_ptr.last() != Some(&nnz)
                    || col_ptr.windows(2).any(|w| w[0] > w[1])
                {
                    return Err(SnapshotError::Malformed {
                        context: "quantized col_ptr",
                        reason: "column pointers are not a monotone 0..=nnz walk".to_string(),
                    });
                }
                let row_idx_usize = if idx_width == 2 {
                    r.u16_vec(nnz, "quantized row_idx")?
                } else {
                    r.u32_vec(nnz, "quantized row_idx")?
                };
                if row_idx_usize.iter().any(|&ri| ri >= rows) {
                    return Err(SnapshotError::Malformed {
                        context: "quantized row_idx",
                        reason: format!("row index out of bounds for {rows} rows"),
                    });
                }
                let row_idx: Vec<u32> = row_idx_usize.into_iter().map(|v| v as u32).collect();
                let weights = r.i16_vec(nnz, "quantized sparse weights")?;
                (
                    QExec::Integer(QuantKernel::ColumnSparse {
                        col_ptr,
                        row_idx,
                        weights,
                    }),
                    nnz,
                )
            }
            2 => {
                let len = r.u64("quantized fallback length")? as usize;
                let mut inner = r.sub_reader(len, "quantized fallback record")?;
                let op = codec.decode_tensor(&mut inner)?;
                inner.expect_end("quantized fallback record")?;
                if op.out_dim() != rows || op.in_dim() != cols {
                    return Err(SnapshotError::Malformed {
                        context: "quantized fallback",
                        reason: format!(
                            "inner operator is {}x{}, wrapper declares {}x{}",
                            op.out_dim(),
                            op.in_dim(),
                            rows,
                            cols
                        ),
                    });
                }
                let stored = op.stored_weights();
                (QExec::Fallback(op), stored)
            }
            other => {
                return Err(SnapshotError::Malformed {
                    context: "quantized exec kind",
                    reason: format!("unknown kind {other}"),
                })
            }
        };
        let bias_raw = match r.u8("quantized bias flag")? {
            0 => None,
            1 => {
                let mut bias = Vec::with_capacity(rows.min(r.remaining() / 4));
                for _ in 0..rows {
                    bias.push(r.i32("quantized bias")?);
                }
                Some(bias)
            }
            other => {
                return Err(SnapshotError::Malformed {
                    context: "quantized bias flag",
                    reason: format!("flag {other} is not 0 or 1"),
                })
            }
        };
        Ok(QuantizedLinear {
            rows,
            cols,
            scheme,
            exec,
            bias_raw,
            label,
            stored_weights,
            mul_count,
            exploits_input_sparsity,
        })
    }

    /// The integer matvec into a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] if `x_raw.len() != in_dim()`.
    pub fn matvec_q(&self, x_raw: &[i16]) -> Result<(Vec<i16>, QKernelStats), FormatError> {
        let mut y = vec![0i16; self.rows];
        let stats = self.matvec_q_into(x_raw, &mut y)?;
        Ok((y, stats))
    }

    /// Batched integer product: `batch` row-major raw input vectors in,
    /// `batch × out_dim` raw outputs plus merged counters out. Row `i` of the
    /// output is exactly `matvec_q` of row `i` of the input, which is what
    /// makes batch-row sharding across the runtime's workers bit-for-bit
    /// equal to sequential execution.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] if
    /// `xs_raw.len() != batch * in_dim()`.
    pub fn matmul_q(
        &self,
        xs_raw: &[i16],
        batch: usize,
    ) -> Result<(Vec<i16>, QKernelStats), FormatError> {
        let mut out = vec![0i16; batch * self.rows];
        let stats = self.matmul_q_into(xs_raw, batch, &mut out, &mut QScratch::default())?;
        Ok((out, stats))
    }

    /// Batched integer product into a caller-provided output buffer with
    /// caller-owned scratch — the allocation-free path the runtime's worker
    /// shards drive. Row `i` of the output is exactly
    /// [`matvec_q`](Self::matvec_q) of input row `i`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] unless
    /// `xs_raw.len() == batch * in_dim()` and
    /// `out.len() == batch * out_dim()`.
    pub fn matmul_q_into(
        &self,
        xs_raw: &[i16],
        batch: usize,
        out: &mut [i16],
        scratch: &mut QScratch,
    ) -> Result<QKernelStats, FormatError> {
        check_dim("matmul_q", batch * self.cols, xs_raw.len())?;
        check_dim("matmul_q", batch * self.rows, out.len())?;
        let mut stats = QKernelStats::default();
        for i in 0..batch {
            let row_stats = self.matvec_q_scratch(
                &xs_raw[i * self.cols..(i + 1) * self.cols],
                &mut out[i * self.rows..(i + 1) * self.rows],
                scratch,
            )?;
            stats.merge(&row_stats);
        }
        Ok(stats)
    }
}

impl CompressedLinear for QuantizedLinear {
    fn out_dim(&self) -> usize {
        self.rows
    }

    fn in_dim(&self) -> usize {
        self.cols
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn stored_weights(&self) -> usize {
        self.stored_weights
    }

    fn mul_count(&self) -> u64 {
        self.mul_count
    }

    fn exploits_input_sparsity(&self) -> bool {
        self.exploits_input_sparsity
    }

    fn write_snapshot(&self, out: &mut crate::snapshot::ByteWriter) -> Option<u16> {
        self.snapshot_write(out)
    }

    /// The f32 surface: quantize the input, run the integer kernel,
    /// dequantize the output. Deterministic element-wise, so every batched /
    /// parallel path built on it inherits bit-for-bit reproducibility.
    fn matvec_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), FormatError> {
        self.matvec_scratch(x, y, &mut crate::Scratch::new())
    }

    /// Same quantize → integer kernel → dequantize path, staging the raw
    /// activation vectors and the kernel's accumulators in the arena's
    /// [`QScratch`] slot. The raw staging buffers are temporarily moved out
    /// of the slot so the kernel can borrow the remaining scratch fields.
    fn matvec_scratch(
        &self,
        x: &[f32],
        y: &mut [f32],
        scratch: &mut crate::Scratch,
    ) -> Result<(), FormatError> {
        check_dim("matvec_into", self.cols, x.len())?;
        check_dim("matvec_into", self.rows, y.len())?;
        let qs = scratch.slot::<QScratch>();
        let mut x_raw = std::mem::take(&mut qs.x_raw);
        let mut y_raw = std::mem::take(&mut qs.y_raw);
        x_raw.clear();
        x_raw.extend(
            x.iter()
                .map(|&v| quantize_to_raw(v, self.scheme.input_frac)),
        );
        y_raw.clear();
        y_raw.resize(self.rows, 0);
        let result = self.matvec_q_scratch(&x_raw, &mut y_raw, qs);
        if result.is_ok() {
            for (out, &raw) in y.iter_mut().zip(y_raw.iter()) {
                *out = dequantize_raw(raw, self.scheme.output_frac);
            }
        }
        qs.x_raw = x_raw;
        qs.y_raw = y_raw;
        result.map(|_| ())
    }

    /// Dequantized weights (plus the dequantized bias folded out — the dense
    /// expansion is of the *linear* operator only, bias excluded, like every
    /// other format).
    fn to_dense(&self) -> Matrix {
        match &self.exec {
            QExec::Integer(QuantKernel::Dense { weights }) => {
                let mut m = Matrix::zeros(self.rows, self.cols);
                for (out, &w) in m.as_mut_slice().iter_mut().zip(weights.iter()) {
                    *out = dequantize_raw(w, self.scheme.weight_frac);
                }
                m
            }
            QExec::Integer(QuantKernel::ColumnSparse {
                col_ptr,
                row_idx,
                weights,
            }) => {
                let mut m = Matrix::zeros(self.rows, self.cols);
                for c in 0..self.cols {
                    for i in col_ptr[c]..col_ptr[c + 1] {
                        m[(row_idx[i] as usize, c)] =
                            dequantize_raw(weights[i], self.scheme.weight_frac);
                    }
                }
                m
            }
            QExec::Fallback(op) => op.to_dense(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockPermDiagMatrix;
    use pd_tensor::init::{seeded_rng, sparse_activation_vector, xavier_uniform};

    fn pd_quantized(rows: usize, cols: usize, p: usize, seed: u64) -> QuantizedLinear {
        let op: Arc<dyn CompressedLinear> = Arc::new(BlockPermDiagMatrix::random(
            rows,
            cols,
            p,
            &mut seeded_rng(seed),
        ));
        QuantizedLinear::from_op(
            Arc::clone(&op),
            QScheme::calibrate(1.0, op.max_weight_abs(), 8.0),
        )
    }

    #[test]
    fn dense_kernel_matches_f32_reference_within_rounding() {
        let m = xavier_uniform(&mut seeded_rng(1), 12, 20);
        let op: Arc<dyn CompressedLinear> = Arc::new(m);
        let scheme = QScheme::calibrate(1.0, op.max_weight_abs(), 4.0);
        let q = QuantizedLinear::from_op(Arc::clone(&op), scheme);
        assert!(q.has_integer_kernel());
        let x: Vec<f32> = (0..20).map(|i| (i as f32 * 0.31).sin()).collect();
        let y = q.matvec(&x).unwrap();
        // Reference: dequantized weights × round-tripped input in f32.
        let x_rt: Vec<f32> = x
            .iter()
            .map(|&v| pd_tensor::fixed::roundtrip_f32(v, scheme.input_frac))
            .collect();
        let reference = q.to_dense().matvec(&x_rt);
        let tol = scheme.accumulator_epsilon() * 20.0 + scheme.output_epsilon();
        for (a, b) in y.iter().zip(reference.iter()) {
            assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
        }
    }

    #[test]
    fn column_sparse_kernel_skips_zero_inputs() {
        let q = pd_quantized(16, 24, 4, 2);
        let x = sparse_activation_vector(&mut seeded_rng(3), 24, 0.5);
        let x_raw = q.quantize_input(&x);
        let zero_inputs = x_raw.iter().filter(|&&r| r == 0).count();
        let (_, stats) = q.matvec_q(&x_raw).unwrap();
        // 4 stored weights per column; only non-zero columns issue products.
        assert_eq!(stats.products, ((24 - zero_inputs) * 4) as u64);
    }

    #[test]
    fn bias_is_added_in_the_quantized_domain() {
        let m = Matrix::identity(4);
        let op: Arc<dyn CompressedLinear> = Arc::new(m);
        let scheme = QScheme::new(12, 12, 12);
        let bias = [0.5f32, -0.25, 0.0, 1.0];
        let q = QuantizedLinear::from_op(op, scheme).with_bias(&bias);
        let y = q.matvec(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        for (i, &b) in bias.iter().enumerate() {
            assert!((y[i] - (1.0 + b)).abs() < 1e-3, "row {i}: {}", y[i]);
        }
    }

    #[test]
    fn bias_is_seeded_before_requantization() {
        // The pre-bias product sum (4.0) overflows the calibrated Q1.14
        // output range (±2), but the biased result (0.5) fits. Because the
        // bias seeds the 24-bit accumulator before requantization, the layer
        // is exact — requantizing first would clamp the sum to ~2.0, clip
        // the bias to −2.0, and return ~0.0.
        let m = Matrix::filled(1, 4, 1.0);
        let op: Arc<dyn CompressedLinear> = Arc::new(m);
        let q = QuantizedLinear::from_op(op, QScheme::calibrate(1.0, 1.0, 0.5)).with_bias(&[-3.5]);
        let (y_raw, stats) = q
            .matvec_q(&q.quantize_input(&[1.0, 1.0, 1.0, 1.0]))
            .unwrap();
        let y = q.dequantize_output(&y_raw);
        assert!((y[0] - 0.5).abs() < 1e-3, "expected 0.5, got {}", y[0]);
        assert!(!stats.saturated(), "the affine sum fits the formats");
    }

    #[test]
    fn fallback_rail_value_is_not_a_phantom_saturation() {
        // An output landing exactly on the i16 rail without clamping must
        // not count as a requantizer saturation (true-clamp detection, as in
        // the integer path). i16::MAX / 2^12 = 7.999755859375 is exactly
        // representable, and a 1×1 identity has no integer kernel path here:
        // force the fallback by wrapping a circulant-like f32-only operator.
        struct F32Only(Matrix);
        impl CompressedLinear for F32Only {
            fn out_dim(&self) -> usize {
                self.0.rows()
            }
            fn in_dim(&self) -> usize {
                self.0.cols()
            }
            fn label(&self) -> String {
                "f32-only".into()
            }
            fn stored_weights(&self) -> usize {
                self.0.len()
            }
            fn mul_count(&self) -> u64 {
                self.0.len() as u64
            }
            fn matvec_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), FormatError> {
                self.0.matvec_into(x, y)
            }
            fn to_dense(&self) -> Matrix {
                self.0.clone()
            }
        }
        let rail = i16::MAX as f32 / 4096.0;
        let op: Arc<dyn CompressedLinear> = Arc::new(F32Only(Matrix::filled(1, 1, rail)));
        let q = QuantizedLinear::from_op(op, QScheme::new(12, 12, 12));
        assert!(!q.has_integer_kernel());
        let (y_raw, stats) = q.matvec_q(&q.quantize_input(&[1.0])).unwrap();
        assert_eq!(y_raw[0], i16::MAX, "exactly on the rail");
        assert_eq!(stats.requantize_saturations, 0, "no clamp actually fired");
        // One ulp beyond the rail does clamp — and is counted.
        let (y2, stats2) = q.matvec_q(&[4097]).unwrap();
        assert_eq!(y2[0], i16::MAX);
        assert!(stats2.requantize_saturations > 0);
    }

    #[test]
    fn saturations_are_counted_not_silent() {
        // Q1.14 output cannot represent 4·(1·1) = 4: requantization clamps.
        let m = Matrix::filled(1, 4, 1.0);
        let op: Arc<dyn CompressedLinear> = Arc::new(m);
        let q = QuantizedLinear::from_op(op, QScheme::new(14, 14, 14));
        let x_raw = q.quantize_input(&[1.0, 1.0, 1.0, 1.0]);
        let (y, stats) = q.matvec_q(&x_raw).unwrap();
        assert!(stats.saturated());
        assert!(stats.requantize_saturations >= 1);
        assert_eq!(y[0], i16::MAX, "output pinned at the positive rail");
    }

    #[test]
    fn accumulator_saturation_is_observable() {
        // 512 weights of ~1.9 against inputs of 1.9 at frac 14: each rounded
        // product is ≈ 1.9² · 2^14 ≈ 59k; the 24-bit bound 2^23 ≈ 8.4M is hit
        // after ~142 products, so the accumulator must clamp (and count it).
        let m = Matrix::filled(1, 512, 1.9);
        let op: Arc<dyn CompressedLinear> = Arc::new(m);
        let q = QuantizedLinear::from_op(op, QScheme::new(14, 14, 1));
        let x_raw = q.quantize_input(&vec![1.9f32; 512]);
        let (_, stats) = q.matvec_q(&x_raw).unwrap();
        assert!(stats.accumulator_saturations > 0);
    }

    #[test]
    fn matmul_q_rows_equal_individual_matvecs() {
        let q = pd_quantized(8, 12, 4, 5);
        let xs_mat = xavier_uniform(&mut seeded_rng(6), 5, 12);
        let mut xs_raw = Vec::new();
        for i in 0..5 {
            xs_raw.extend(q.quantize_input(xs_mat.row(i)));
        }
        let (out, stats) = q.matmul_q(&xs_raw, 5).unwrap();
        let mut merged = QKernelStats::default();
        for i in 0..5 {
            let (row, row_stats) = q.matvec_q(&xs_raw[i * 12..(i + 1) * 12]).unwrap();
            assert_eq!(&out[i * 8..(i + 1) * 8], &row[..], "row {i}");
            merged.merge(&row_stats);
        }
        assert_eq!(stats, merged);
    }

    #[test]
    fn trait_surface_round_trips_through_the_integer_kernel() {
        let q = pd_quantized(16, 16, 4, 7);
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).cos()).collect();
        let via_trait = CompressedLinear::matvec(&q, &x).unwrap();
        let (raw, _) = q.matvec_q(&q.quantize_input(&x)).unwrap();
        assert_eq!(via_trait, q.dequantize_output(&raw), "one arithmetic path");
        assert!(q.label().starts_with("q16 "));
        assert_eq!(q.weight_storage_bits(), q.stored_weights() as u64 * 16);
    }

    #[test]
    fn dimension_mismatches_are_typed_errors() {
        let q = pd_quantized(8, 8, 4, 9);
        assert!(matches!(
            q.matvec_q(&[0i16; 7]),
            Err(FormatError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            q.matmul_q(&[0i16; 15], 2),
            Err(FormatError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            CompressedLinear::matvec(&q, &[0.0; 9]),
            Err(FormatError::DimensionMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "outside the supported")]
    fn scheme_rejects_zero_frac() {
        let _ = QScheme::new(0, 12, 12);
    }
}
