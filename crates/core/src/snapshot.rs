//! The binary model-snapshot format: a versioned, little-endian container of
//! checksummed, length-prefixed sections, plus the per-format tensor codec
//! that lets every [`CompressedLinear`] operator persist its *compressed*
//! representation (never a densified one).
//!
//! # On-disk layout (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"PDNNSNAP"
//! 8       2     u16    container version (currently 1)
//! 10      2     u16    model kind (0 = bare tensor, 1 = MLP, 2 = conv net,
//!                      3 = seq2seq — see the KIND_* constants)
//! 12      4     u32    section count
//! 16      ...   sections, back to back
//! ```
//!
//! Each section is
//!
//! ```text
//! u16    name length (≤ 255)
//! bytes  name (UTF-8)
//! u64    payload length
//! bytes  payload
//! u32    CRC-32 (IEEE) of the payload
//! ```
//!
//! All integers and floats are little-endian. Trailing bytes after the last
//! section are a parse error: a snapshot is exactly its header plus its
//! sections.
//!
//! # Tensor encoding
//!
//! A *tensor record* is a `u16` format code followed by a format-specific
//! payload. Formats opt in by overriding
//! [`CompressedLinear::write_snapshot`]; decoding goes through a
//! [`SnapshotCodec`] — a registry mapping format codes to decode functions,
//! so downstream crates (circulant, prune, quant) register their formats
//! without `permdnn-core` depending on them. [`SnapshotCodec::new`] knows the
//! codecs implemented in this crate: dense, permuted-diagonal, the quantized
//! wrapper and the lowered PD convolution operator.
//!
//! # Versioning rules
//!
//! * The container version covers the header + section framing. Readers
//!   reject versions they do not know ([`SnapshotError::UnsupportedVersion`])
//!   rather than guessing.
//! * Format codes are append-only: a code is never reused for a different
//!   payload layout. A new layout for an existing format gets a new code.
//! * Section names are the model loaders' contract; loaders must tolerate
//!   unknown *extra* sections (forward compatibility) but never missing ones.
//!
//! # Corruption safety
//!
//! [`Snapshot::parse`] and every decoder return a typed [`SnapshotError`] on
//! malformed input — truncation, bit flips (checksum mismatch), bad magic,
//! unknown versions or format codes, and oversized length fields. Declared
//! lengths are validated against the bytes actually present *before* any
//! allocation, so a hostile header cannot make `load` over-allocate.

use std::collections::BTreeMap;
use std::sync::Arc;

use pd_tensor::Matrix;

use crate::format::CompressedLinear;
use crate::lowering::PdConvMatrix;
use crate::qlinear::QuantizedLinear;
use crate::BlockPermDiagMatrix;

/// The 8-byte container magic.
pub const MAGIC: [u8; 8] = *b"PDNNSNAP";
/// The container version this build writes and reads.
pub const VERSION: u16 = 1;

/// Model kind: a bare tensor record (one section named `"tensor"`).
pub const KIND_TENSOR: u16 = 0;
/// Model kind: a frozen MLP classifier.
pub const KIND_MLP: u16 = 1;
/// Model kind: a frozen convolutional classifier.
pub const KIND_CONV: u16 = 2;
/// Model kind: a frozen sequence-to-sequence model.
pub const KIND_SEQ2SEQ: u16 = 3;
/// Model kind: a row-sharded bare tensor — a `"shard_index"` section (row
/// geometry + per-shard row ranges) followed by one `"shard.k"` section per
/// shard, each holding a complete tensor record for that contiguous row
/// slice. Written by [`shard_tensor_snapshot`]; host `k` extracts and decodes
/// only its own slice through [`extract_shard`], Kun-peng ordered-shard-file
/// style.
pub const KIND_SHARDED_TENSOR: u16 = 4;
/// Model kind: a block-streamed container — a `"block_index"` section (the
/// wrapped model kind plus the name/format/offset/length of every weight
/// tensor record) followed by the original model's sections, where each
/// weight record is an independently CRC-checked, offset-addressable *block*.
/// Written by [`block_stream_snapshot`]; [`read_block_index`] locates every
/// block without touching any block payload, and [`extract_block`] re-frames
/// one block as a standalone [`KIND_TENSOR`] snapshot — the layer-granular
/// paging form of the Kun-peng ordered-block database design.
pub const KIND_BLOCKED: u16 = 5;

/// Tensor format code: dense `pd_tensor::Matrix`.
pub const FORMAT_DENSE: u16 = 1;
/// Tensor format code: [`BlockPermDiagMatrix`].
pub const FORMAT_PERMUTED_DIAGONAL: u16 = 2;
/// Tensor format code: `permdnn_circulant::BlockCirculantMatrix`.
pub const FORMAT_CIRCULANT: u16 = 3;
/// Tensor format code: `permdnn_prune::CscMatrix`.
pub const FORMAT_CSC: u16 = 4;
/// Tensor format code: `permdnn_prune::eie_format::EieEncodedMatrix`.
pub const FORMAT_EIE: u16 = 5;
/// Tensor format code: `permdnn_quant::SharedWeightPdMatrix`.
pub const FORMAT_SHARED_PD: u16 = 6;
/// Tensor format code: [`QuantizedLinear`] (QScheme + raw `i16` weights, or a
/// nested tensor record for the dequantize-fallback execution).
pub const FORMAT_QUANTIZED: u16 = 7;
/// Tensor format code: [`PdConvMatrix`] (lowered permuted-diagonal conv).
pub const FORMAT_PD_CONV: u16 = 8;

/// Largest accepted section-name length.
const MAX_NAME_LEN: usize = 255;
/// Largest accepted logical dimension (rows, cols, channels...). Generous —
/// a 2^24 × 2^24 dense matrix could never fit in a real snapshot anyway —
/// while keeping every `rows * cols`-style product far from overflow.
const MAX_DIM: u64 = 1 << 24;

/// Everything that can go wrong reading (or writing) a snapshot. `load` paths
/// return this — never panic — for arbitrarily corrupted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The 8 bytes actually found (zero-padded if fewer were present).
        got: [u8; 8],
    },
    /// The container version is not one this build reads.
    UnsupportedVersion {
        /// Version found in the header.
        got: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The input ended before a declared field — truncation, or a length
    /// field larger than the bytes present (the over-allocation guard).
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Bytes (or elements) the field declared.
        needed: u64,
        /// Bytes actually available.
        got: u64,
    },
    /// A section's stored CRC-32 does not match its payload (bit corruption).
    ChecksumMismatch {
        /// Name of the damaged section.
        section: String,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A tensor record carries a format code no registered codec decodes.
    UnknownFormat {
        /// The unrecognised format code.
        code: u16,
    },
    /// A model loader did not find a section it requires.
    MissingSection {
        /// The absent section's name.
        name: String,
    },
    /// The operator has no snapshot codec (it cannot be saved).
    UnsupportedOperator {
        /// The operator's label.
        label: String,
    },
    /// Any other structural violation (inconsistent counts, out-of-range
    /// values, trailing garbage, invalid UTF-8...).
    Malformed {
        /// Where the violation was detected.
        context: &'static str,
        /// Human-readable description.
        reason: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic { got } => {
                write!(f, "bad snapshot magic {got:02x?} (expected {MAGIC:02x?})")
            }
            SnapshotError::UnsupportedVersion { got, supported } => {
                write!(f, "unsupported snapshot version {got} (supported: {supported})")
            }
            SnapshotError::Truncated {
                context,
                needed,
                got,
            } => write!(
                f,
                "truncated snapshot in {context}: needed {needed} bytes, {got} available"
            ),
            SnapshotError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in section {section:?}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            SnapshotError::UnknownFormat { code } => {
                write!(f, "unknown tensor format code {code}")
            }
            SnapshotError::MissingSection { name } => {
                write!(f, "required section {name:?} is missing")
            }
            SnapshotError::UnsupportedOperator { label } => {
                write!(f, "operator {label:?} has no snapshot codec")
            }
            SnapshotError::Malformed { context, reason } => {
                write!(f, "malformed snapshot in {context}: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the per-section
/// payload checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Little-endian byte sink used by every encoder.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds [`MAX_DIM`] — the same bound
    /// [`ByteReader::dim`] enforces, so anything written is always readable
    /// back. No in-memory operator in this workspace has a dimension
    /// anywhere near 2²⁴.
    pub fn dim(&mut self, v: usize) {
        assert!(
            v as u64 <= MAX_DIM,
            "dimension {v} exceeds the snapshot encoding's maximum {MAX_DIM}"
        );
        self.u32(v as u32);
    }

    /// Appends a little-endian `i16`.
    pub fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (no length prefix).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u16` length prefix.
    ///
    /// # Panics
    ///
    /// Panics if the string is longer than 65535 bytes.
    pub fn str(&mut self, s: &str) {
        self.u16(u16::try_from(s.len()).expect("string fits in a u16 length"));
        self.bytes(s.as_bytes());
    }

    /// Appends each `f32` of a slice (no length prefix).
    pub fn f32_slice(&mut self, vs: &[f32]) {
        for &v in vs {
            self.f32(v);
        }
    }
}

/// Bounds-checked little-endian reader over a snapshot (or section) payload.
/// Every read returns [`SnapshotError::Truncated`] instead of panicking when
/// the input runs out.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether everything has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(SnapshotError::Truncated {
                context,
                needed: n as u64,
                got: self.remaining() as u64,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, SnapshotError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a dimension written by [`ByteWriter::dim`], bounded by
    /// [`MAX_DIM`] so downstream size products cannot overflow.
    pub fn dim(&mut self, context: &'static str) -> Result<usize, SnapshotError> {
        let v = self.u32(context)?;
        if u64::from(v) > MAX_DIM {
            return Err(SnapshotError::Malformed {
                context,
                reason: format!("dimension {v} exceeds the supported maximum {MAX_DIM}"),
            });
        }
        Ok(v as usize)
    }

    /// Reads a little-endian `i16`.
    pub fn i16(&mut self, context: &'static str) -> Result<i16, SnapshotError> {
        let b = self.take(2, context)?;
        Ok(i16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self, context: &'static str) -> Result<i32, SnapshotError> {
        let b = self.take(4, context)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `f32`.
    pub fn f32(&mut self, context: &'static str) -> Result<f32, SnapshotError> {
        let b = self.take(4, context)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<String, SnapshotError> {
        let len = self.u16(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed {
            context,
            reason: "string is not valid UTF-8".to_string(),
        })
    }

    /// Reads exactly `count` `f32`s. The byte requirement is checked against
    /// the remaining input *before* allocating.
    pub fn f32_vec(
        &mut self,
        count: usize,
        context: &'static str,
    ) -> Result<Vec<f32>, SnapshotError> {
        let bytes = self.take(
            count.checked_mul(4).ok_or(SnapshotError::Malformed {
                context,
                reason: "element count overflows".to_string(),
            })?,
            context,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    /// Reads exactly `count` `i16`s, bounds-checked before allocation.
    pub fn i16_vec(
        &mut self,
        count: usize,
        context: &'static str,
    ) -> Result<Vec<i16>, SnapshotError> {
        let bytes = self.take(
            count.checked_mul(2).ok_or(SnapshotError::Malformed {
                context,
                reason: "element count overflows".to_string(),
            })?,
            context,
        )?;
        Ok(bytes
            .chunks_exact(2)
            .map(|b| i16::from_le_bytes([b[0], b[1]]))
            .collect())
    }

    /// Reads exactly `count` `u16`s as `usize`s, bounds-checked before
    /// allocation.
    pub fn u16_vec(
        &mut self,
        count: usize,
        context: &'static str,
    ) -> Result<Vec<usize>, SnapshotError> {
        let bytes = self.take(
            count.checked_mul(2).ok_or(SnapshotError::Malformed {
                context,
                reason: "element count overflows".to_string(),
            })?,
            context,
        )?;
        Ok(bytes
            .chunks_exact(2)
            .map(|b| u16::from_le_bytes([b[0], b[1]]) as usize)
            .collect())
    }

    /// Reads exactly `count` `u32`s as `usize`s, bounds-checked before
    /// allocation.
    pub fn u32_vec(
        &mut self,
        count: usize,
        context: &'static str,
    ) -> Result<Vec<usize>, SnapshotError> {
        let bytes = self.take(
            count.checked_mul(4).ok_or(SnapshotError::Malformed {
                context,
                reason: "element count overflows".to_string(),
            })?,
            context,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize)
            .collect())
    }

    /// Splits off the next `len` bytes as a nested reader (used for embedded
    /// tensor records).
    pub fn sub_reader(
        &mut self,
        len: usize,
        context: &'static str,
    ) -> Result<ByteReader<'a>, SnapshotError> {
        Ok(ByteReader::new(self.take(len, context)?))
    }

    /// Fails unless the reader is fully consumed — decoders call this so
    /// trailing garbage inside a section is a hard error, not silence.
    pub fn expect_end(&self, context: &'static str) -> Result<(), SnapshotError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed {
                context,
                reason: format!("{} trailing bytes after the payload", self.remaining()),
            })
        }
    }
}

/// Builds a snapshot: a model kind plus named, checksummed sections in
/// insertion order.
#[derive(Debug, Clone)]
pub struct SnapshotBuilder {
    kind: u16,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty snapshot of the given model kind.
    pub fn new(kind: u16) -> Self {
        SnapshotBuilder {
            kind,
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or longer than 255 bytes (writer bug, not
    /// data corruption).
    pub fn section(&mut self, name: &str, payload: Vec<u8>) -> &mut Self {
        assert!(
            !name.is_empty() && name.len() <= MAX_NAME_LEN,
            "section name must be 1..=255 bytes"
        );
        self.sections.push((name.to_string(), payload));
        self
    }

    /// Serialises the container.
    pub fn finish(self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(&MAGIC);
        w.u16(VERSION);
        w.u16(self.kind);
        w.u32(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            w.u16(name.len() as u16);
            w.bytes(name.as_bytes());
            w.u64(payload.len() as u64);
            w.bytes(payload);
            w.u32(crc32(payload));
        }
        w.into_vec()
    }
}

/// A parsed snapshot: the model kind and the validated sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    kind: u16,
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Parses and fully validates a snapshot container: magic, version,
    /// section framing and every per-section checksum. Corrupted input of any
    /// shape produces a typed [`SnapshotError`]; nothing panics, and declared
    /// lengths are checked against the available bytes before allocation.
    pub fn parse(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(MAGIC.len(), "magic").map_err(|_| {
            let mut got = [0u8; 8];
            got[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
            SnapshotError::BadMagic { got }
        })?;
        if magic != MAGIC {
            let mut got = [0u8; 8];
            got.copy_from_slice(magic);
            return Err(SnapshotError::BadMagic { got });
        }
        let version = r.u16("header version")?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                got: version,
                supported: VERSION,
            });
        }
        let kind = r.u16("header kind")?;
        let count = r.u32("header section count")? as usize;
        // Each section needs at least name-len + payload-len + crc = 14 bytes;
        // reject impossible counts before reserving anything.
        if count > r.remaining() / 14 {
            return Err(SnapshotError::Truncated {
                context: "section table",
                needed: (count as u64) * 14,
                got: r.remaining() as u64,
            });
        }
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = r.u16("section name length")? as usize;
            if name_len == 0 || name_len > MAX_NAME_LEN {
                return Err(SnapshotError::Malformed {
                    context: "section name length",
                    reason: format!("length {name_len} outside 1..=255"),
                });
            }
            let name_bytes = r.take(name_len, "section name")?;
            let name =
                String::from_utf8(name_bytes.to_vec()).map_err(|_| SnapshotError::Malformed {
                    context: "section name",
                    reason: "not valid UTF-8".to_string(),
                })?;
            let payload_len = r.u64("section payload length")?;
            // The over-allocation guard: the declared length must fit in the
            // bytes that are actually present (leaving room for the CRC).
            if payload_len.saturating_add(4) > r.remaining() as u64 {
                return Err(SnapshotError::Truncated {
                    context: "section payload",
                    needed: payload_len.saturating_add(4),
                    got: r.remaining() as u64,
                });
            }
            let payload = r.take(payload_len as usize, "section payload")?.to_vec();
            let stored = r.u32("section checksum")?;
            let computed = crc32(&payload);
            if stored != computed {
                return Err(SnapshotError::ChecksumMismatch {
                    section: name,
                    stored,
                    computed,
                });
            }
            sections.push((name, payload));
        }
        r.expect_end("container")?;
        Ok(Snapshot { kind, sections })
    }

    /// The model kind from the header.
    pub fn kind(&self) -> u16 {
        self.kind
    }

    /// The sections, in file order.
    pub fn sections(&self) -> &[(String, Vec<u8>)] {
        &self.sections
    }

    /// The payload of the named section.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::MissingSection`] if no section has that name.
    pub fn section(&self, name: &str) -> Result<&[u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| SnapshotError::MissingSection {
                name: name.to_string(),
            })
    }
}

/// A decode function: consumes one tensor payload (the bytes after the format
/// code) and rebuilds the operator. The codec is passed back in so wrapper
/// formats ([`QuantizedLinear`]'s fallback execution) can decode nested
/// records.
pub type DecodeFn =
    fn(&mut ByteReader<'_>, &SnapshotCodec) -> Result<Arc<dyn CompressedLinear>, SnapshotError>;

/// The tensor-format registry: format code → decoder. [`SnapshotCodec::new`]
/// registers the formats implemented in `permdnn-core`; downstream crates add
/// theirs with [`SnapshotCodec::register`] (see `permdnn_nn::snapshot::codec`
/// for the full workspace registry).
#[derive(Clone, Default)]
pub struct SnapshotCodec {
    decoders: BTreeMap<u16, DecodeFn>,
}

impl std::fmt::Debug for SnapshotCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCodec")
            .field("formats", &self.decoders.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl SnapshotCodec {
    /// A codec knowing the formats owned by `permdnn-core`: dense,
    /// permuted-diagonal, the quantized wrapper and the lowered PD conv.
    pub fn new() -> Self {
        let mut codec = SnapshotCodec {
            decoders: BTreeMap::new(),
        };
        codec.register(FORMAT_DENSE, decode_dense);
        codec.register(FORMAT_PERMUTED_DIAGONAL, decode_permuted_diagonal);
        codec.register(FORMAT_QUANTIZED, decode_quantized);
        codec.register(FORMAT_PD_CONV, decode_pd_conv);
        codec
    }

    /// Registers (or replaces) the decoder for a format code.
    pub fn register(&mut self, code: u16, decode: DecodeFn) -> &mut Self {
        self.decoders.insert(code, decode);
        self
    }

    /// The registered format codes, ascending.
    pub fn formats(&self) -> Vec<u16> {
        self.decoders.keys().copied().collect()
    }

    /// Decodes one tensor record (format code + payload) from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::UnknownFormat`] for unregistered codes and
    /// the decoder's error for malformed payloads.
    pub fn decode_tensor(
        &self,
        r: &mut ByteReader<'_>,
    ) -> Result<Arc<dyn CompressedLinear>, SnapshotError> {
        let code = r.u16("tensor format code")?;
        let decode = self
            .decoders
            .get(&code)
            .ok_or(SnapshotError::UnknownFormat { code })?;
        decode(r, self)
    }
}

/// Encodes one operator as a tensor record (`u16` format code + payload).
///
/// # Errors
///
/// Returns [`SnapshotError::UnsupportedOperator`] if the operator does not
/// implement [`CompressedLinear::write_snapshot`].
pub fn encode_tensor(op: &dyn CompressedLinear) -> Result<Vec<u8>, SnapshotError> {
    let mut payload = ByteWriter::new();
    match op.write_snapshot(&mut payload) {
        Some(code) => {
            let mut w = ByteWriter::new();
            w.u16(code);
            w.bytes(payload.as_slice());
            Ok(w.into_vec())
        }
        None => Err(SnapshotError::UnsupportedOperator { label: op.label() }),
    }
}

/// Saves one bare operator as a standalone snapshot ([`KIND_TENSOR`], a
/// single `"tensor"` section) — the golden-fixture form.
///
/// # Errors
///
/// Returns [`SnapshotError::UnsupportedOperator`] if the operator has no
/// codec.
pub fn save_tensor(op: &dyn CompressedLinear) -> Result<Vec<u8>, SnapshotError> {
    let mut b = SnapshotBuilder::new(KIND_TENSOR);
    b.section("tensor", encode_tensor(op)?);
    Ok(b.finish())
}

/// Loads a standalone operator snapshot written by [`save_tensor`].
///
/// # Errors
///
/// Returns a [`SnapshotError`] for any corruption, wrong kind, or
/// unregistered format.
pub fn load_tensor(
    bytes: &[u8],
    codec: &SnapshotCodec,
) -> Result<Arc<dyn CompressedLinear>, SnapshotError> {
    let snap = Snapshot::parse(bytes)?;
    if snap.kind() != KIND_TENSOR {
        return Err(SnapshotError::Malformed {
            context: "tensor snapshot",
            reason: format!("kind {} is not a bare tensor", snap.kind()),
        });
    }
    let mut r = ByteReader::new(snap.section("tensor")?);
    let op = codec.decode_tensor(&mut r)?;
    r.expect_end("tensor section")?;
    Ok(op)
}

// ---------------------------------------------------------------------------
// Row-sharded tensor snapshots (tensor parallelism, Kun-peng shard files).
// ---------------------------------------------------------------------------

/// The parsed `"shard_index"` section of a [`KIND_SHARDED_TENSOR`] snapshot:
/// whole-tensor geometry plus the contiguous output-row range each shard owns.
///
/// On disk the section is `rows, cols, p, shard count (u32), then per shard
/// (row_start, row_end)` — every scalar a [`ByteWriter::dim`]-bounded `u32`.
/// The ranges are validated on read: contiguous, non-empty, starting at 0 and
/// covering exactly `0..rows`, with interior boundaries on multiples of `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIndex {
    /// Output rows of the whole tensor.
    pub rows: usize,
    /// Input columns (every shard shares the full input width).
    pub cols: usize,
    /// Row granularity of the split: shard boundaries fall only on multiples
    /// of `p` (the PD block size; 1 for dense), so no shard ever owns a
    /// fractional block.
    pub p: usize,
    /// The contiguous row range of each shard, in shard order.
    pub shard_rows: Vec<std::ops::Range<usize>>,
}

impl ShardIndex {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shard_rows.len()
    }
}

/// Name of the index section in a [`KIND_SHARDED_TENSOR`] container.
pub const SHARD_INDEX_SECTION: &str = "shard_index";

/// Name of shard `k`'s section.
pub fn shard_section_name(k: usize) -> String {
    format!("shard.{k}")
}

/// Splits a bare-tensor snapshot ([`KIND_TENSOR`]) into a
/// [`KIND_SHARDED_TENSOR`] container of `shards` contiguous row slices, each
/// stored as a complete, independently decodable tensor record. The split is
/// block-row granular ([`crate::format::block_row_ranges`]): dense tensors
/// split at any row, permuted-diagonal tensors only at `p`-row block
/// boundaries — a fractional block would break the one-nonzero-per-column-
/// per-block invariant (the phantom-row MAC bug class).
///
/// Concatenating the decoded shards row-wise reproduces the whole tensor
/// bit-for-bit (`tests/cluster.rs` locks this in), which is what makes
/// row-sharded cluster serving bit-identical to single-host serving.
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] if the input is corrupt, is not a bare
/// tensor, holds a format with no row-slicing support (only dense and
/// permuted-diagonal tensors shard), or has fewer splittable block rows than
/// `shards`.
pub fn shard_tensor_snapshot(bytes: &[u8], shards: usize) -> Result<Vec<u8>, SnapshotError> {
    if shards == 0 {
        return Err(SnapshotError::Malformed {
            context: "shard count",
            reason: "cannot split a tensor into 0 shards".to_string(),
        });
    }
    let snap = Snapshot::parse(bytes)?;
    if snap.kind() != KIND_TENSOR {
        return Err(SnapshotError::Malformed {
            context: "shard source",
            reason: format!("kind {} is not a bare tensor", snap.kind()),
        });
    }
    let mut r = ByteReader::new(snap.section("tensor")?);
    let code = r.u16("tensor format code")?;
    let (rows, cols, p, slices): (usize, usize, usize, Vec<Box<dyn CompressedLinear>>) = match code
    {
        FORMAT_DENSE => {
            let rows = r.dim("dense rows")?;
            let cols = r.dim("dense cols")?;
            let data = r.f32_vec(rows * cols, "dense values")?;
            r.expect_end("dense tensor")?;
            slice_check(rows, 1, shards)?;
            let slices = crate::format::block_row_ranges(rows, 1, shards)
                .into_iter()
                .map(|range| {
                    let m = Matrix::from_vec(
                        range.len(),
                        cols,
                        data[range.start * cols..range.end * cols].to_vec(),
                    )
                    .expect("slice length matches its shape");
                    Box::new(m) as Box<dyn CompressedLinear>
                })
                .collect();
            (rows, cols, 1, slices)
        }
        FORMAT_PERMUTED_DIAGONAL => {
            let m = read_pd_matrix(&mut r)?;
            r.expect_end("pd tensor")?;
            let (p, cols) = (m.p(), m.cols());
            let block_cols = cols.div_ceil(p);
            slice_check(m.rows(), p, shards)?;
            // Perms and values are block-row major (block l = br·block_cols +
            // bc, value l·p + c), so a block-row slice is two contiguous
            // subslices — no per-entry reindexing.
            let slices = crate::format::block_row_ranges(m.rows(), p, shards)
                .into_iter()
                .map(|range| {
                    let (br0, br1) = (range.start / p, range.end.div_ceil(p));
                    let slice = BlockPermDiagMatrix::new(
                        range.len(),
                        cols,
                        p,
                        m.perms()[br0 * block_cols..br1 * block_cols].to_vec(),
                        m.values()[br0 * block_cols * p..br1 * block_cols * p].to_vec(),
                    )
                    .expect("block-row slices preserve every PD invariant");
                    Box::new(slice) as Box<dyn CompressedLinear>
                })
                .collect();
            (m.rows(), cols, p, slices)
        }
        other => {
            return Err(SnapshotError::UnsupportedOperator {
                label: format!("row sharding of tensor format code {other}"),
            })
        }
    };

    let mut index = ByteWriter::new();
    index.dim(rows);
    index.dim(cols);
    index.dim(p);
    index.u32(slices.len() as u32);
    let mut start = 0usize;
    for s in &slices {
        index.dim(start);
        index.dim(start + s.out_dim());
        start += s.out_dim();
    }

    let mut b = SnapshotBuilder::new(KIND_SHARDED_TENSOR);
    b.section(SHARD_INDEX_SECTION, index.into_vec());
    for (k, s) in slices.iter().enumerate() {
        b.section(&shard_section_name(k), encode_tensor(s.as_ref())?);
    }
    Ok(b.finish())
}

/// Rejects splits finer than the tensor's block-row count.
fn slice_check(rows: usize, p: usize, shards: usize) -> Result<(), SnapshotError> {
    let block_rows = rows.div_ceil(p.max(1));
    if shards > block_rows {
        return Err(SnapshotError::Malformed {
            context: "shard count",
            reason: format!("{shards} shards exceed the tensor's {block_rows} block rows"),
        });
    }
    Ok(())
}

/// Parses and validates the `"shard_index"` section of a
/// [`KIND_SHARDED_TENSOR`] snapshot.
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] for corruption, a non-sharded kind, or
/// an index whose ranges do not tile `0..rows` contiguously on `p`-row
/// boundaries with one `"shard.k"` section per range.
pub fn read_shard_index(bytes: &[u8]) -> Result<ShardIndex, SnapshotError> {
    let snap = Snapshot::parse(bytes)?;
    if snap.kind() != KIND_SHARDED_TENSOR {
        return Err(SnapshotError::Malformed {
            context: "shard index",
            reason: format!("kind {} is not a sharded tensor", snap.kind()),
        });
    }
    let mut r = ByteReader::new(snap.section(SHARD_INDEX_SECTION)?);
    let rows = r.dim("shard index rows")?;
    let cols = r.dim("shard index cols")?;
    let p = r.dim("shard index block size")?;
    if p == 0 {
        return Err(SnapshotError::Malformed {
            context: "shard index block size",
            reason: "p must be non-zero".to_string(),
        });
    }
    let count = r.u32("shard index count")? as usize;
    // Each range costs 8 bytes; reject impossible counts before allocating.
    if count > r.remaining() / 8 {
        return Err(SnapshotError::Truncated {
            context: "shard index ranges",
            needed: (count as u64) * 8,
            got: r.remaining() as u64,
        });
    }
    let mut shard_rows = Vec::with_capacity(count);
    let mut next = 0usize;
    for k in 0..count {
        let start = r.dim("shard range start")?;
        let end = r.dim("shard range end")?;
        let interior = k + 1 < count;
        if start != next || end <= start || (interior && end % p != 0) {
            return Err(SnapshotError::Malformed {
                context: "shard index ranges",
                reason: format!("range {k} ({start}..{end}) does not tile 0..{rows} on p={p}"),
            });
        }
        snap.section(&shard_section_name(k))?;
        next = end;
        shard_rows.push(start..end);
    }
    r.expect_end("shard index")?;
    if next != rows {
        return Err(SnapshotError::Malformed {
            context: "shard index ranges",
            reason: format!("ranges cover 0..{next}, tensor has {rows} rows"),
        });
    }
    Ok(ShardIndex {
        rows,
        cols,
        p,
        shard_rows,
    })
}

/// Extracts shard `k` of a [`KIND_SHARDED_TENSOR`] snapshot as a standalone
/// [`KIND_TENSOR`] snapshot — directly loadable by [`load_tensor`] (and
/// therefore by any `ModelRegistry` loader), without decoding any other
/// shard's bytes. This is the per-host load path: host `k` holds only its own
/// slice in memory.
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] for corruption, a non-sharded kind, or
/// a shard number the index does not list.
pub fn extract_shard(bytes: &[u8], k: usize) -> Result<Vec<u8>, SnapshotError> {
    let index = read_shard_index(bytes)?;
    if k >= index.shards() {
        return Err(SnapshotError::MissingSection {
            name: shard_section_name(k),
        });
    }
    let snap = Snapshot::parse(bytes)?;
    let record = snap.section(&shard_section_name(k))?;
    let mut b = SnapshotBuilder::new(KIND_TENSOR);
    b.section("tensor", record.to_vec());
    Ok(b.finish())
}

// ---------------------------------------------------------------------------
// Block-streamed snapshots (layer-granular paging, Kun-peng ordered blocks).
// ---------------------------------------------------------------------------

/// Name of the index section in a [`KIND_BLOCKED`] container. Always the
/// first section, so a reader can locate every block before touching any
/// block payload.
pub const BLOCK_INDEX_SECTION: &str = "block_index";

/// One entry of a [`BlockIndex`]: a weight tensor record addressable (and
/// CRC-checkable) without parsing the rest of the container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEntry {
    /// Section name of the block (e.g. `"layer0.weights"` or `"tensor"`).
    pub name: String,
    /// Tensor format code of the record (`FORMAT_*`) — the record's own
    /// leading `u16`, surfaced here so tooling can dispatch or report without
    /// reading the block.
    pub kind: u16,
    /// Absolute file offset of the record payload.
    pub offset: u64,
    /// Record payload length in bytes — the block's cost against a paging
    /// registry's residency budget.
    pub len: u64,
}

/// The parsed `"block_index"` section of a [`KIND_BLOCKED`] container.
///
/// On disk the section is `inner kind (u16), block count (u32), then per
/// block: name (u16 length + bytes), format code (u16), offset (u64), length
/// (u64)`. Reading validates every entry against the container's actual
/// section framing — name, offset and length must all agree — so a tampered
/// index (offsets past EOF, overlapping or re-ordered blocks) is a typed
/// error even though block payloads are never read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockIndex {
    /// The model kind the container wraps ([`KIND_MLP`], [`KIND_TENSOR`],
    /// ...), so loaders can dispatch without decoding anything.
    pub inner_kind: u16,
    /// The blocks, in file order.
    pub blocks: Vec<BlockEntry>,
}

impl BlockIndex {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the container holds no blocks (never true for an index written
    /// by [`block_stream_snapshot`]).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Position of the block whose section is named `name`.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.name == name)
    }

    /// Total block payload bytes — what full residency costs a paging cache.
    pub fn total_block_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.len).sum()
    }

    /// The largest single block payload, in bytes. The paging registry's
    /// peak-residency bound is `budget + max_block_bytes`.
    pub fn max_block_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.len).max().unwrap_or(0)
    }
}

/// One section frame located by [`walk_frames`]: its name plus the payload's
/// position inside the file. The payload has *not* been read or CRC-checked.
struct Frame {
    name: String,
    offset: usize,
    len: usize,
}

/// Walks a container's section frames without reading (or CRC-checking) any
/// payload — O(section count) work, never O(file). This is what lets the
/// block index stay readable, and individual blocks extractable, while some
/// *other* block's payload is corrupt: only the bytes actually consumed are
/// validated.
fn walk_frames(bytes: &[u8], expect_kind: u16) -> Result<Vec<Frame>, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(MAGIC.len(), "magic").map_err(|_| {
        let mut got = [0u8; 8];
        got[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
        SnapshotError::BadMagic { got }
    })?;
    if magic != MAGIC {
        let mut got = [0u8; 8];
        got.copy_from_slice(magic);
        return Err(SnapshotError::BadMagic { got });
    }
    let version = r.u16("header version")?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            got: version,
            supported: VERSION,
        });
    }
    let kind = r.u16("header kind")?;
    if kind != expect_kind {
        return Err(SnapshotError::Malformed {
            context: "blocked container",
            reason: format!("kind {kind} is not a block-streamed snapshot"),
        });
    }
    let count = r.u32("header section count")? as usize;
    if count > r.remaining() / 14 {
        return Err(SnapshotError::Truncated {
            context: "section table",
            needed: (count as u64) * 14,
            got: r.remaining() as u64,
        });
    }
    let mut frames = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = r.u16("section name length")? as usize;
        if name_len == 0 || name_len > MAX_NAME_LEN {
            return Err(SnapshotError::Malformed {
                context: "section name length",
                reason: format!("length {name_len} outside 1..=255"),
            });
        }
        let name_bytes = r.take(name_len, "section name")?;
        let name =
            String::from_utf8(name_bytes.to_vec()).map_err(|_| SnapshotError::Malformed {
                context: "section name",
                reason: "not valid UTF-8".to_string(),
            })?;
        let payload_len = r.u64("section payload length")?;
        if payload_len.saturating_add(4) > r.remaining() as u64 {
            return Err(SnapshotError::Truncated {
                context: "section payload",
                needed: payload_len.saturating_add(4),
                got: r.remaining() as u64,
            });
        }
        let offset = bytes.len() - r.remaining();
        r.take(payload_len as usize, "section payload")?;
        r.take(4, "section checksum")?;
        frames.push(Frame {
            name,
            offset,
            len: payload_len as usize,
        });
    }
    r.expect_end("container")?;
    Ok(frames)
}

/// CRC-checks one walked frame's payload against the stored checksum that
/// follows it (whose presence [`walk_frames`] already bounds-checked).
fn verify_frame_crc(bytes: &[u8], frame: &Frame) -> Result<(), SnapshotError> {
    let payload = &bytes[frame.offset..frame.offset + frame.len];
    let crc = &bytes[frame.offset + frame.len..frame.offset + frame.len + 4];
    let stored = u32::from_le_bytes([crc[0], crc[1], crc[2], crc[3]]);
    let computed = crc32(payload);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch {
            section: frame.name.clone(),
            stored,
            computed,
        });
    }
    Ok(())
}

/// The container kind of a snapshot, read from the header alone — no
/// section is CRC-checked or even framed. `None` if the bytes are too short
/// or do not carry the magic/version, in which case full parsing would fail
/// with a typed error anyway. This is the cheap dispatch a registry needs to
/// decide *how* to load bytes before validating them.
pub fn peek_kind(bytes: &[u8]) -> Option<u16> {
    if bytes.len() < 16 || bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    if u16::from_le_bytes([bytes[8], bytes[9]]) != VERSION {
        return None;
    }
    Some(u16::from_le_bytes([bytes[10], bytes[11]]))
}

/// The default rule for which sections of a model snapshot become pageable
/// blocks: the bare-tensor `"tensor"` section and every `"*.weights"`
/// layer/gate record. Everything else (layer graphs, bias vectors, quant
/// schemes) is small metadata that stays inline and loads eagerly.
pub fn is_weight_block_section(name: &str) -> bool {
    name == "tensor" || name.ends_with(".weights")
}

/// Converts a model snapshot ([`KIND_TENSOR`], [`KIND_MLP`], ...) into a
/// [`KIND_BLOCKED`] container using the [`is_weight_block_section`]
/// convention. Every original section is carried over unchanged, in order; a
/// `"block_index"` section is prepended describing each weight record's
/// name, format code, file offset and length. Because the container framing
/// is deterministic, the offsets are computed exactly at build time and
/// validated against the real framing on every read.
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] if the input is corrupt, already
/// blocked, has no weight sections, or holds a weight section too short to
/// carry a format code.
pub fn block_stream_snapshot(bytes: &[u8]) -> Result<Vec<u8>, SnapshotError> {
    block_stream_snapshot_with(bytes, &is_weight_block_section)
}

/// [`block_stream_snapshot`] with an explicit rule for which sections page.
///
/// # Errors
///
/// As [`block_stream_snapshot`].
pub fn block_stream_snapshot_with(
    bytes: &[u8],
    is_block: &dyn Fn(&str) -> bool,
) -> Result<Vec<u8>, SnapshotError> {
    let snap = Snapshot::parse(bytes)?;
    if snap.kind() == KIND_BLOCKED {
        return Err(SnapshotError::Malformed {
            context: "block stream source",
            reason: "snapshot is already block-streamed".to_string(),
        });
    }
    let sections = snap.sections();
    let block_names: Vec<&str> = sections
        .iter()
        .filter(|(name, _)| is_block(name))
        .map(|(name, _)| name.as_str())
        .collect();
    if block_names.is_empty() {
        return Err(SnapshotError::Malformed {
            context: "block stream source",
            reason: "snapshot has no weight sections to block".to_string(),
        });
    }

    // The index is section 0, so its own size shifts every offset after it;
    // its size depends only on the block count and name lengths, so compute
    // it first, then lay the file out section by section. Each section frame
    // costs `2 + name + 8` bytes of prefix and `4` of trailing CRC (see
    // `SnapshotBuilder::finish`).
    let index_size: usize = 2
        + 4
        + block_names
            .iter()
            .map(|n| 2 + n.len() + 2 + 8 + 8)
            .sum::<usize>();
    let mut offset = 16; // magic + version + kind + section count
    offset += 2 + BLOCK_INDEX_SECTION.len() + 8 + index_size + 4;
    let mut entries: Vec<BlockEntry> = Vec::with_capacity(block_names.len());
    for (name, payload) in sections {
        offset += 2 + name.len() + 8;
        if is_block(name) {
            let mut r = ByteReader::new(payload);
            let kind = r.u16("block tensor record")?;
            entries.push(BlockEntry {
                name: name.clone(),
                kind,
                offset: offset as u64,
                len: payload.len() as u64,
            });
        }
        offset += payload.len() + 4;
    }

    let mut index = ByteWriter::new();
    index.u16(snap.kind());
    index.u32(entries.len() as u32);
    for e in &entries {
        index.str(&e.name);
        index.u16(e.kind);
        index.u64(e.offset);
        index.u64(e.len);
    }
    let index_payload = index.into_vec();
    debug_assert_eq!(index_payload.len(), index_size, "index layout accounting");

    let mut b = SnapshotBuilder::new(KIND_BLOCKED);
    b.section(BLOCK_INDEX_SECTION, index_payload);
    for (name, payload) in sections {
        b.section(name, payload.clone());
    }
    Ok(b.finish())
}

/// Parses and validates the `"block_index"` section of a [`KIND_BLOCKED`]
/// container *without touching any block payload*: only the section framing
/// is walked (O(section count)) and only the index's own CRC is checked.
/// Every index entry must name a real section frame, in file order, with the
/// exact offset and length the framing declares — so truncated files,
/// offsets past EOF, overlapping blocks and re-ordered entries are all typed
/// errors before a single block byte is read.
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] for corruption anywhere in the header,
/// framing or index.
pub fn read_block_index(bytes: &[u8]) -> Result<BlockIndex, SnapshotError> {
    let frames = walk_frames(bytes, KIND_BLOCKED)?;
    let first = match frames.first() {
        Some(f) if f.name == BLOCK_INDEX_SECTION => f,
        _ => {
            return Err(SnapshotError::MissingSection {
                name: BLOCK_INDEX_SECTION.to_string(),
            })
        }
    };
    verify_frame_crc(bytes, first)?;
    let mut r = ByteReader::new(&bytes[first.offset..first.offset + first.len]);
    let inner_kind = r.u16("block index inner kind")?;
    let count = r.u32("block index count")? as usize;
    // Each entry costs at least 2 (name length) + 1 (name) + 2 + 8 + 8 bytes;
    // reject impossible counts before reserving anything.
    if count > r.remaining() / 21 {
        return Err(SnapshotError::Truncated {
            context: "block index entries",
            needed: (count as u64) * 21,
            got: r.remaining() as u64,
        });
    }
    let mut blocks = Vec::with_capacity(count);
    // frames[0] is the index itself; entries must claim later frames in
    // strictly ascending file order, so `cursor` only moves forward — two
    // entries can never alias one frame, and fabricated offsets (past EOF,
    // overlapping, pointing into the index) cannot match the real framing.
    let mut cursor = 1;
    for k in 0..count {
        let name = r.str("block name")?;
        let kind = r.u16("block format code")?;
        let offset = r.u64("block offset")?;
        let len = r.u64("block length")?;
        let frame = loop {
            match frames.get(cursor) {
                Some(f) => {
                    cursor += 1;
                    if f.name == name {
                        break f;
                    }
                }
                None => {
                    return Err(SnapshotError::Malformed {
                        context: "block index entries",
                        reason: format!("block {k} ({name:?}) names no section frame"),
                    })
                }
            }
        };
        if offset != frame.offset as u64 || len != frame.len as u64 {
            return Err(SnapshotError::Malformed {
                context: "block index entries",
                reason: format!(
                    "block {k} ({name:?}) claims {len} bytes at offset {offset}, \
                     the section framing has {} at {}",
                    frame.len, frame.offset
                ),
            });
        }
        blocks.push(BlockEntry {
            name,
            kind,
            offset,
            len,
        });
    }
    r.expect_end("block index")?;
    Ok(BlockIndex { inner_kind, blocks })
}

/// Extracts block `k` of a [`KIND_BLOCKED`] container as a standalone
/// [`KIND_TENSOR`] snapshot — directly decodable by [`load_tensor`] — after
/// CRC-checking *only that block's* payload. This is the registry's fault
/// path: paging one layer in reads (and validates) just that layer's bytes,
/// the same re-framing trick as [`extract_shard`].
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] for corruption in the header, framing,
/// index, or the requested block itself, and
/// [`SnapshotError::MissingSection`] for a block number the index does not
/// list.
pub fn extract_block(bytes: &[u8], k: usize) -> Result<Vec<u8>, SnapshotError> {
    let index = read_block_index(bytes)?;
    let Some(entry) = index.blocks.get(k) else {
        return Err(SnapshotError::MissingSection {
            name: format!("block {k}"),
        });
    };
    let frame = Frame {
        name: entry.name.clone(),
        offset: entry.offset as usize,
        len: entry.len as usize,
    };
    verify_frame_crc(bytes, &frame)?;
    let mut b = SnapshotBuilder::new(KIND_TENSOR);
    b.section(
        "tensor",
        bytes[frame.offset..frame.offset + frame.len].to_vec(),
    );
    Ok(b.finish())
}

/// Reads one *metadata* section (an MLP's `"graph"`, a bias vector, ...) of a
/// [`KIND_BLOCKED`] container, CRC-checking only that section — the eager
/// half of a paged load, which must not pay for (or depend on the integrity
/// of) any block payload.
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] for corruption in the header, framing or
/// the requested section, and [`SnapshotError::MissingSection`] if no section
/// has that name.
pub fn read_blocked_section(bytes: &[u8], name: &str) -> Result<Vec<u8>, SnapshotError> {
    let frames = walk_frames(bytes, KIND_BLOCKED)?;
    let frame =
        frames
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| SnapshotError::MissingSection {
                name: name.to_string(),
            })?;
    verify_frame_crc(bytes, frame)?;
    Ok(bytes[frame.offset..frame.offset + frame.len].to_vec())
}

// ---------------------------------------------------------------------------
// Core-owned format codecs.
// ---------------------------------------------------------------------------

/// Encodes a dense matrix: rows, cols, row-major `f32` values.
pub(crate) fn write_dense(m: &Matrix, w: &mut ByteWriter) {
    w.dim(m.rows());
    w.dim(m.cols());
    w.f32_slice(m.as_slice());
}

fn decode_dense(
    r: &mut ByteReader<'_>,
    _codec: &SnapshotCodec,
) -> Result<Arc<dyn CompressedLinear>, SnapshotError> {
    let rows = r.dim("dense rows")?;
    let cols = r.dim("dense cols")?;
    let data = r.f32_vec(rows * cols, "dense values")?;
    let m = Matrix::from_vec(rows, cols, data).map_err(|e| SnapshotError::Malformed {
        context: "dense tensor",
        reason: e.to_string(),
    })?;
    Ok(Arc::new(m))
}

/// Encodes a permuted-diagonal matrix: rows, cols, p, per-block permutation
/// parameters (`u16` each — one per `p × p` block, the near-zero index
/// overhead the format is prized for), stored values — exactly the
/// compressed representation, no densification.
pub(crate) fn write_permuted_diagonal(m: &BlockPermDiagMatrix, w: &mut ByteWriter) {
    w.dim(m.rows());
    w.dim(m.cols());
    w.dim(m.p());
    for &k in m.perms() {
        w.u16(k as u16);
    }
    w.f32_slice(m.values());
}

/// Whether a PD block size fits the snapshot encoding's `u16` permutation
/// parameters (`k < p ≤ 65536`). Block sizes are compression ratios — single
/// to double digits in practice — so this never bites outside fuzzers;
/// writers return `None` (no codec) for larger `p` rather than corrupting.
pub fn pd_perms_encodable(p: usize) -> bool {
    p <= (u16::MAX as usize) + 1
}

fn decode_permuted_diagonal(
    r: &mut ByteReader<'_>,
    _codec: &SnapshotCodec,
) -> Result<Arc<dyn CompressedLinear>, SnapshotError> {
    let m = read_pd_matrix(r)?;
    Ok(Arc::new(m))
}

/// Decodes the permuted-diagonal payload into the concrete matrix type
/// (shared with the shared-codebook format in `permdnn-quant`).
pub fn read_pd_matrix(r: &mut ByteReader<'_>) -> Result<BlockPermDiagMatrix, SnapshotError> {
    let rows = r.dim("pd rows")?;
    let cols = r.dim("pd cols")?;
    let p = r.dim("pd block size")?;
    if p == 0 {
        return Err(SnapshotError::Malformed {
            context: "pd block size",
            reason: "p must be non-zero".to_string(),
        });
    }
    let nblocks = rows.div_ceil(p) * cols.div_ceil(p);
    let perms = r.u16_vec(nblocks, "pd permutations")?;
    let values = r.f32_vec(nblocks * p, "pd values")?;
    BlockPermDiagMatrix::new(rows, cols, p, perms, values).map_err(|e| SnapshotError::Malformed {
        context: "pd tensor",
        reason: e.to_string(),
    })
}

/// Encodes the permuted-diagonal matrix fields without constructing a trait
/// object (helper for the shared-codebook format).
pub fn write_pd_matrix(m: &BlockPermDiagMatrix, w: &mut ByteWriter) {
    write_permuted_diagonal(m, w);
}

fn decode_quantized(
    r: &mut ByteReader<'_>,
    codec: &SnapshotCodec,
) -> Result<Arc<dyn CompressedLinear>, SnapshotError> {
    Ok(Arc::new(QuantizedLinear::snapshot_read(r, codec)?))
}

/// Encodes a lowered permuted-diagonal convolution operator: channel
/// geometry, kernel window, block size, per-block permutations and the stored
/// kernels.
pub(crate) fn write_pd_conv(m: &PdConvMatrix, w: &mut ByteWriter) {
    let t = m.tensor();
    w.dim(t.c_out());
    w.dim(t.c_in());
    w.dim(t.kh());
    w.dim(t.kw());
    w.dim(t.p());
    for &k in t.perms() {
        w.u16(k as u16);
    }
    w.f32_slice(t.kernels());
}

fn decode_pd_conv(
    r: &mut ByteReader<'_>,
    _codec: &SnapshotCodec,
) -> Result<Arc<dyn CompressedLinear>, SnapshotError> {
    let c_out = r.dim("pd-conv c_out")?;
    let c_in = r.dim("pd-conv c_in")?;
    let kh = r.dim("pd-conv kh")?;
    let kw = r.dim("pd-conv kw")?;
    let p = r.dim("pd-conv block size")?;
    if p == 0 || kh == 0 || kw == 0 {
        return Err(SnapshotError::Malformed {
            context: "pd-conv geometry",
            reason: "block size and kernel window must be non-zero".to_string(),
        });
    }
    let nblocks = c_out.div_ceil(p) * c_in.div_ceil(p);
    let perms = r.u16_vec(nblocks, "pd-conv permutations")?;
    if let Some(&bad) = perms.iter().find(|&&k| k >= p) {
        return Err(SnapshotError::Malformed {
            context: "pd-conv permutations",
            reason: format!("permutation {bad} out of range for p = {p}"),
        });
    }
    // 4-factor product of attacker-controlled dims: MAX_DIM bounds each
    // factor but not the product, so multiply checked (2^24 × 2^24 × 2^24
    // would wrap usize before f32_vec's own byte guard could see it).
    let kernel_count = nblocks
        .checked_mul(p)
        .and_then(|n| n.checked_mul(kh))
        .and_then(|n| n.checked_mul(kw))
        .ok_or(SnapshotError::Malformed {
            context: "pd-conv kernels",
            reason: "kernel element count overflows".to_string(),
        })?;
    let kernels = r.f32_vec(kernel_count, "pd-conv kernels")?;
    let mut tensor = crate::BlockPermDiagTensor4::zeros(
        c_out,
        c_in,
        kh,
        kw,
        p,
        crate::PermutationIndexing::Natural,
    )
    .map_err(|e| SnapshotError::Malformed {
        context: "pd-conv tensor",
        reason: e.to_string(),
    })?;
    tensor.set_perms(&perms);
    tensor.kernels_mut().copy_from_slice(&kernels);
    Ok(Arc::new(PdConvMatrix::new(tensor)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_tensor::init::{seeded_rng, xavier_uniform};

    #[test]
    fn container_round_trips() {
        let mut b = SnapshotBuilder::new(KIND_MLP);
        b.section("graph", vec![1, 2, 3]);
        b.section("layer0.weights", vec![9; 100]);
        let bytes = b.finish();
        let snap = Snapshot::parse(&bytes).unwrap();
        assert_eq!(snap.kind(), KIND_MLP);
        assert_eq!(snap.section("graph").unwrap(), &[1, 2, 3]);
        assert_eq!(snap.section("layer0.weights").unwrap().len(), 100);
        assert!(matches!(
            snap.section("absent"),
            Err(SnapshotError::MissingSection { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        assert!(matches!(
            Snapshot::parse(b"NOTASNAP\x01\x00\x00\x00\x00\x00\x00\x00"),
            Err(SnapshotError::BadMagic { .. })
        ));
        assert!(matches!(
            Snapshot::parse(b"PD"),
            Err(SnapshotError::BadMagic { .. })
        ));
        let mut bytes = SnapshotBuilder::new(0).finish();
        bytes[8] = 0xff; // version low byte
        assert!(matches!(
            Snapshot::parse(&bytes),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut b = SnapshotBuilder::new(0);
        b.section("tensor", vec![0xaa; 64]);
        let mut bytes = b.finish();
        let flip = bytes.len() - 20; // inside the payload
        bytes[flip] ^= 0x01;
        assert!(matches!(
            Snapshot::parse(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_section_length_is_rejected_before_allocation() {
        let mut b = SnapshotBuilder::new(0);
        b.section("tensor", vec![1, 2, 3, 4]);
        let mut bytes = b.finish();
        // Overwrite the payload-length field (after name-len + name) with u64::MAX.
        let len_off = 16 + 2 + "tensor".len();
        bytes[len_off..len_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        match Snapshot::parse(&bytes) {
            Err(SnapshotError::Truncated { needed, .. }) => assert!(needed > 1 << 40),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let mut b = SnapshotBuilder::new(KIND_TENSOR);
        b.section("tensor", encode_tensor(&Matrix::identity(4)).unwrap());
        let bytes = b.finish();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::parse(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
        assert!(Snapshot::parse(&bytes).is_ok());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = SnapshotBuilder::new(0).finish();
        bytes.push(0);
        assert!(matches!(
            Snapshot::parse(&bytes),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn dense_tensor_round_trips_bit_exactly() {
        let m = xavier_uniform(&mut seeded_rng(1), 6, 9);
        let bytes = save_tensor(&m).unwrap();
        let codec = SnapshotCodec::new();
        let back = load_tensor(&bytes, &codec).unwrap();
        assert_eq!(back.to_dense(), m);
        assert_eq!(back.label(), "dense");
        // Canonical encoding: re-saving is byte-identical.
        assert_eq!(save_tensor(back.as_ref()).unwrap(), bytes);
    }

    #[test]
    fn pd_tensor_round_trips_without_densifying() {
        let m = BlockPermDiagMatrix::random(12, 16, 4, &mut seeded_rng(2));
        let bytes = save_tensor(&m).unwrap();
        // Stored payload is ~stored_weights * 4 bytes, far below dense size.
        assert!(bytes.len() < 12 * 16 * 4 / 2);
        let back = load_tensor(&bytes, &SnapshotCodec::new()).unwrap();
        assert_eq!(back.stored_weights(), m.stored_weights());
        assert_eq!(back.to_dense(), m.to_dense());
        assert_eq!(save_tensor(back.as_ref()).unwrap(), bytes);
    }

    #[test]
    fn unknown_format_code_is_reported() {
        let mut w = ByteWriter::new();
        w.u16(0x7777);
        let mut b = SnapshotBuilder::new(KIND_TENSOR);
        b.section("tensor", w.into_vec());
        let bytes = b.finish();
        assert!(matches!(
            load_tensor(&bytes, &SnapshotCodec::new()),
            Err(SnapshotError::UnknownFormat { code: 0x7777 })
        ));
    }

    #[test]
    fn quantized_tensor_round_trips_bit_exactly() {
        use crate::format::CompressedLinear as _;
        use crate::qlinear::QScheme;
        let op: Arc<dyn CompressedLinear> =
            Arc::new(BlockPermDiagMatrix::random(8, 12, 4, &mut seeded_rng(3)));
        let q = QuantizedLinear::from_op(Arc::clone(&op), QScheme::new(12, 12, 11))
            .with_bias(&[0.25; 8]);
        let bytes = save_tensor(&q).unwrap();
        let back = load_tensor(&bytes, &SnapshotCodec::new()).unwrap();
        let x: Vec<f32> = (0..12).map(|i| (i as f32 * 0.37).sin()).collect();
        assert_eq!(back.matvec(&x).unwrap(), q.matvec(&x).unwrap());
        assert_eq!(back.label(), q.label());
        assert_eq!(save_tensor(back.as_ref()).unwrap(), bytes);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sharded_pd_tensor_concatenates_back_bit_exactly() {
        let m = BlockPermDiagMatrix::random(24, 16, 4, &mut seeded_rng(7));
        let whole = save_tensor(&m).unwrap();
        let sharded = shard_tensor_snapshot(&whole, 3).unwrap();
        let index = read_shard_index(&sharded).unwrap();
        assert_eq!((index.rows, index.cols, index.p), (24, 16, 4));
        assert_eq!(index.shards(), 3);
        let codec = SnapshotCodec::new();
        let mut dense_rows: Vec<f32> = Vec::new();
        for (k, range) in index.shard_rows.iter().enumerate() {
            let piece = extract_shard(&sharded, k).unwrap();
            let op = load_tensor(&piece, &codec).unwrap();
            assert_eq!(op.label(), "permuted-diagonal (p=4)");
            assert_eq!(op.out_dim(), range.len());
            assert_eq!(op.in_dim(), 16);
            dense_rows.extend_from_slice(op.to_dense().as_slice());
        }
        assert_eq!(dense_rows, m.to_dense().as_slice());
    }

    #[test]
    fn sharded_dense_tensor_concatenates_back_bit_exactly() {
        let m = xavier_uniform(&mut seeded_rng(8), 10, 6);
        let whole = save_tensor(&m).unwrap();
        let sharded = shard_tensor_snapshot(&whole, 4).unwrap();
        let index = read_shard_index(&sharded).unwrap();
        assert_eq!((index.rows, index.cols, index.p), (10, 6, 1));
        let codec = SnapshotCodec::new();
        let mut dense_rows: Vec<f32> = Vec::new();
        for k in 0..index.shards() {
            let piece = extract_shard(&sharded, k).unwrap();
            dense_rows
                .extend_from_slice(load_tensor(&piece, &codec).unwrap().to_dense().as_slice());
        }
        assert_eq!(dense_rows, m.as_slice());
    }

    #[test]
    fn shard_split_rejects_bad_inputs() {
        let m = BlockPermDiagMatrix::random(8, 8, 4, &mut seeded_rng(9));
        let whole = save_tensor(&m).unwrap();
        // 0 shards and more shards than block rows (8 rows / p=4 → 2) fail.
        assert!(matches!(
            shard_tensor_snapshot(&whole, 0),
            Err(SnapshotError::Malformed { .. })
        ));
        assert!(matches!(
            shard_tensor_snapshot(&whole, 3),
            Err(SnapshotError::Malformed { .. })
        ));
        // A non-tensor container is not shardable.
        let mlp = SnapshotBuilder::new(KIND_MLP).finish();
        assert!(matches!(
            shard_tensor_snapshot(&mlp, 2),
            Err(SnapshotError::Malformed { .. })
        ));
        // Formats without a row-slicing path report UnsupportedOperator.
        use crate::qlinear::QScheme;
        let op: Arc<dyn CompressedLinear> =
            Arc::new(BlockPermDiagMatrix::random(8, 8, 4, &mut seeded_rng(9)));
        let q = QuantizedLinear::from_op(op, QScheme::new(12, 12, 11));
        let qbytes = save_tensor(&q).unwrap();
        assert!(matches!(
            shard_tensor_snapshot(&qbytes, 2),
            Err(SnapshotError::UnsupportedOperator { .. })
        ));
    }

    #[test]
    fn shard_extraction_rejects_out_of_range_and_wrong_kind() {
        let m = BlockPermDiagMatrix::random(16, 8, 4, &mut seeded_rng(10));
        let whole = save_tensor(&m).unwrap();
        let sharded = shard_tensor_snapshot(&whole, 2).unwrap();
        assert!(matches!(
            extract_shard(&sharded, 2),
            Err(SnapshotError::MissingSection { .. })
        ));
        // A plain tensor container has no shard index.
        assert!(read_shard_index(&whole).is_err());
        assert!(extract_shard(&whole, 0).is_err());
    }

    #[test]
    fn shard_index_validation_catches_tampering() {
        let m = BlockPermDiagMatrix::random(16, 8, 4, &mut seeded_rng(11));
        let whole = save_tensor(&m).unwrap();
        let sharded = shard_tensor_snapshot(&whole, 2).unwrap();
        let snap = Snapshot::parse(&sharded).unwrap();

        // Rebuild the container with a gap in the row ranges: not a tiling.
        let mut index = ByteWriter::new();
        index.dim(16);
        index.dim(8);
        index.dim(4);
        index.u32(2);
        index.dim(0);
        index.dim(8);
        index.dim(12); // hole: 8..12 unowned
        index.dim(16);
        let mut b = SnapshotBuilder::new(KIND_SHARDED_TENSOR);
        b.section(SHARD_INDEX_SECTION, index.into_vec());
        for k in 0..2 {
            b.section(
                &shard_section_name(k),
                snap.section(&shard_section_name(k)).unwrap().to_vec(),
            );
        }
        assert!(matches!(
            read_shard_index(&b.finish()),
            Err(SnapshotError::Malformed { .. })
        ));

        // An index claiming more ranges than its bytes hold is truncation.
        let mut short = ByteWriter::new();
        short.dim(16);
        short.dim(8);
        short.dim(4);
        short.u32(1000);
        let mut b = SnapshotBuilder::new(KIND_SHARDED_TENSOR);
        b.section(SHARD_INDEX_SECTION, short.into_vec());
        assert!(matches!(
            read_shard_index(&b.finish()),
            Err(SnapshotError::Truncated { .. })
        ));

        // A range whose shard section is missing is caught.
        let mut index = ByteWriter::new();
        index.dim(16);
        index.dim(8);
        index.dim(4);
        index.u32(1);
        index.dim(0);
        index.dim(16);
        let mut b = SnapshotBuilder::new(KIND_SHARDED_TENSOR);
        b.section(SHARD_INDEX_SECTION, index.into_vec());
        assert!(matches!(
            read_shard_index(&b.finish()),
            Err(SnapshotError::MissingSection { .. })
        ));
    }

    /// A synthetic multi-section model container: metadata + two weight
    /// records, the shape `block_stream_snapshot` sees from an MLP save.
    fn model_like_snapshot() -> (Vec<u8>, BlockPermDiagMatrix, BlockPermDiagMatrix) {
        let w0 = BlockPermDiagMatrix::random(16, 8, 4, &mut seeded_rng(21));
        let w1 = BlockPermDiagMatrix::random(8, 16, 4, &mut seeded_rng(22));
        let mut b = SnapshotBuilder::new(KIND_MLP);
        b.section("graph", vec![1, 2, 3, 4]);
        b.section("layer0.weights", encode_tensor(&w0).unwrap());
        b.section("layer0.bias", vec![0; 12]);
        b.section("layer1.weights", encode_tensor(&w1).unwrap());
        b.section("layer1.bias", vec![0; 8]);
        (b.finish(), w0, w1)
    }

    #[test]
    fn block_index_round_trips_and_matches_real_framing() {
        let (bytes, w0, w1) = model_like_snapshot();
        let blocked = block_stream_snapshot(&bytes).unwrap();
        let index = read_block_index(&blocked).unwrap();
        assert_eq!(index.inner_kind, KIND_MLP);
        assert_eq!(index.len(), 2);
        assert_eq!(index.blocks[0].name, "layer0.weights");
        assert_eq!(index.blocks[1].name, "layer1.weights");
        assert!(index
            .blocks
            .iter()
            .all(|e| e.kind == FORMAT_PERMUTED_DIAGONAL));
        assert_eq!(index.position("layer1.weights"), Some(1));
        assert_eq!(
            index.max_block_bytes(),
            index.blocks[0].len.max(index.blocks[1].len)
        );
        // The blocked container is still a fully valid v1 snapshot: every
        // original section survives with its payload intact.
        let snap = Snapshot::parse(&blocked).unwrap();
        assert_eq!(snap.kind(), KIND_BLOCKED);
        assert_eq!(snap.section("graph").unwrap(), &[1, 2, 3, 4]);
        assert_eq!(
            read_blocked_section(&blocked, "layer1.bias").unwrap(),
            vec![0; 8]
        );
        // Each block decodes standalone and matvecs like the original.
        let codec = SnapshotCodec::new();
        for (k, w) in [(0usize, &w0), (1, &w1)] {
            let op = load_tensor(&extract_block(&blocked, k).unwrap(), &codec).unwrap();
            let x: Vec<f32> = (0..w.cols()).map(|i| (i as f32 * 0.3).cos()).collect();
            assert_eq!(op.matvec(&x).unwrap(), w.matvec(&x));
        }
    }

    #[test]
    fn bare_tensor_blocks_into_a_single_block() {
        let m = BlockPermDiagMatrix::random(16, 16, 4, &mut seeded_rng(23));
        let blocked = block_stream_snapshot(&save_tensor(&m).unwrap()).unwrap();
        let index = read_block_index(&blocked).unwrap();
        assert_eq!((index.inner_kind, index.len()), (KIND_TENSOR, 1));
        assert_eq!(index.blocks[0].name, "tensor");
        assert_eq!(index.total_block_bytes(), index.blocks[0].len);
        let op = load_tensor(&extract_block(&blocked, 0).unwrap(), &SnapshotCodec::new()).unwrap();
        let x: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
        assert_eq!(op.matvec(&x).unwrap(), m.matvec(&x));
    }

    #[test]
    fn block_stream_rejects_bad_sources() {
        // No weight sections.
        let mut b = SnapshotBuilder::new(KIND_MLP);
        b.section("graph", vec![1]);
        assert!(matches!(
            block_stream_snapshot(&b.finish()),
            Err(SnapshotError::Malformed { .. })
        ));
        // Already blocked.
        let m = BlockPermDiagMatrix::random(8, 8, 4, &mut seeded_rng(24));
        let blocked = block_stream_snapshot(&save_tensor(&m).unwrap()).unwrap();
        assert!(matches!(
            block_stream_snapshot(&blocked),
            Err(SnapshotError::Malformed { .. })
        ));
        // Garbage in, typed error out.
        assert!(matches!(
            block_stream_snapshot(b"junk"),
            Err(SnapshotError::BadMagic { .. })
        ));
    }

    #[test]
    fn corrupt_block_payload_is_isolated_to_that_block() {
        let (bytes, _, _) = model_like_snapshot();
        let mut blocked = block_stream_snapshot(&bytes).unwrap();
        let index = read_block_index(&blocked).unwrap();
        // Flip a byte inside block 1's payload: the index and block 0 stay
        // readable, only block 1 fails its checksum.
        let hit = index.blocks[1].offset as usize + 3;
        blocked[hit] ^= 0xFF;
        assert_eq!(read_block_index(&blocked).unwrap(), index);
        assert!(extract_block(&blocked, 0).is_ok());
        assert!(matches!(
            extract_block(&blocked, 1),
            Err(SnapshotError::ChecksumMismatch { ref section, .. }) if section == "layer1.weights"
        ));
        // The eager whole-container parse still catches it, of course.
        assert!(Snapshot::parse(&blocked).is_err());
    }

    #[test]
    fn tampered_block_index_is_a_typed_error() {
        let (bytes, _, _) = model_like_snapshot();
        let blocked = block_stream_snapshot(&bytes).unwrap();
        let snap = Snapshot::parse(&blocked).unwrap();
        let rebuild = |index_payload: Vec<u8>| {
            let mut b = SnapshotBuilder::new(KIND_BLOCKED);
            b.section(BLOCK_INDEX_SECTION, index_payload);
            for (name, payload) in snap.sections().iter().skip(1) {
                b.section(name, payload.clone());
            }
            b.finish()
        };
        let entry = |w: &mut ByteWriter, name: &str, kind: u16, offset: u64, len: u64| {
            w.str(name);
            w.u16(kind);
            w.u64(offset);
            w.u64(len);
        };
        let real = read_block_index(&blocked).unwrap();
        let (e0, e1) = (&real.blocks[0], &real.blocks[1]);

        // Offset past EOF.
        let mut w = ByteWriter::new();
        w.u16(KIND_MLP);
        w.u32(1);
        entry(&mut w, &e0.name, e0.kind, 1 << 40, e0.len);
        assert!(matches!(
            read_block_index(&rebuild(w.into_vec())),
            Err(SnapshotError::Malformed { .. })
        ));

        // Overlapping blocks: both entries claim block 0's bytes.
        let mut w = ByteWriter::new();
        w.u16(KIND_MLP);
        w.u32(2);
        entry(&mut w, &e0.name, e0.kind, e0.offset, e0.len);
        entry(&mut w, &e1.name, e1.kind, e0.offset, e0.len);
        assert!(matches!(
            read_block_index(&rebuild(w.into_vec())),
            Err(SnapshotError::Malformed { .. })
        ));

        // A count larger than the index bytes could hold is truncation.
        let mut w = ByteWriter::new();
        w.u16(KIND_MLP);
        w.u32(1_000_000);
        assert!(matches!(
            read_block_index(&rebuild(w.into_vec())),
            Err(SnapshotError::Truncated { .. })
        ));

        // A length shorter than the real section is caught by the framing
        // cross-check, not silently accepted.
        let mut w = ByteWriter::new();
        w.u16(KIND_MLP);
        w.u32(1);
        entry(&mut w, &e0.name, e0.kind, e0.offset, e0.len - 1);
        assert!(matches!(
            read_block_index(&rebuild(w.into_vec())),
            Err(SnapshotError::Malformed { .. })
        ));

        // Flipping a byte of the stored index payload itself fails its CRC.
        let mut corrupt = blocked.clone();
        let index_payload_at = 16 + 2 + BLOCK_INDEX_SECTION.len() + 8;
        corrupt[index_payload_at + 1] ^= 0x55;
        assert!(matches!(
            read_block_index(&corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_blocked_container_never_panics() {
        let (bytes, _, _) = model_like_snapshot();
        let blocked = block_stream_snapshot(&bytes).unwrap();
        for len in 0..blocked.len() {
            let truncated = &blocked[..len];
            assert!(
                read_block_index(truncated).is_err(),
                "index read of {len}-byte prefix must fail"
            );
            assert!(
                extract_block(truncated, 0).is_err(),
                "block extract of {len}-byte prefix must fail"
            );
        }
    }
}
