//! Activation-sparsity measurement (Table VII) and synthetic sparse-activation workloads.
//!
//! The PERMDNN engine's zero-skipping dataflow makes its cycle count proportional to the
//! number of *non-zero* input activations. Table VII characterises the benchmark layers by
//! their measured activation sparsity (e.g. Alex-FC6: 35.8 % non-zero); this module
//! provides the measurement helpers and generators used to reproduce those workloads.

use rand::Rng;

/// Summary of the sparsity of an activation vector (or a batch of them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityProfile {
    /// Total number of activation values observed.
    pub total: usize,
    /// Number of non-zero activations.
    pub nonzeros: usize,
}

impl SparsityProfile {
    /// Measures a single activation vector.
    pub fn measure(activations: &[f32]) -> Self {
        SparsityProfile {
            total: activations.len(),
            nonzeros: activations.iter().filter(|&&v| v != 0.0).count(),
        }
    }

    /// Measures a batch of activation vectors, accumulating counts.
    pub fn measure_batch<'a>(batches: impl IntoIterator<Item = &'a [f32]>) -> Self {
        let mut total = 0;
        let mut nonzeros = 0;
        for b in batches {
            total += b.len();
            nonzeros += b.iter().filter(|&&v| v != 0.0).count();
        }
        SparsityProfile { total, nonzeros }
    }

    /// Fraction of activations that are non-zero ("activation sparsity ratio" in the
    /// paper's Table VII — note the paper's footnote: lower means more sparsity).
    pub fn nonzero_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.nonzeros as f64 / self.total as f64
        }
    }

    /// Fraction of activations that are zero.
    pub fn zero_fraction(&self) -> f64 {
        1.0 - self.nonzero_fraction()
    }
}

/// Generates an activation vector with an *exact* number of non-zeros equal to
/// `round(len · nonzero_fraction)`, with the non-zero positions chosen uniformly at
/// random and values uniform in `[0.1, 1.0]` (post-ReLU activations are non-negative).
///
/// Unlike [`pd_tensor::init::sparse_activation_vector`], which is Bernoulli per element,
/// this generator hits the target sparsity exactly, which keeps the simulator's cycle
/// counts deterministic for a given workload definition.
pub fn exact_sparsity_vector(rng: &mut impl Rng, len: usize, nonzero_fraction: f64) -> Vec<f32> {
    let target = ((len as f64) * nonzero_fraction.clamp(0.0, 1.0)).round() as usize;
    let mut v = vec![0.0f32; len];
    // Partial Fisher-Yates: choose `target` distinct positions.
    let mut positions: Vec<usize> = (0..len).collect();
    for i in 0..target.min(len) {
        let j = rng.gen_range(i..len);
        positions.swap(i, j);
        v[positions[i]] = rng.gen_range(0.1..=1.0);
    }
    v
}

/// Applies ReLU and reports the resulting sparsity profile — how the dynamic sparsity the
/// hardware exploits actually arises in a network.
pub fn relu_sparsity(pre_activations: &[f32]) -> (Vec<f32>, SparsityProfile) {
    let post: Vec<f32> = pre_activations.iter().map(|&v| v.max(0.0)).collect();
    let profile = SparsityProfile::measure(&post);
    (post, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_tensor::init::seeded_rng;

    #[test]
    fn measure_counts_nonzeros() {
        let p = SparsityProfile::measure(&[0.0, 1.0, 0.0, 2.0, 0.0]);
        assert_eq!(p.total, 5);
        assert_eq!(p.nonzeros, 2);
        assert!((p.nonzero_fraction() - 0.4).abs() < 1e-12);
        assert!((p.zero_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn measure_batch_accumulates() {
        let a = [0.0f32, 1.0];
        let b = [1.0f32, 1.0, 0.0];
        let p = SparsityProfile::measure_batch([&a[..], &b[..]]);
        assert_eq!(p.total, 5);
        assert_eq!(p.nonzeros, 3);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = SparsityProfile::measure(&[]);
        assert_eq!(p.nonzero_fraction(), 0.0);
    }

    #[test]
    fn exact_sparsity_hits_target() {
        let mut rng = seeded_rng(10);
        for &frac in &[0.0, 0.206, 0.358, 0.444, 1.0] {
            let v = exact_sparsity_vector(&mut rng, 4096, frac);
            let p = SparsityProfile::measure(&v);
            let expected = (4096.0 * frac).round() as usize;
            assert_eq!(p.nonzeros, expected, "fraction {frac}");
        }
    }

    #[test]
    fn exact_sparsity_values_positive() {
        let mut rng = seeded_rng(11);
        let v = exact_sparsity_vector(&mut rng, 100, 0.5);
        assert!(v
            .iter()
            .filter(|&&x| x != 0.0)
            .all(|&x| (0.1..=1.0).contains(&x)));
    }

    #[test]
    fn relu_sparsity_zeroes_negatives() {
        let (post, profile) = relu_sparsity(&[-1.0, 2.0, -0.5, 0.0, 3.0]);
        assert_eq!(post, vec![0.0, 2.0, 0.0, 0.0, 3.0]);
        assert_eq!(profile.nonzeros, 2);
    }
}
