//! Permuted-diagonal approximation of pre-trained dense weights (Section III-F).
//!
//! To convert a pre-trained dense model, each `p × p` block of the dense weight matrix is
//! projected onto the closest permuted-diagonal matrix in the l2 (Frobenius) sense. For a
//! fixed permutation parameter `k` the optimal projection simply *keeps* the entries on
//! the chosen permuted diagonal and zeroes everything else; the optimal `k` for a block is
//! therefore the one whose permuted diagonal carries the most energy (sum of squares).
//! After projection the model is fine-tuned with the structure-preserving updates of
//! [`crate::grad`], reproducing the paper's two-step "approximate then re-train" flow
//! (Fig. 3).

use pd_tensor::{Matrix, Tensor4};

use crate::{BlockPermDiagMatrix, BlockPermDiagTensor4, PdError, PermutationIndexing};

/// Strategy for choosing the permutation parameter of each block during approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApproxStrategy {
    /// For every block choose the `k` whose permuted diagonal has maximum energy — the
    /// l2-optimal projection described in the paper.
    #[default]
    BestPerBlock,
    /// Force natural indexing (`k_l = l mod p`) regardless of the dense content; used by
    /// the permutation-indexing ablation.
    Natural,
}

/// Result of a permuted-diagonal approximation: the projected matrix plus the relative
/// l2 approximation error `||W - Ŵ||_F / ||W||_F`.
#[derive(Debug, Clone, PartialEq)]
pub struct PdApproximation {
    /// The projected block-permuted-diagonal matrix.
    pub matrix: BlockPermDiagMatrix,
    /// Relative Frobenius-norm error of the projection.
    pub relative_error: f64,
}

/// Projects a dense matrix onto the block-permuted-diagonal manifold with block size `p`.
///
/// # Errors
///
/// Returns [`PdError::ZeroBlockSize`] if `p == 0`.
pub fn pd_approximate(
    dense: &Matrix,
    p: usize,
    strategy: ApproxStrategy,
) -> Result<PdApproximation, PdError> {
    if p == 0 {
        return Err(PdError::ZeroBlockSize);
    }
    let (rows, cols) = dense.shape();
    let block_rows = rows.div_ceil(p);
    let block_cols = cols.div_ceil(p);
    let nblocks = block_rows * block_cols;
    let mut perms = vec![0usize; nblocks];
    let mut values = vec![0.0f32; nblocks * p];

    for br in 0..block_rows {
        for bc in 0..block_cols {
            let l = br * block_cols + bc;
            let k = match strategy {
                ApproxStrategy::Natural => l % p,
                ApproxStrategy::BestPerBlock => best_permutation(dense, br, bc, p),
            };
            perms[l] = k;
            for c in 0..p {
                let i = br * p + c;
                let j = bc * p + (c + k) % p;
                values[l * p + c] = if i < rows && j < cols {
                    dense[(i, j)]
                } else {
                    0.0
                };
            }
        }
    }

    let matrix = BlockPermDiagMatrix::new(rows, cols, p, perms, values)?;
    let approx_dense = matrix.to_dense();
    let diff = dense.sub(&approx_dense).expect("shapes match");
    let denom = dense.frobenius_norm() as f64;
    let relative_error = if denom == 0.0 {
        0.0
    } else {
        diff.frobenius_norm() as f64 / denom
    };
    Ok(PdApproximation {
        matrix,
        relative_error,
    })
}

/// Energy (sum of squares) captured by permutation `k` in block `(br, bc)` of `dense`.
fn diagonal_energy(dense: &Matrix, br: usize, bc: usize, p: usize, k: usize) -> f64 {
    let mut energy = 0.0f64;
    for c in 0..p {
        let i = br * p + c;
        let j = bc * p + (c + k) % p;
        if let Some(v) = dense.get(i, j) {
            energy += (v as f64) * (v as f64);
        }
    }
    energy
}

/// The l2-optimal permutation parameter for one block: the diagonal carrying the most
/// energy (ties broken towards the smaller `k`).
pub fn best_permutation(dense: &Matrix, br: usize, bc: usize, p: usize) -> usize {
    let mut best_k = 0usize;
    let mut best_energy = f64::NEG_INFINITY;
    for k in 0..p {
        let e = diagonal_energy(dense, br, bc, p, k);
        if e > best_energy {
            best_energy = e;
            best_k = k;
        }
    }
    best_k
}

/// Result of a permuted-diagonal approximation of a convolution weight tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct PdTensorApproximation {
    /// The projected permuted-diagonal weight tensor.
    pub tensor: BlockPermDiagTensor4,
    /// Relative Frobenius-norm error of the projection.
    pub relative_error: f64,
}

/// Projects a dense `[c_out, c_in, kh, kw]` weight tensor onto the permuted-diagonal
/// channel structure with block size `p`.
///
/// For each channel block, the permutation is chosen to maximise the energy of the kept
/// filter kernels (the per-entry generalisation of the matrix case, since each "entry" of
/// the channel macro-matrix is a whole kernel).
///
/// # Errors
///
/// Returns [`PdError::ZeroBlockSize`] if `p == 0`.
pub fn pd_approximate_tensor(
    dense: &Tensor4,
    p: usize,
    strategy: ApproxStrategy,
) -> Result<PdTensorApproximation, PdError> {
    if p == 0 {
        return Err(PdError::ZeroBlockSize);
    }
    let [c_out, c_in, kh, kw] = dense.shape();
    let mut tensor =
        BlockPermDiagTensor4::zeros(c_out, c_in, kh, kw, p, PermutationIndexing::Natural)?;
    let block_cols = c_in.div_ceil(p);

    // Choose permutations.
    let mut perms = vec![0usize; c_out.div_ceil(p) * block_cols];
    for br in 0..c_out.div_ceil(p) {
        for bc in 0..block_cols {
            let l = br * block_cols + bc;
            perms[l] = match strategy {
                ApproxStrategy::Natural => l % p,
                ApproxStrategy::BestPerBlock => {
                    let mut best_k = 0;
                    let mut best_energy = f64::NEG_INFINITY;
                    for k in 0..p {
                        let mut e = 0.0f64;
                        for c in 0..p {
                            let o = br * p + c;
                            let i = bc * p + (c + k) % p;
                            if o < c_out && i < c_in {
                                for ky in 0..kh {
                                    for kx in 0..kw {
                                        let v = dense[[o, i, ky, kx]] as f64;
                                        e += v * v;
                                    }
                                }
                            }
                        }
                        if e > best_energy {
                            best_energy = e;
                            best_k = k;
                        }
                    }
                    best_k
                }
            };
        }
    }

    // Rebuild the tensor with the chosen permutations and copy the kept kernels.
    tensor = rebuild_with_perms(tensor, &perms);
    let (c_outp, c_inp) = (tensor.c_out(), tensor.c_in());
    for o in 0..c_outp {
        for i in tensor.connected_inputs(o) {
            if i < c_inp {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let v = dense[[o, i, ky, kx]];
                        set_kernel_entry(&mut tensor, o, i, ky, kx, v);
                    }
                }
            }
        }
    }

    let approx_dense = tensor.to_dense();
    let num: f64 = dense
        .as_slice()
        .iter()
        .zip(approx_dense.as_slice().iter())
        .map(|(&a, &b)| ((a - b) as f64).powi(2))
        .sum();
    let den: f64 = dense.as_slice().iter().map(|&a| (a as f64).powi(2)).sum();
    let relative_error = if den == 0.0 { 0.0 } else { (num / den).sqrt() };
    Ok(PdTensorApproximation {
        tensor,
        relative_error,
    })
}

/// Rebuilds a zero PD tensor with explicit permutation parameters (the public constructor
/// only exposes the two indexing policies).
fn rebuild_with_perms(t: BlockPermDiagTensor4, perms: &[usize]) -> BlockPermDiagTensor4 {
    // Reconstruct through the dense path: build a dense tensor whose structural pattern
    // matches `perms`, then copy. Since all values are zero this is cheap; we only need
    // the permutation bookkeeping, which we achieve by constructing a fresh tensor and
    // overwriting its perms via the natural-indexing constructor plus a fix-up pass.
    let mut out = BlockPermDiagTensor4::zeros(
        t.c_out(),
        t.c_in(),
        t.kh(),
        t.kw(),
        t.p(),
        PermutationIndexing::Natural,
    )
    .expect("p validated by caller");
    out.set_perms(perms);
    out
}

fn set_kernel_entry(
    t: &mut BlockPermDiagTensor4,
    o: usize,
    i: usize,
    ky: usize,
    kx: usize,
    v: f32,
) {
    t.set_entry(o, i, ky, kx, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_tensor::init::seeded_rng;
    use rand::Rng;

    #[test]
    fn approximation_of_pd_matrix_is_exact() {
        let original = BlockPermDiagMatrix::random(16, 24, 4, &mut seeded_rng(1));
        let dense = original.to_dense();
        let approx = pd_approximate(&dense, 4, ApproxStrategy::BestPerBlock).unwrap();
        assert!(approx.relative_error < 1e-6);
        assert!(approx.matrix.to_dense().approx_eq(&dense, 1e-6));
    }

    #[test]
    fn approximation_error_zero_for_zero_matrix() {
        let dense = Matrix::zeros(8, 8);
        let approx = pd_approximate(&dense, 4, ApproxStrategy::BestPerBlock).unwrap();
        assert_eq!(approx.relative_error, 0.0);
    }

    #[test]
    fn best_per_block_never_worse_than_natural() {
        let mut rng = seeded_rng(2);
        let dense = Matrix::from_fn(20, 20, |_, _| rng.gen_range(-1.0..1.0));
        let best = pd_approximate(&dense, 5, ApproxStrategy::BestPerBlock).unwrap();
        let natural = pd_approximate(&dense, 5, ApproxStrategy::Natural).unwrap();
        assert!(best.relative_error <= natural.relative_error + 1e-12);
    }

    #[test]
    fn best_permutation_is_l2_optimal_per_block() {
        // Exhaustively verify optimality on a single block: keeping diagonal k keeps
        // exactly the energy of that diagonal, so the best k maximises kept energy and
        // minimises the squared error.
        let mut rng = seeded_rng(3);
        let dense = Matrix::from_fn(6, 6, |_, _| rng.gen_range(-1.0..1.0));
        let p = 6;
        let chosen = best_permutation(&dense, 0, 0, p);
        let chosen_energy = (0..p)
            .map(|c| {
                let v = dense[(c, (c + chosen) % p)] as f64;
                v * v
            })
            .sum::<f64>();
        for k in 0..p {
            let e = (0..p)
                .map(|c| {
                    let v = dense[(c, (c + k) % p)] as f64;
                    v * v
                })
                .sum::<f64>();
            assert!(chosen_energy >= e - 1e-12);
        }
    }

    #[test]
    fn error_is_bounded_by_one_for_random_matrices() {
        let mut rng = seeded_rng(4);
        let dense = Matrix::from_fn(32, 32, |_, _| rng.gen_range(-1.0..1.0));
        let approx = pd_approximate(&dense, 8, ApproxStrategy::BestPerBlock).unwrap();
        // Projection keeps a subset of entries, so the error is strictly below 1 for a
        // generic matrix and above 0.
        assert!(approx.relative_error > 0.0 && approx.relative_error < 1.0);
    }

    #[test]
    fn rejects_zero_block_size() {
        let dense = Matrix::zeros(4, 4);
        assert!(pd_approximate(&dense, 0, ApproxStrategy::BestPerBlock).is_err());
    }

    #[test]
    fn tensor_approximation_of_pd_tensor_is_exact() {
        let original = BlockPermDiagTensor4::random(
            8,
            8,
            3,
            3,
            4,
            PermutationIndexing::Natural,
            &mut seeded_rng(5),
        );
        let dense = original.to_dense();
        let approx = pd_approximate_tensor(&dense, 4, ApproxStrategy::BestPerBlock).unwrap();
        assert!(approx.relative_error < 1e-6, "{}", approx.relative_error);
    }

    #[test]
    fn tensor_approximation_generic_error_in_range() {
        let mut rng = seeded_rng(6);
        let dense = Tensor4::from_fn([8, 8, 3, 3], |_| rng.gen_range(-1.0..1.0));
        let approx = pd_approximate_tensor(&dense, 2, ApproxStrategy::BestPerBlock).unwrap();
        assert!(approx.relative_error > 0.0 && approx.relative_error < 1.0);
        assert!((approx.tensor.compression_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn projection_is_idempotent() {
        let mut rng = seeded_rng(7);
        let dense = Matrix::from_fn(16, 16, |_, _| rng.gen_range(-1.0..1.0));
        let once = pd_approximate(&dense, 4, ApproxStrategy::BestPerBlock).unwrap();
        let twice =
            pd_approximate(&once.matrix.to_dense(), 4, ApproxStrategy::BestPerBlock).unwrap();
        assert!(twice.relative_error < 1e-6);
        assert!(once
            .matrix
            .to_dense()
            .approx_eq(&twice.matrix.to_dense(), 1e-6));
    }
}
