//! Connectedness of stacked permuted-diagonal layers (Section III-E).
//!
//! The paper's universal-approximation argument rests on a structural property: when the
//! permutation parameters `k_l` are not all identical, the sparse connections of a stack
//! of block-permuted-diagonal layers "do not block away information from any neuron in
//! the previous layer" — every input neuron can reach every output neuron through some
//! path. This module makes that property checkable: it builds the bipartite connectivity
//! of each PD layer and computes reachability through a stack of layers.

use std::collections::VecDeque;

use crate::BlockPermDiagMatrix;

/// The neuron-level connectivity of a single PD layer: `reaches[i]` lists the input
/// neurons `j` with a structural connection to output neuron `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerConnectivity {
    /// Number of output neurons.
    pub outputs: usize,
    /// Number of input neurons.
    pub inputs: usize,
    /// Adjacency list: for each output neuron, the connected input neurons.
    pub reaches: Vec<Vec<usize>>,
}

/// Extracts the structural connectivity of one block-permuted-diagonal matrix.
pub fn layer_connectivity(w: &BlockPermDiagMatrix) -> LayerConnectivity {
    let mut reaches = vec![Vec::new(); w.rows()];
    let p = w.p();
    for br in 0..w.block_rows() {
        for bc in 0..w.block_cols() {
            let l = br * w.block_cols() + bc;
            let k = w.perms()[l];
            for c in 0..p {
                let i = br * p + c;
                let j = bc * p + (c + k) % p;
                if i < w.rows() && j < w.cols() {
                    reaches[i].push(j);
                }
            }
        }
    }
    LayerConnectivity {
        outputs: w.rows(),
        inputs: w.cols(),
        reaches,
    }
}

/// Returns, for every output neuron of the last layer in `layers`, the set of input
/// neurons of the first layer that can reach it through the stacked structural
/// connections. `layers` are ordered from input to output; layer `t+1`'s inputs are layer
/// `t`'s outputs.
///
/// # Panics
///
/// Panics if consecutive layers have mismatched dimensions.
pub fn reachable_inputs(layers: &[&BlockPermDiagMatrix]) -> Vec<Vec<bool>> {
    assert!(!layers.is_empty(), "at least one layer is required");
    for pair in layers.windows(2) {
        assert_eq!(
            pair[0].rows(),
            pair[1].cols(),
            "layer output/input dimensions must chain"
        );
    }
    let n_inputs = layers[0].cols();
    // reach[t][neuron] = bitmap over first-layer inputs.
    let first = layer_connectivity(layers[0]);
    let mut current: Vec<Vec<bool>> = first
        .reaches
        .iter()
        .map(|srcs| {
            let mut bits = vec![false; n_inputs];
            for &s in srcs {
                bits[s] = true;
            }
            bits
        })
        .collect();
    for layer in &layers[1..] {
        let conn = layer_connectivity(layer);
        let mut next = vec![vec![false; n_inputs]; conn.outputs];
        for (i, srcs) in conn.reaches.iter().enumerate() {
            for &mid in srcs {
                for (bit, reachable) in next[i].iter_mut().zip(current[mid].iter()) {
                    *bit = *bit || *reachable;
                }
            }
        }
        current = next;
    }
    current
}

/// Returns `true` if every output neuron of the stacked layers can be reached from every
/// input neuron of the first layer — the "connectedness" property of Section III-E.
pub fn is_fully_connected(layers: &[&BlockPermDiagMatrix]) -> bool {
    reachable_inputs(layers)
        .iter()
        .all(|bits| bits.iter().all(|&b| b))
}

/// Number of layers of a square `n × n` PD stack with block size `p` needed before full
/// connectivity is achieved, probing stacks built with the supplied permutation pattern
/// generator `perm_for_layer(layer_index, block_index) -> k`.
///
/// Returns `None` if full connectivity is not reached within `max_layers`.
pub fn depth_to_full_connectivity(
    n: usize,
    p: usize,
    max_layers: usize,
    mut perm_for_layer: impl FnMut(usize, usize) -> usize,
) -> Option<usize> {
    let mut layers: Vec<BlockPermDiagMatrix> = Vec::new();
    for depth in 1..=max_layers {
        let blocks = n.div_ceil(p) * n.div_ceil(p);
        let perms: Vec<usize> = (0..blocks)
            .map(|l| perm_for_layer(depth - 1, l) % p)
            .collect();
        let values = vec![1.0; blocks * p];
        let w = BlockPermDiagMatrix::new(n, n, p, perms, values)
            .expect("constructed dimensions are consistent");
        layers.push(w);
        let refs: Vec<&BlockPermDiagMatrix> = layers.iter().collect();
        if is_fully_connected(&refs) {
            return Some(depth);
        }
    }
    None
}

/// Breadth-first search over the undirected neuron graph of a single layer, returning the
/// number of connected components of the bipartite graph (inputs ∪ outputs). A single
/// component means no neuron group is isolated from the rest.
pub fn bipartite_components(w: &BlockPermDiagMatrix) -> usize {
    let conn = layer_connectivity(w);
    let n = conn.inputs + conn.outputs; // inputs are 0..inputs, outputs are inputs..inputs+outputs
    let mut adj = vec![Vec::new(); n];
    for (out, srcs) in conn.reaches.iter().enumerate() {
        for &inp in srcs {
            adj[inp].push(conn.inputs + out);
            adj[conn.inputs + out].push(inp);
        }
    }
    let mut seen = vec![false; n];
    let mut components = 0;
    for start in 0..n {
        if seen[start] {
            continue;
        }
        components += 1;
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PermutationIndexing;
    use pd_tensor::init::seeded_rng;

    fn unit_pd(n: usize, p: usize, perms: Vec<usize>) -> BlockPermDiagMatrix {
        let blocks = n.div_ceil(p) * n.div_ceil(p);
        BlockPermDiagMatrix::new(n, n, p, perms, vec![1.0; blocks * p]).unwrap()
    }

    #[test]
    fn single_layer_connectivity_counts() {
        let w = BlockPermDiagMatrix::random(8, 8, 4, &mut seeded_rng(1));
        let conn = layer_connectivity(&w);
        assert_eq!(conn.outputs, 8);
        assert_eq!(conn.inputs, 8);
        // Each output neuron connects to exactly one input per block column = 2.
        assert!(conn.reaches.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn identical_permutations_never_fully_connect() {
        // With k_l = 0 for every block of every layer, output i only ever sees inputs
        // congruent to i (mod p): the stack is NOT fully connected no matter how deep.
        let n = 8;
        let p = 4;
        let blocks = (n / p) * (n / p);
        let layers: Vec<BlockPermDiagMatrix> =
            (0..4).map(|_| unit_pd(n, p, vec![0; blocks])).collect();
        let refs: Vec<&BlockPermDiagMatrix> = layers.iter().collect();
        assert!(!is_fully_connected(&refs));
    }

    #[test]
    fn varied_permutations_reach_full_connectivity() {
        // Natural indexing (k_l = l mod p) varies the permutation across blocks, which is
        // exactly the condition Section III-E requires; a modest stack becomes fully
        // connected.
        let depth = depth_to_full_connectivity(16, 4, 8, |layer, l| l + layer);
        assert!(depth.is_some(), "stack should become fully connected");
        assert!(depth.unwrap() <= 8);
    }

    #[test]
    fn depth_none_when_blocked() {
        let depth = depth_to_full_connectivity(8, 4, 6, |_, _| 0);
        assert_eq!(depth, None);
    }

    #[test]
    fn single_block_layer_is_fully_connected_iff_p_is_1() {
        // p == n: one block per layer; a single permuted diagonal is a permutation matrix,
        // so each output sees exactly one input — not fully connected unless n == 1.
        let w = unit_pd(4, 4, vec![1]);
        assert!(!is_fully_connected(&[&w]));
        let w1 = unit_pd(1, 1, vec![0]);
        assert!(is_fully_connected(&[&w1]));
    }

    #[test]
    fn reachability_dimensions() {
        let w1 = BlockPermDiagMatrix::random(12, 8, 4, &mut seeded_rng(2));
        let w2 = BlockPermDiagMatrix::random(6, 12, 2, &mut seeded_rng(3));
        let reach = reachable_inputs(&[&w1, &w2]);
        assert_eq!(reach.len(), 6);
        assert!(reach.iter().all(|bits| bits.len() == 8));
    }

    #[test]
    fn bipartite_components_detect_isolation() {
        // k=0 diagonal blocks on an 8x8 with p=4 and a single block row/col pair per
        // residue class: inputs/outputs split into p independent groups.
        let w = unit_pd(8, 4, vec![0; 4]);
        assert_eq!(bipartite_components(&w), 4);
        // Mixing the permutation of a single block chains the residue classes together.
        let mixed = unit_pd(8, 4, vec![0, 0, 1, 0]);
        assert_eq!(bipartite_components(&mixed), 1);
    }

    #[test]
    fn natural_indexing_is_not_all_identical() {
        // The precondition of Section III-E: natural indexing gives non-identical k_l
        // whenever there is more than one block per block row.
        let nat = BlockPermDiagMatrix::zeros(8, 16, 4, PermutationIndexing::Natural).unwrap();
        let distinct: std::collections::HashSet<_> = nat.perms().iter().copied().collect();
        assert!(distinct.len() > 1);
    }
}
