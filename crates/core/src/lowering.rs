//! im2col lowering: convolution weights as [`CompressedLinear`] operators
//! over patch matrices.
//!
//! The paper's CONV experiments (Tables IV–V, Section III-C) impose the
//! permuted-diagonal structure on the channel dimensions of the 4-D weight
//! tensor; the engine, however, has exactly one datapath — the column-wise FC
//! matmul. This module closes that gap the same way the hardware does: a
//! convolution over a `[1, c_in, h, w]` image is lowered to a batched product
//! of *patch vectors* (rows of [`pd_tensor::Tensor4::im2col_patches`], one per
//! output position, flattened in `(c, ky, kx)` order) with the flattened
//! `c_out × (c_in·kh·kw)` weight matrix:
//!
//! * dense weight tensors flatten to an ordinary [`Matrix`]
//!   ([`lower_dense_conv`]), which already implements [`CompressedLinear`];
//! * permuted-diagonal weight tensors get [`PdConvMatrix`] — a zero-skipping
//!   macro-row kernel over the stored kernels that implements
//!   [`CompressedLinear`] *directly*, never densifying: each macro row (output
//!   channel) visits only its structurally connected input channels, `p ×`
//!   fewer than dense, and zero patch entries are skipped exactly as the PE
//!   zero-detector drops zero activations.
//!
//! With the weight lowered, one conv layer forward is
//! `op.matmul(im2col_patches(input))` — the identical surface the runtime's
//! `ParallelExecutor` shards by rows (here: output positions), the quantizer
//! wraps in `QuantizedLinear` ([`PdConvMatrix`] advertises the column-sparse
//! integer kernel), and the `sim` crate charges the engine cycle model for.
//!
//! [`ConvGeometry`] carries the `(kernel, stride, padding)` bookkeeping and the
//! im2col cost model: lowering materialises `out_h·out_w·c_in·kh·kw` patch
//! values per image — a `kh·kw ×` read amplification of the input — which is
//! the price paid for reusing the one audited matmul datapath.
//!
//! # Example
//!
//! ```
//! use permdnn_core::lowering::{ConvGeometry, PdConvMatrix};
//! use permdnn_core::format::{BatchView, CompressedLinear};
//! use permdnn_core::{BlockPermDiagTensor4, PermutationIndexing};
//! use pd_tensor::{Tensor4, init::seeded_rng};
//!
//! let f = BlockPermDiagTensor4::random(8, 4, 3, 3, 2, PermutationIndexing::Natural,
//!                                      &mut seeded_rng(0));
//! let geom = ConvGeometry::new(3, 3, 1, 1);
//! let op = PdConvMatrix::new(f.clone());
//! let img = Tensor4::from_fn([1, 4, 6, 6], |(_, c, y, x)| (c + y + x) as f32 * 0.1);
//! let patches = geom.patches(&img);
//! let out = op.matmul(&BatchView::from_matrix(&patches)).unwrap(); // positions × c_out
//! assert_eq!(out.shape(), (36, 8));
//! assert_eq!(op.stored_weights(), f.stored_weights());
//! ```

use pd_tensor::tensor4::conv_out_dim;
use pd_tensor::{Matrix, Tensor4};

use crate::conv::BlockPermDiagTensor4;
use crate::format::{check_dim, CompressedLinear, FormatError};

/// Kernel size, stride and padding of one convolution layer, with the im2col
/// lowering helpers and cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (both dimensions).
    pub stride: usize,
    /// Zero padding (both dimensions).
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or the kernel is empty.
    pub fn new(kh: usize, kw: usize, stride: usize, padding: usize) -> Self {
        assert!(kh > 0 && kw > 0, "kernel must be non-empty");
        assert!(stride > 0, "stride must be non-zero");
        ConvGeometry {
            kh,
            kw,
            stride,
            padding,
        }
    }

    /// Output spatial dimensions for an `h × w` input.
    pub fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_dim(h, self.kh, self.stride, self.padding),
            conv_out_dim(w, self.kw, self.stride, self.padding),
        )
    }

    /// Number of output positions (= patch rows) for an `h × w` input.
    pub fn positions(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = self.out_dims(h, w);
        oh * ow
    }

    /// Length of one flattened patch vector for `c_in` input channels — the
    /// lowered operator's input dimension.
    pub fn patch_len(&self, c_in: usize) -> usize {
        c_in * self.kh * self.kw
    }

    /// im2col cost model: number of patch values materialised when lowering
    /// one `c_in × h × w` image — `positions · c_in·kh·kw`, a `kh·kw ×` read
    /// amplification of the `c_in·h·w` input (at stride 1).
    pub fn im2col_elements(&self, c_in: usize, h: usize, w: usize) -> usize {
        self.positions(h, w) * self.patch_len(c_in)
    }

    /// Lowers a single image to its patch matrix: one row per output position,
    /// each row a flattened receptive field (zero padding included).
    ///
    /// # Panics
    ///
    /// Panics if the image batch dimension is not 1 or the kernel does not fit
    /// the padded input.
    pub fn patches(&self, image: &Tensor4) -> Matrix {
        image.im2col_patches(self.kh, self.kw, self.stride, self.padding)
    }

    /// Reassembles the batched product output (`positions × c_out`, one row
    /// per patch) into the `[1, c_out, out_h, out_w]` activation tensor.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::DimensionMismatch`] if `product.rows()` does not
    /// equal the number of output positions for an `h × w` input.
    pub fn assemble(&self, product: &Matrix, h: usize, w: usize) -> Result<Tensor4, FormatError> {
        let (oh, ow) = self.out_dims(h, w);
        check_dim("ConvGeometry::assemble", oh * ow, product.rows())?;
        let c_out = product.cols();
        let mut out = Tensor4::zeros([1, c_out, oh, ow]);
        for pos in 0..oh * ow {
            let row = product.row(pos);
            for (o, &v) in row.iter().enumerate() {
                out[[0, o, pos / ow, pos % ow]] = v;
            }
        }
        Ok(out)
    }
}

/// Flattens a dense `[c_out, c_in, kh, kw]` convolution weight tensor into the
/// `c_out × (c_in·kh·kw)` matrix acting on patch vectors — a dense
/// [`CompressedLinear`] operator, ready for the same serving stack as any FC
/// layer.
pub fn lower_dense_conv(weights: &Tensor4) -> Matrix {
    weights.to_matrix_2d()
}

/// A permuted-diagonal convolution weight tensor as a [`CompressedLinear`]
/// operator over patch vectors — the zero-skipping macro-row kernel.
///
/// Logically this is the `c_out × (c_in·kh·kw)` flattening of the PD weight
/// tensor, but nothing is densified: per macro row (output channel) only the
/// structurally connected input channels' stored kernels are stored and
/// visited, so a mat-vec costs exactly `stored_weights()` multiplies on a
/// dense patch and proportionally less on a sparse one (zero patch entries
/// are skipped, the engine's zero-detector behaviour).
#[derive(Debug, Clone)]
pub struct PdConvMatrix {
    tensor: BlockPermDiagTensor4,
    /// Per output channel: the `(patch column offset, stored-kernel base)` of
    /// every structurally connected input channel, in ascending channel order
    /// — the same traversal order as `BlockPermDiagTensor4::forward`, so
    /// lowered and direct convolution accumulate identically.
    macro_rows: Vec<Vec<(usize, usize)>>,
}

impl PdConvMatrix {
    /// Wraps a permuted-diagonal weight tensor as a lowered operator.
    pub fn new(tensor: BlockPermDiagTensor4) -> Self {
        let window = tensor.kh() * tensor.kw();
        let macro_rows = (0..tensor.c_out())
            .map(|o| {
                tensor
                    .connected_inputs(o)
                    .into_iter()
                    .map(|i| {
                        let base = tensor
                            .kernel_offset(o, i)
                            .expect("connected inputs are structural");
                        (i * window, base)
                    })
                    .collect()
            })
            .collect();
        PdConvMatrix { tensor, macro_rows }
    }

    /// The wrapped permuted-diagonal weight tensor.
    pub fn tensor(&self) -> &BlockPermDiagTensor4 {
        &self.tensor
    }
}

impl CompressedLinear for PdConvMatrix {
    fn out_dim(&self) -> usize {
        self.tensor.c_out()
    }

    fn in_dim(&self) -> usize {
        self.tensor.c_in() * self.tensor.kh() * self.tensor.kw()
    }

    fn label(&self) -> String {
        format!("permuted-diagonal conv (p={})", self.tensor.p())
    }

    fn stored_weights(&self) -> usize {
        self.tensor.stored_weights()
    }

    fn mul_count(&self) -> u64 {
        // One multiply per stored weight on a dense patch: each macro row
        // touches only its connected kernels.
        self.macro_rows
            .iter()
            .map(|row| (row.len() * self.tensor.kh() * self.tensor.kw()) as u64)
            .sum()
    }

    fn exploits_input_sparsity(&self) -> bool {
        true
    }

    /// The macro-row kernel: `y[o] = Σ_{i connected to o} kernel(o,i) · patch[i]`,
    /// skipping zero patch entries. Accumulation order (channels ascending,
    /// kernel row-major, one partial sum per connected channel) matches
    /// `BlockPermDiagTensor4::forward` exactly, so the lowered forward is
    /// numerically identical to the direct training-path convolution.
    fn matvec_into(&self, x: &[f32], y: &mut [f32]) -> Result<(), FormatError> {
        check_dim("matvec_into", self.in_dim(), x.len())?;
        check_dim("matvec_into", self.out_dim(), y.len())?;
        let window = self.tensor.kh() * self.tensor.kw();
        let kernels = self.tensor.kernels();
        for (o, row) in self.macro_rows.iter().enumerate() {
            let mut acc = 0.0f32;
            for &(col, base) in row {
                let patch = &x[col..col + window];
                let kernel = &kernels[base..base + window];
                let mut partial = 0.0f32;
                for (&w, &xv) in kernel.iter().zip(patch.iter()) {
                    if xv == 0.0 {
                        continue;
                    }
                    partial += w * xv;
                }
                acc += partial;
            }
            y[o] = acc;
        }
        Ok(())
    }

    fn to_dense(&self) -> Matrix {
        self.tensor.to_dense().to_matrix_2d()
    }

    fn max_weight_abs(&self) -> f32 {
        self.tensor
            .kernels()
            .iter()
            .fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// The lowered PD conv layer shares the column-compressed zero-skipping
    /// integer kernel with the FC formats: column `j = (i, ky, kx)` holds one
    /// weight per structurally connected output channel.
    fn quantize_kernel(&self, weight_frac: u32) -> Option<crate::qlinear::QuantKernel> {
        let window = self.tensor.kh() * self.tensor.kw();
        let kernels = self.tensor.kernels();
        let mut columns: Vec<Vec<(usize, f32)>> = vec![Vec::new(); self.in_dim()];
        for (o, row) in self.macro_rows.iter().enumerate() {
            for &(col, base) in row {
                for t in 0..window {
                    columns[col + t].push((o, kernels[base + t]));
                }
            }
        }
        Some(crate::qlinear::QuantKernel::column_sparse(
            self.out_dim(),
            self.in_dim(),
            weight_frac,
            &columns,
        ))
    }

    fn write_snapshot(&self, out: &mut crate::snapshot::ByteWriter) -> Option<u16> {
        if !crate::snapshot::pd_perms_encodable(self.tensor.p()) {
            return None;
        }
        crate::snapshot::write_pd_conv(self, out);
        Some(crate::snapshot::FORMAT_PD_CONV)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::dense_conv2d;
    use crate::format::BatchView;
    use crate::PermutationIndexing;
    use pd_tensor::init::seeded_rng;
    use rand::Rng;

    fn random_image(c: usize, h: usize, w: usize, seed: u64) -> Tensor4 {
        let mut rng = seeded_rng(seed);
        Tensor4::from_fn([1, c, h, w], |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn pd_conv_matvec_matches_dense_expansion() {
        let mut rng = seeded_rng(1);
        let f = BlockPermDiagTensor4::random(8, 4, 3, 3, 2, PermutationIndexing::Natural, &mut rng);
        let op = PdConvMatrix::new(f);
        let x: Vec<f32> = (0..op.in_dim()).map(|i| (i as f32 * 0.31).sin()).collect();
        let got = op.matvec(&x).unwrap();
        let expected = op.to_dense().matvec(&x);
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-4);
        }
        assert_eq!(op.mul_count(), op.stored_weights() as u64);
        assert!(op.exploits_input_sparsity());
        assert!(op.label().contains("conv (p=2)"));
    }

    #[test]
    fn lowered_convolution_equals_direct_convolution() {
        // PD: lowered patch-matmul ≡ the structure-aware direct forward.
        let mut rng = seeded_rng(2);
        let f = BlockPermDiagTensor4::random(8, 4, 3, 3, 2, PermutationIndexing::Natural, &mut rng);
        let geom = ConvGeometry::new(3, 3, 1, 1);
        let img = random_image(4, 6, 6, 3);
        let direct = f.forward(&img, 1, 1).unwrap();
        let op = PdConvMatrix::new(f);
        let patches = geom.patches(&img);
        let product = op.matmul(&BatchView::from_matrix(&patches)).unwrap();
        let lowered = geom.assemble(&product, 6, 6).unwrap();
        assert_eq!(lowered.shape(), direct.shape());
        for (a, b) in lowered.as_slice().iter().zip(direct.as_slice().iter()) {
            assert_eq!(a, b, "lowered PD conv must match the direct kernel");
        }
    }

    #[test]
    fn lowered_dense_convolution_matches_reference() {
        let mut rng = seeded_rng(4);
        let w = Tensor4::from_fn([5, 3, 3, 3], |_| rng.gen_range(-0.5..0.5));
        let geom = ConvGeometry::new(3, 3, 1, 1);
        let img = random_image(3, 5, 7, 5);
        let reference = dense_conv2d(&w, &img, 1, 1);
        let op = lower_dense_conv(&w);
        let patches = geom.patches(&img);
        let product = CompressedLinear::matmul(&op, &BatchView::from_matrix(&patches)).unwrap();
        let lowered = geom.assemble(&product, 5, 7).unwrap();
        for (a, b) in lowered.as_slice().iter().zip(reference.as_slice().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn ragged_channel_counts_lower_correctly() {
        // c_out=6, c_in=10, p=4: padded blocks must not corrupt the lowering.
        let mut rng = seeded_rng(6);
        let f =
            BlockPermDiagTensor4::random(6, 10, 3, 3, 4, PermutationIndexing::Natural, &mut rng);
        let geom = ConvGeometry::new(3, 3, 1, 1);
        let img = random_image(10, 5, 5, 7);
        let direct = f.forward(&img, 1, 1).unwrap();
        let op = PdConvMatrix::new(f);
        let patches = geom.patches(&img);
        let product = op.matmul(&BatchView::from_matrix(&patches)).unwrap();
        let lowered = geom.assemble(&product, 5, 5).unwrap();
        for (a, b) in lowered.as_slice().iter().zip(direct.as_slice().iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn quantize_kernel_matches_f32_within_rounding() {
        use crate::qlinear::{QScheme, QuantizedLinear};
        use std::sync::Arc;
        let mut rng = seeded_rng(8);
        let f = BlockPermDiagTensor4::random(8, 8, 3, 3, 4, PermutationIndexing::Natural, &mut rng);
        let op: Arc<dyn CompressedLinear> = Arc::new(PdConvMatrix::new(f));
        let q = QuantizedLinear::from_op(
            Arc::clone(&op),
            QScheme::calibrate(1.0, op.max_weight_abs(), 8.0),
        );
        assert!(
            q.has_integer_kernel(),
            "PD conv advertises the integer kernel"
        );
        let x: Vec<f32> = (0..op.in_dim())
            .map(|i| (i as f32 * 0.17).cos() * 0.8)
            .collect();
        let yq = q.matvec(&x).unwrap();
        let yf = op.matvec(&x).unwrap();
        for (a, b) in yq.iter().zip(yf.iter()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn geometry_cost_model_and_errors() {
        let geom = ConvGeometry::new(3, 3, 1, 1);
        assert_eq!(geom.out_dims(12, 12), (12, 12));
        assert_eq!(geom.positions(12, 12), 144);
        assert_eq!(geom.patch_len(8), 72);
        // kh·kw read amplification at stride 1: 9 patch values per input value.
        assert_eq!(geom.im2col_elements(8, 12, 12), 144 * 72);
        let wrong = Matrix::zeros(10, 4);
        assert!(matches!(
            geom.assemble(&wrong, 12, 12),
            Err(FormatError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn dimension_mismatches_are_typed() {
        let f = BlockPermDiagTensor4::random(
            4,
            4,
            3,
            3,
            2,
            PermutationIndexing::Natural,
            &mut seeded_rng(9),
        );
        let op = PdConvMatrix::new(f);
        assert!(matches!(
            op.matvec(&[0.0; 7]),
            Err(FormatError::DimensionMismatch { .. })
        ));
    }
}
