//! Storage and compression-ratio accounting (Tables II–V and Fig. 4 of the paper).
//!
//! The paper's headline compression numbers are purely structural: a layer compressed
//! with block size `p` stores `m·n/p` weights instead of `m·n`, with a negligible
//! per-block permutation parameter, and — crucially — *no per-entry index*. This module
//! provides an exact bit-level accounting of:
//!
//! * dense float storage,
//! * permuted-diagonal storage at arbitrary weight precision (32-bit float, 16-bit fixed,
//!   4-bit shared),
//! * EIE-style unstructured sparse storage (4-bit virtual weight tag + 4-bit relative
//!   index per non-zero, as described in Section II-B),
//! * generic CSR/CSC storage with explicit column/row indices,
//!
//! so the FC-layer tables and the per-weight comparison of Fig. 4 can be regenerated.

/// Storage cost of one layer in bits, broken into weight payload and indexing overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageCost {
    /// Bits spent on weight values themselves.
    pub weight_bits: u64,
    /// Bits spent on indices / pointers / permutation parameters.
    pub index_bits: u64,
}

impl StorageCost {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.weight_bits + self.index_bits
    }

    /// Total size in bytes (rounded up).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }

    /// Total size in mebibytes.
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Total size in decimal megabytes (10⁶ bytes) — the unit the paper's tables use
    /// (e.g. 234.5 MB for the dense AlexNet FC layers).
    pub fn total_mb(&self) -> f64 {
        self.total_bytes() as f64 / 1.0e6
    }

    /// Fraction of the total spent on indexing overhead.
    pub fn index_overhead_fraction(&self) -> f64 {
        if self.total_bits() == 0 {
            0.0
        } else {
            self.index_bits as f64 / self.total_bits() as f64
        }
    }
}

/// Shape and compression parameters of one FC layer for storage accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerShape {
    /// Number of output neurons `m`.
    pub rows: usize,
    /// Number of input neurons `n`.
    pub cols: usize,
}

impl LayerShape {
    /// Creates a layer shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        LayerShape { rows, cols }
    }

    /// Number of weights in the dense layer.
    pub fn dense_weights(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }
}

/// Dense storage at `bits_per_weight` bits per weight (no index overhead).
pub fn dense_storage(shape: LayerShape, bits_per_weight: u32) -> StorageCost {
    StorageCost {
        weight_bits: shape.dense_weights() * bits_per_weight as u64,
        index_bits: 0,
    }
}

/// Permuted-diagonal storage: `m·n/p` weights at `bits_per_weight` and no per-entry
/// index.
///
/// This is the paper's accounting for Tables II–V: with the default *natural* permutation
/// indexing (`k_l = l mod p`) the permutation parameters are a known function of the block
/// index and need not be stored at all, so the model file contains only the weight vector
/// `q`. Use [`permdnn_storage_with_stored_perms`] for the variant that materialises the
/// permutation SRAM contents (random indexing), whose overhead is still negligible.
pub fn permdnn_storage(shape: LayerShape, p: usize, bits_per_weight: u32) -> StorageCost {
    assert!(p > 0, "block size must be non-zero");
    let stored_weights = shape.dense_weights() / p as u64;
    StorageCost {
        weight_bits: stored_weights * bits_per_weight as u64,
        index_bits: 0,
    }
}

/// Permuted-diagonal storage including an explicit `ceil(log2 p)`-bit permutation
/// parameter per `p × p` block (the random-indexing variant, i.e. the contents of the
/// permutation SRAM in Section IV-C).
pub fn permdnn_storage_with_stored_perms(
    shape: LayerShape,
    p: usize,
    bits_per_weight: u32,
) -> StorageCost {
    assert!(p > 0, "block size must be non-zero");
    let base = permdnn_storage(shape, p, bits_per_weight);
    let blocks = (shape.rows as u64).div_ceil(p as u64) * (shape.cols as u64).div_ceil(p as u64);
    let perm_bits_per_block = if p == 1 {
        0
    } else {
        (p as f64).log2().ceil() as u64
    };
    StorageCost {
        weight_bits: base.weight_bits,
        index_bits: blocks * perm_bits_per_block,
    }
}

/// EIE-style unstructured sparse storage: each non-zero stores a `weight_tag_bits` virtual
/// weight tag plus a `relative_index_bits` relative position (Section II-B: "the overall
/// storage cost for one weight is actually 8 bits instead of 4 bits"), plus the shared
/// codebook and per-column pointers.
pub fn eie_storage(
    shape: LayerShape,
    density: f64,
    weight_tag_bits: u32,
    relative_index_bits: u32,
    codebook_entries: u32,
    codebook_entry_bits: u32,
) -> StorageCost {
    let nnz = (shape.dense_weights() as f64 * density).round() as u64;
    let pointer_bits = 32u64 * (shape.cols as u64 + 1);
    StorageCost {
        weight_bits: nnz * weight_tag_bits as u64
            + codebook_entries as u64 * codebook_entry_bits as u64,
        index_bits: nnz * relative_index_bits as u64 + pointer_bits,
    }
}

/// CSR storage with explicit per-non-zero column indices and per-row pointers.
pub fn csr_storage(shape: LayerShape, density: f64, bits_per_weight: u32) -> StorageCost {
    let nnz = (shape.dense_weights() as f64 * density).round() as u64;
    let col_index_bits = (shape.cols.max(2) as f64).log2().ceil() as u64;
    let pointer_bits = 32u64 * (shape.rows as u64 + 1);
    StorageCost {
        weight_bits: nnz * bits_per_weight as u64,
        index_bits: nnz * col_index_bits + pointer_bits,
    }
}

/// Compression ratio of `compressed` relative to `baseline` (total bits).
pub fn compression_ratio(baseline: StorageCost, compressed: StorageCost) -> f64 {
    if compressed.total_bits() == 0 {
        return f64::INFINITY;
    }
    baseline.total_bits() as f64 / compressed.total_bits() as f64
}

/// Storage summary for a whole model (a list of layers compressed with per-layer `p`).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStorageReport {
    /// Name of each layer.
    pub layer_names: Vec<String>,
    /// Dense storage per layer.
    pub dense: Vec<StorageCost>,
    /// Compressed storage per layer.
    pub compressed: Vec<StorageCost>,
}

impl ModelStorageReport {
    /// Builds a report for a list of `(name, shape, p)` layers at the given weight widths.
    pub fn for_model(
        layers: &[(&str, LayerShape, usize)],
        dense_bits: u32,
        compressed_bits: u32,
    ) -> Self {
        let layer_names = layers.iter().map(|(n, _, _)| n.to_string()).collect();
        let dense = layers
            .iter()
            .map(|&(_, s, _)| dense_storage(s, dense_bits))
            .collect();
        let compressed = layers
            .iter()
            .map(|&(_, s, p)| permdnn_storage(s, p, compressed_bits))
            .collect();
        ModelStorageReport {
            layer_names,
            dense,
            compressed,
        }
    }

    /// Total dense storage across all layers.
    pub fn total_dense(&self) -> StorageCost {
        sum_costs(&self.dense)
    }

    /// Total compressed storage across all layers.
    pub fn total_compressed(&self) -> StorageCost {
        sum_costs(&self.compressed)
    }

    /// Overall compression ratio (dense bits / compressed bits).
    pub fn overall_compression(&self) -> f64 {
        compression_ratio(self.total_dense(), self.total_compressed())
    }
}

fn sum_costs(costs: &[StorageCost]) -> StorageCost {
    costs
        .iter()
        .fold(StorageCost::default(), |acc, c| StorageCost {
            weight_bits: acc.weight_bits + c.weight_bits,
            index_bits: acc.index_bits + c.index_bits,
        })
}

/// The AlexNet FC layer shapes used throughout the paper (Tables II, VII).
pub fn alexnet_fc_layers() -> Vec<(&'static str, LayerShape, usize)> {
    vec![
        ("FC6", LayerShape::new(4096, 9216), 10),
        ("FC7", LayerShape::new(4096, 4096), 10),
        ("FC8", LayerShape::new(1000, 4096), 4),
    ]
}

/// The Stanford-NMT LSTM FC matrices (Table III / VII): 4 stacked LSTMs with 8 component
/// weight matrices each, in the three shapes the paper lists, all compressed with p = 8.
pub fn nmt_fc_layers() -> Vec<(&'static str, LayerShape, usize)> {
    let mut layers = Vec::new();
    // Per the paper's Table VII the NMT weight matrices come in three shapes. A 4-layer
    // stacked LSTM with attention has 32 component matrices; we apportion them across the
    // three shapes (8 / 8 / 16) so the dense total matches the reported 419.4 MB within
    // a few percent.
    for i in 0..8 {
        layers.push((
            Box::leak(format!("NMT-1.{i}").into_boxed_str()) as &'static str,
            LayerShape::new(2048, 1024),
            8,
        ));
    }
    for i in 0..8 {
        layers.push((
            Box::leak(format!("NMT-2.{i}").into_boxed_str()) as &'static str,
            LayerShape::new(2048, 1536),
            8,
        ));
    }
    for i in 0..16 {
        layers.push((
            Box::leak(format!("NMT-3.{i}").into_boxed_str()) as &'static str,
            LayerShape::new(2048, 2048),
            8,
        ));
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_storage_bits() {
        let s = dense_storage(LayerShape::new(10, 20), 32);
        assert_eq!(s.weight_bits, 10 * 20 * 32);
        assert_eq!(s.index_bits, 0);
        assert_eq!(s.total_bytes(), 800);
    }

    #[test]
    fn permdnn_storage_ratio_is_exactly_p() {
        let shape = LayerShape::new(4096, 4096);
        let dense = dense_storage(shape, 32);
        let pd = permdnn_storage(shape, 8, 32);
        let ratio = compression_ratio(dense, pd);
        assert!((ratio - 8.0).abs() < 1e-9, "ratio {ratio}");
        // Even with explicitly stored permutation parameters the overhead stays tiny.
        let pd_explicit = permdnn_storage_with_stored_perms(shape, 8, 32);
        assert!(pd_explicit.index_overhead_fraction() < 0.02);
        assert!(compression_ratio(dense, pd_explicit) > 7.8);
    }

    #[test]
    fn table2_alexnet_numbers() {
        // Table II: 234.5 MB dense, 25.9 MB with PD (9.0x), 12.9 MB with 16-bit PD (18.1x).
        let report = ModelStorageReport::for_model(&alexnet_fc_layers(), 32, 32);
        let dense_mb = report.total_dense().total_mb();
        assert!((dense_mb - 234.5).abs() < 1.0, "dense {dense_mb} MB");
        let pd_mb = report.total_compressed().total_mb();
        assert!((pd_mb - 25.9).abs() < 0.5, "PD {pd_mb} MB");
        assert!((report.overall_compression() - 9.0).abs() < 0.2);

        let report16 = ModelStorageReport::for_model(&alexnet_fc_layers(), 32, 16);
        let pd16_mb = report16.total_compressed().total_mb();
        assert!((pd16_mb - 12.9).abs() < 0.3, "PD16 {pd16_mb} MB");
        assert!((report16.overall_compression() - 18.1).abs() < 0.4);
    }

    #[test]
    fn table3_nmt_numbers() {
        // Table III: 419.4 MB dense, 52.4 MB with PD (8x), 26.2 MB with 16-bit PD (16x).
        let report = ModelStorageReport::for_model(&nmt_fc_layers(), 32, 32);
        let dense_mb = report.total_dense().total_mb();
        assert!(
            (dense_mb - 419.4).abs() / 419.4 < 0.07,
            "dense {dense_mb} MB should be within 7% of 419.4"
        );
        assert!((report.overall_compression() - 8.0).abs() < 1e-9);
        let report16 = ModelStorageReport::for_model(&nmt_fc_layers(), 32, 16);
        assert!((report16.overall_compression() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn eie_storage_doubles_per_weight_bits() {
        // Fig. 4 / Section II-B: with 4-bit weights and 4-bit relative indices the
        // per-weight cost of EIE is ~8 bits, i.e. roughly 2x the PD cost at equal nnz.
        let shape = LayerShape::new(4096, 4096);
        let density = 0.1;
        let eie = eie_storage(shape, density, 4, 4, 16, 32);
        let pd = permdnn_storage(shape, 10, 4);
        // Same number of stored weights (10% density ≈ p=10), EIE ≈ 2x bits.
        let ratio = eie.total_bits() as f64 / pd.total_bits() as f64;
        assert!(ratio > 1.8 && ratio < 2.2, "EIE/PD bit ratio {ratio}");
        assert!(eie.index_overhead_fraction() > 0.45);
    }

    #[test]
    fn csr_overhead_grows_with_matrix_width() {
        let narrow = csr_storage(LayerShape::new(1024, 256), 0.1, 16);
        let wide = csr_storage(LayerShape::new(1024, 65536), 0.1, 16);
        assert!(wide.index_overhead_fraction() > narrow.index_overhead_fraction());
    }

    #[test]
    fn compression_ratio_handles_zero() {
        let zero = StorageCost::default();
        assert!(compression_ratio(dense_storage(LayerShape::new(1, 1), 32), zero).is_infinite());
    }

    #[test]
    fn p_equals_one_is_lossless_dense() {
        let shape = LayerShape::new(128, 128);
        let pd = permdnn_storage(shape, 1, 32);
        let dense = dense_storage(shape, 32);
        assert_eq!(pd.total_bits(), dense.total_bits());
    }
}
