//! Block-permuted-diagonal weight matrices (Section III-A of the paper).

use pd_tensor::init::xavier_uniform;
use pd_tensor::Matrix;
use rand::Rng;

use crate::{PdError, PermutedDiagonalBlock};

/// How the per-block permutation parameters `k_l` are chosen (Section III-D).
///
/// The paper reports no task-performance difference between the two policies; the
/// `perm_indexing` experiment binary reproduces that ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PermutationIndexing {
    /// `k_l = l mod p` — the paper's default ("for a 4-by-16 block-permuted diagonal
    /// weight matrix with p = 4, k0..k3 are set as 0..3").
    #[default]
    Natural,
    /// `k_l` drawn uniformly at random from `0..p`.
    Random,
}

/// An `m × n` block-permuted-diagonal matrix with `p × p` permuted-diagonal blocks.
///
/// The matrix is tiled by `ceil(m/p) × ceil(n/p)` blocks (zero-padding the ragged edge,
/// footnote 3 of the paper). Block `l` (`l = block_row · n_block_cols + block_col`) has a
/// permutation parameter `k_l`, and its only non-zeros are at `(c, (c + k_l) mod p)`
/// within the block. Following Eqn. (1), entry `(i, j)` is
///
/// ```text
/// w_ij = q[l·p + c]   if (c + k_l) mod p == d,   else 0
/// ```
///
/// with `c = i mod p`, `d = j mod p`. Only the `q` vector (one value per block row-slot)
/// and the small `k_l` vector are stored: the compression ratio over a dense matrix is
/// exactly `p`, with no per-entry index storage at all.
///
/// # Example
///
/// ```
/// use permdnn_core::{BlockPermDiagMatrix, PermutationIndexing};
///
/// let w = BlockPermDiagMatrix::zeros(8, 8, 4, PermutationIndexing::Natural).unwrap();
/// assert_eq!(w.compression_ratio(), 4.0);
/// assert_eq!(w.stored_weights(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPermDiagMatrix {
    rows: usize,
    cols: usize,
    p: usize,
    block_rows: usize,
    block_cols: usize,
    /// Permutation parameter `k_l` per block, indexed `l = block_row * block_cols + block_col`.
    perms: Vec<usize>,
    /// Stored non-zero values `q`, indexed `l * p + c` where `c` is the row within block `l`.
    values: Vec<f32>,
    /// Column-kernel cache: `kernel_col_ptr[j]..kernel_col_ptr[j+1]` indexes
    /// the entries of column `j` in `kernel_rows` / `kernel_vals`. Structure
    /// only — value *indices*, never value copies, so training updates through
    /// [`values_mut`](Self::values_mut) stay visible. Built once in
    /// [`new`](Self::new) (perms are immutable after construction), it
    /// replaces the per-call modulo arithmetic of
    /// [`column_nonzeros`](Self::column_nonzeros) on the matvec hot path.
    kernel_col_ptr: Vec<u32>,
    /// Output row of each cached column entry.
    kernel_rows: Vec<u32>,
    /// Index into `values` of each cached column entry.
    kernel_vals: Vec<u32>,
}

impl BlockPermDiagMatrix {
    /// Creates a matrix from explicit permutation parameters and stored values.
    ///
    /// `perms.len()` must equal the number of blocks and `values.len()` must equal
    /// `num_blocks * p`.
    ///
    /// # Errors
    ///
    /// Returns [`PdError`] if `p == 0`, any `k_l >= p`, or the slices have wrong lengths.
    pub fn new(
        rows: usize,
        cols: usize,
        p: usize,
        perms: Vec<usize>,
        values: Vec<f32>,
    ) -> Result<Self, PdError> {
        if p == 0 {
            return Err(PdError::ZeroBlockSize);
        }
        let block_rows = rows.div_ceil(p);
        let block_cols = cols.div_ceil(p);
        let nblocks = block_rows * block_cols;
        if perms.len() != nblocks {
            return Err(PdError::PermutationCountMismatch {
                got: perms.len(),
                expected: nblocks,
            });
        }
        if let Some(&k) = perms.iter().find(|&&k| k >= p) {
            return Err(PdError::InvalidPermutation { k, p });
        }
        if values.len() != nblocks * p {
            return Err(PdError::ValueCountMismatch {
                got: values.len(),
                expected: nblocks * p,
            });
        }
        // Build the column-kernel cache: the same (row, value-index) walk
        // `column_nonzeros` produces, flattened into CSC-style arrays so the
        // matvec kernel streams plain indices instead of recomputing
        // `(d + p - k_l) % p` per entry per call.
        let mut kernel_col_ptr = Vec::with_capacity(cols + 1);
        let mut kernel_rows = Vec::with_capacity(block_rows * cols);
        let mut kernel_vals = Vec::with_capacity(block_rows * cols);
        kernel_col_ptr.push(0u32);
        for j in 0..cols {
            let d = j % p;
            let bc = j / p;
            for br in 0..block_rows {
                let l = br * block_cols + bc;
                let c = (d + p - perms[l]) % p;
                let i = br * p + c;
                if i < rows {
                    kernel_rows.push(i as u32);
                    kernel_vals.push((l * p + c) as u32);
                }
            }
            kernel_col_ptr.push(kernel_rows.len() as u32);
        }
        Ok(BlockPermDiagMatrix {
            rows,
            cols,
            p,
            block_rows,
            block_cols,
            perms,
            values,
            kernel_col_ptr,
            kernel_rows,
            kernel_vals,
        })
    }

    /// Creates an all-zero matrix with permutation parameters chosen by `indexing`.
    ///
    /// # Errors
    ///
    /// Returns [`PdError::ZeroBlockSize`] if `p == 0`.
    pub fn zeros(
        rows: usize,
        cols: usize,
        p: usize,
        indexing: PermutationIndexing,
    ) -> Result<Self, PdError> {
        if p == 0 {
            return Err(PdError::ZeroBlockSize);
        }
        let block_rows = rows.div_ceil(p);
        let block_cols = cols.div_ceil(p);
        let nblocks = block_rows * block_cols;
        let perms = match indexing {
            PermutationIndexing::Natural => (0..nblocks).map(|l| l % p).collect(),
            PermutationIndexing::Random => vec![0; nblocks],
        };
        Self::new(rows, cols, p, perms, vec![0.0; nblocks * p])
    }

    /// Creates a randomly initialised matrix (Xavier-uniform values over the *stored*
    /// weights, natural permutation indexing).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn random(rows: usize, cols: usize, p: usize, rng: &mut impl Rng) -> Self {
        Self::random_with_indexing(rows, cols, p, PermutationIndexing::Natural, rng)
    }

    /// Creates a randomly initialised matrix with the requested permutation indexing.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn random_with_indexing(
        rows: usize,
        cols: usize,
        p: usize,
        indexing: PermutationIndexing,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(p > 0, "block size p must be non-zero");
        let block_rows = rows.div_ceil(p);
        let block_cols = cols.div_ceil(p);
        let nblocks = block_rows * block_cols;
        let perms: Vec<usize> = match indexing {
            PermutationIndexing::Natural => (0..nblocks).map(|l| l % p).collect(),
            PermutationIndexing::Random => (0..nblocks).map(|_| rng.gen_range(0..p)).collect(),
        };
        // Initialise with the variance the *equivalent dense layer* would use so that
        // activations keep a comparable scale despite the sparsity (the effective fan-in
        // per output is cols / p).
        let init = xavier_uniform(rng, 1, nblocks * p);
        let scale = (p as f32).sqrt();
        let values = init.as_slice().iter().map(|v| v * scale).collect();
        Self::new(rows, cols, p, perms, values).expect("constructed dimensions are consistent")
    }

    /// Logical number of rows `m`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical number of columns `n`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Block size `p` (equal to the compression ratio).
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of block rows (`ceil(m / p)`).
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of block columns (`ceil(n / p)`).
    pub fn block_cols(&self) -> usize {
        self.block_cols
    }

    /// Number of `p × p` blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_rows * self.block_cols
    }

    /// The per-block permutation parameters `k_l`.
    pub fn perms(&self) -> &[usize] {
        &self.perms
    }

    /// The stored non-zero values `q` (including padded slots for ragged edges).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access to the stored non-zero values.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Number of stored weights (`num_blocks * p`, i.e. `⌈m/p⌉·⌈n/p⌉·p`).
    pub fn stored_weights(&self) -> usize {
        self.values.len()
    }

    /// Compression ratio versus the dense `m × n` matrix, counting stored weights.
    ///
    /// For dimensions divisible by `p` this is exactly `p`.
    pub fn compression_ratio(&self) -> f64 {
        (self.rows * self.cols) as f64 / self.stored_weights() as f64
    }

    /// The permutation parameter of the block containing global entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of bounds.
    pub fn perm_at(&self, i: usize, j: usize) -> usize {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        let l = (i / self.p) * self.block_cols + (j / self.p);
        self.perms[l]
    }

    /// Entry `(i, j)` following Eqn. (1).
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is out of bounds.
    pub fn entry(&self, i: usize, j: usize) -> f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let c = i % self.p;
        let d = j % self.p;
        let l = (i / self.p) * self.block_cols + (j / self.p);
        if (c + self.perms[l]) % self.p == d {
            self.values[l * self.p + c]
        } else {
            0.0
        }
    }

    /// The stored value slot for block `(block_row, block_col)` and row-within-block `c`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn value_at(&self, block_row: usize, block_col: usize, c: usize) -> f32 {
        self.values[self.value_index(block_row, block_col, c)]
    }

    /// Mutable reference to the stored value slot (see [`value_at`](Self::value_at)).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn value_at_mut(&mut self, block_row: usize, block_col: usize, c: usize) -> &mut f32 {
        let idx = self.value_index(block_row, block_col, c);
        &mut self.values[idx]
    }

    /// Flat index into [`values`](Self::values) for `(block_row, block_col, c)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn value_index(&self, block_row: usize, block_col: usize, c: usize) -> usize {
        assert!(
            block_row < self.block_rows && block_col < self.block_cols && c < self.p,
            "block coordinate ({block_row},{block_col},{c}) out of range"
        );
        (block_row * self.block_cols + block_col) * self.p + c
    }

    /// Extracts block `(block_row, block_col)` as a [`PermutedDiagonalBlock`].
    ///
    /// # Panics
    ///
    /// Panics if the block coordinates are out of range.
    pub fn block(&self, block_row: usize, block_col: usize) -> PermutedDiagonalBlock {
        assert!(
            block_row < self.block_rows && block_col < self.block_cols,
            "block ({block_row},{block_col}) out of range"
        );
        let l = block_row * self.block_cols + block_col;
        let values = self.values[l * self.p..(l + 1) * self.p].to_vec();
        PermutedDiagonalBlock::new(values, self.perms[l])
            .expect("block invariants hold by construction")
    }

    /// Expands into a dense [`Matrix`] (zero everywhere off the permuted diagonals).
    pub fn to_dense(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.entry(i, j))
    }

    /// Builds a block-permuted-diagonal matrix from a dense matrix that already has the
    /// structure (every non-zero sits on the permuted diagonal implied by `perms`).
    ///
    /// Use [`crate::approx::pd_approximate`] instead when the dense matrix is arbitrary
    /// and you want the l2-optimal projection.
    ///
    /// # Errors
    ///
    /// Returns [`PdError::NotPermutedDiagonal`] if a non-zero lies off the permuted
    /// diagonal, plus the usual construction errors.
    pub fn from_dense_exact(dense: &Matrix, p: usize, perms: Vec<usize>) -> Result<Self, PdError> {
        let (rows, cols) = dense.shape();
        let mut out = Self::new(
            rows,
            cols,
            p,
            perms,
            vec![0.0; rows.div_ceil(p) * cols.div_ceil(p) * p],
        )?;
        for i in 0..rows {
            for j in 0..cols {
                let v = dense[(i, j)];
                if v == 0.0 {
                    continue;
                }
                let c = i % p;
                let d = j % p;
                let l = (i / p) * out.block_cols + (j / p);
                if (c + out.perms[l]) % p == d {
                    out.values[l * p + c] = v;
                } else {
                    return Err(PdError::NotPermutedDiagonal { row: i, col: j });
                }
            }
        }
        Ok(out)
    }

    /// Number of structurally non-zero entries within the logical `m × n` bounds.
    pub fn structural_nonzeros(&self) -> usize {
        let mut count = 0;
        for br in 0..self.block_rows {
            for bc in 0..self.block_cols {
                let l = br * self.block_cols + bc;
                for c in 0..self.p {
                    let i = br * self.p + c;
                    let j = bc * self.p + (c + self.perms[l]) % self.p;
                    if i < self.rows && j < self.cols {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Number of structural non-zeros in each row — constant (`block_cols`) for interior
    /// rows, which is the even-distribution property that eliminates load imbalance
    /// (Section V-D).
    pub fn row_nonzero_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.rows];
        for br in 0..self.block_rows {
            for bc in 0..self.block_cols {
                let l = br * self.block_cols + bc;
                for c in 0..self.p {
                    let i = br * self.p + c;
                    let j = bc * self.p + (c + self.perms[l]) % self.p;
                    if i < self.rows && j < self.cols {
                        counts[i] += 1;
                    }
                }
            }
        }
        counts
    }

    /// Number of structural non-zeros in each column (constant for interior columns).
    pub fn col_nonzero_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cols];
        for br in 0..self.block_rows {
            for bc in 0..self.block_cols {
                let l = br * self.block_cols + bc;
                for c in 0..self.p {
                    let i = br * self.p + c;
                    let j = bc * self.p + (c + self.perms[l]) % self.p;
                    if i < self.rows && j < self.cols {
                        counts[j] += 1;
                    }
                }
            }
        }
        counts
    }

    /// Applies `f` to every stored weight (used for quantization and weight sharing).
    pub fn map_values_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// For column `j`, iterates over the `(row, stored-value-index)` pairs of the
    /// structural non-zeros in that column, in increasing row order.
    ///
    /// This is exactly the set of `(row index, weight)` pairs the PERMDNN hardware fetches
    /// from one weight-SRAM row during column-wise processing (Fig. 8): one non-zero per
    /// block row, whose row index is recovered by the accumulation selector's modulo
    /// circuit rather than stored.
    pub fn column_nonzeros(&self, j: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        let d = j % self.p;
        let bc = j / self.p;
        let rows = self.rows;
        let p = self.p;
        let block_cols = self.block_cols;
        (0..self.block_rows).filter_map(move |br| {
            let l = br * block_cols + bc;
            let c = (d + p - self.perms[l]) % p;
            let i = br * p + c;
            if i < rows {
                Some((i, l * p + c))
            } else {
                None
            }
        })
    }

    /// The cached column-kernel arrays `(col_ptr, rows, value_indices)`:
    /// `col_ptr[j]..col_ptr[j+1]` indexes column `j`'s entries, in exactly the
    /// order [`column_nonzeros`](Self::column_nonzeros) yields them. The fast
    /// matvec kernel and the batched cache-blocked kernel stream these instead
    /// of recomputing the permutation arithmetic per call.
    pub fn column_kernel(&self) -> (&[u32], &[u32], &[u32]) {
        (&self.kernel_col_ptr, &self.kernel_rows, &self.kernel_vals)
    }

    /// The pre-cache column-wise matvec: recomputes `(d + p - k_l) % p` for
    /// every entry on every call through [`column_nonzeros`](Self::column_nonzeros).
    ///
    /// Retained as the wall-clock baseline the cached kernel is measured and
    /// bit-compared against (`wall_sweep` / `tests/wall.rs`); production call
    /// sites go through `CompressedLinear::matvec_into`, which uses the cache.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec_reference(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "input length mismatch");
        assert_eq!(y.len(), self.rows, "output length mismatch");
        y.fill(0.0);
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for (i, value_idx) in self.column_nonzeros(j) {
                y[i] += self.values[value_idx] * xj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_tensor::init::seeded_rng;

    fn sample(rows: usize, cols: usize, p: usize) -> BlockPermDiagMatrix {
        BlockPermDiagMatrix::random(rows, cols, p, &mut seeded_rng(17))
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            BlockPermDiagMatrix::new(4, 4, 0, vec![], vec![]),
            Err(PdError::ZeroBlockSize)
        ));
        assert!(matches!(
            BlockPermDiagMatrix::new(4, 4, 2, vec![0, 1, 2, 0], vec![0.0; 8]),
            Err(PdError::InvalidPermutation { .. })
        ));
        assert!(matches!(
            BlockPermDiagMatrix::new(4, 4, 2, vec![0, 1, 0], vec![0.0; 8]),
            Err(PdError::PermutationCountMismatch { .. })
        ));
        assert!(matches!(
            BlockPermDiagMatrix::new(4, 4, 2, vec![0, 1, 0, 1], vec![0.0; 7]),
            Err(PdError::ValueCountMismatch { .. })
        ));
        assert!(BlockPermDiagMatrix::new(4, 4, 2, vec![0, 1, 0, 1], vec![0.0; 8]).is_ok());
    }

    #[test]
    fn natural_indexing_assigns_l_mod_p() {
        let w = BlockPermDiagMatrix::zeros(8, 16, 4, PermutationIndexing::Natural).unwrap();
        // 2 block rows x 4 block cols = 8 blocks; k_l = l mod 4.
        assert_eq!(w.perms(), &[0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn entry_matches_eqn1_structure() {
        let w = sample(8, 8, 4);
        for i in 0..8 {
            for j in 0..8 {
                let c = i % 4;
                let d = j % 4;
                let k = w.perm_at(i, j);
                let v = w.entry(i, j);
                if (c + k) % 4 == d {
                    // On the permuted diagonal: the stored value (may be any float).
                    assert_eq!(v, w.value_at(i / 4, j / 4, c));
                } else {
                    assert_eq!(v, 0.0, "off-diagonal entry ({i},{j}) must be zero");
                }
            }
        }
    }

    #[test]
    fn dense_roundtrip_exact() {
        let w = sample(12, 20, 4);
        let dense = w.to_dense();
        let back = BlockPermDiagMatrix::from_dense_exact(&dense, 4, w.perms().to_vec()).unwrap();
        assert_eq!(back.to_dense(), dense);
    }

    #[test]
    fn from_dense_exact_rejects_off_diagonal() {
        let mut dense = sample(8, 8, 4).to_dense();
        let perms = sample(8, 8, 4).perms().to_vec();
        // Find a structurally-zero position and poke a value there.
        let w = sample(8, 8, 4);
        'outer: for i in 0..8 {
            for j in 0..8 {
                if w.entry(i, j) == 0.0 {
                    dense[(i, j)] = 1.0;
                    break 'outer;
                }
            }
        }
        assert!(matches!(
            BlockPermDiagMatrix::from_dense_exact(&dense, 4, perms),
            Err(PdError::NotPermutedDiagonal { .. })
        ));
    }

    #[test]
    fn compression_ratio_is_p_for_divisible_dims() {
        let w = sample(20, 40, 5);
        assert_eq!(w.stored_weights(), 20 * 40 / 5);
        assert!((w.compression_ratio() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn compression_accounts_for_padding() {
        // 10x10 with p=4 pads to 12x12: 3x3 blocks x 4 = 36 stored weights.
        let w = BlockPermDiagMatrix::zeros(10, 10, 4, PermutationIndexing::Natural).unwrap();
        assert_eq!(w.stored_weights(), 36);
        assert!(w.compression_ratio() < 4.0);
    }

    #[test]
    fn row_and_col_nonzeros_are_balanced() {
        let w = sample(16, 32, 4);
        let rows = w.row_nonzero_counts();
        let cols = w.col_nonzero_counts();
        assert!(rows.iter().all(|&c| c == 32 / 4));
        assert!(cols.iter().all(|&c| c == 16 / 4));
        assert_eq!(w.structural_nonzeros(), 16 * 32 / 4);
    }

    #[test]
    fn column_nonzeros_match_dense_column() {
        let w = sample(12, 8, 4);
        let dense = w.to_dense();
        for j in 0..8 {
            let from_iter: Vec<usize> = w.column_nonzeros(j).map(|(i, _)| i).collect();
            let from_dense: Vec<usize> = (0..12).filter(|&i| dense[(i, j)] != 0.0).collect();
            // Structural non-zeros include slots whose stored value may be 0.0; the dense
            // non-zeros must be a subset, and with random init they almost surely match.
            for i in &from_dense {
                assert!(from_iter.contains(i), "col {j} row {i} missing");
            }
            assert_eq!(from_iter.len(), 3, "one non-zero per block row");
            // Values fetched through the stored-value index must match the dense entries.
            for (i, vi) in w.column_nonzeros(j) {
                assert_eq!(w.values()[vi], dense[(i, j)]);
            }
        }
    }

    #[test]
    fn random_indexing_uses_varied_perms() {
        let w = BlockPermDiagMatrix::random_with_indexing(
            64,
            64,
            8,
            PermutationIndexing::Random,
            &mut seeded_rng(3),
        );
        let distinct: std::collections::HashSet<_> = w.perms().iter().copied().collect();
        assert!(distinct.len() > 1, "random indexing should vary k_l");
        assert!(w.perms().iter().all(|&k| k < 8));
    }

    #[test]
    fn map_values_in_place_applies_everywhere() {
        let mut w = sample(8, 8, 2);
        w.map_values_in_place(|_| 1.5);
        assert!(w.values().iter().all(|&v| v == 1.5));
        assert_eq!(w.entry(0, w.perm_at(0, 0)), 1.5);
    }

    #[test]
    fn block_extraction_matches_dense_block() {
        let w = sample(8, 12, 4);
        let dense = w.to_dense();
        for br in 0..2 {
            for bc in 0..3 {
                let blk = w.block(br, bc);
                let dense_blk = dense.block(br, bc, 4);
                assert!(blk.to_dense().approx_eq(&dense_blk, 0.0));
            }
        }
    }
}
