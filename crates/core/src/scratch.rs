//! Reusable scratch arenas for the kernel hot path.
//!
//! Every matvec used to pay for its own temporaries: the circulant kernel
//! allocated padded inputs and complex spectra, the quantized column-sparse
//! kernel a `Vec` of accumulators, and the batched default a fresh output
//! matrix — per call, on every request. [`Scratch`] is the one bag those
//! temporaries now live in: a type-keyed arena that each kernel pulls its own
//! buffer struct out of with [`Scratch::slot`], growing it on first use and
//! reusing it on every call after.
//!
//! Ownership model: `permdnn_runtime::ParallelExecutor` owns one `Scratch`
//! per worker slot, so concurrent shards never share buffers and sequential
//! calls on the same executor are allocation-free in steady state. Call sites
//! without an executor (tests, one-shot tools) pass `&mut Scratch::new()` and
//! get exactly the old allocate-per-call behaviour.
//!
//! Buffers are *caches, not state*: every kernel must fully initialise the
//! slot contents it reads (`clear`/`resize`/`fill`), so results are
//! bit-identical whether a scratch is fresh or reused — the invariant
//! `tests/wall.rs` pins for every format.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// A type-keyed arena of reusable kernel buffers.
///
/// Each distinct buffer type `T` gets one slot, created on first access via
/// `T::default()` and kept for the arena's lifetime. Formats define their own
/// private buffer structs (e.g. the circulant FFT scratch, the quantized
/// accumulator scratch), so two formats never collide on a slot.
///
/// # Example
///
/// ```
/// use permdnn_core::scratch::Scratch;
///
/// #[derive(Default)]
/// struct MyBuffers {
///     acc: Vec<f32>,
/// }
///
/// let mut scratch = Scratch::new();
/// let buf = scratch.slot::<MyBuffers>();
/// buf.acc.resize(128, 0.0);          // first call: allocates
/// let buf = scratch.slot::<MyBuffers>();
/// assert_eq!(buf.acc.len(), 128);     // later calls: reuse
/// ```
#[derive(Default)]
pub struct Scratch {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl Scratch {
    /// An empty arena; slots are created lazily on first [`slot`](Self::slot).
    pub fn new() -> Self {
        Self::default()
    }

    /// The arena's buffer of type `T`, created via `T::default()` on first
    /// access. The contents carry over from the previous call that used the
    /// slot — callers must initialise whatever they read.
    pub fn slot<T: Default + Send + 'static>(&mut self) -> &mut T {
        self.slots
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(T::default()))
            .downcast_mut::<T>()
            .expect("slot is keyed by its own TypeId")
    }

    /// Number of distinct buffer types currently held.
    pub fn occupied_slots(&self) -> usize {
        self.slots.len()
    }
}

impl std::fmt::Debug for Scratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scratch")
            .field("occupied_slots", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct BufA(Vec<f32>);
    #[derive(Default)]
    struct BufB(Vec<i32>);

    #[test]
    fn slots_are_created_lazily_and_reused() {
        let mut s = Scratch::new();
        assert_eq!(s.occupied_slots(), 0);
        s.slot::<BufA>().0.push(1.0);
        s.slot::<BufA>().0.push(2.0);
        assert_eq!(s.slot::<BufA>().0, vec![1.0, 2.0]);
        assert_eq!(s.occupied_slots(), 1);
    }

    #[test]
    fn distinct_types_get_distinct_slots() {
        let mut s = Scratch::new();
        s.slot::<BufA>().0.resize(4, 0.0);
        s.slot::<BufB>().0.resize(7, 0);
        assert_eq!(s.slot::<BufA>().0.len(), 4);
        assert_eq!(s.slot::<BufB>().0.len(), 7);
        assert_eq!(s.occupied_slots(), 2);
    }

    #[test]
    fn capacity_survives_clearing() {
        let mut s = Scratch::new();
        let buf = s.slot::<BufA>();
        buf.0.resize(1024, 0.0);
        let cap = buf.0.capacity();
        buf.0.clear();
        assert!(s.slot::<BufA>().0.capacity() >= cap, "reuse keeps capacity");
    }

    #[test]
    fn scratch_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Scratch>();
    }
}
