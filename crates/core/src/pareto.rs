//! Three-objective Pareto accounting for compression-format selection.
//!
//! The autotuner (ROADMAP item 5) scores every candidate model on the three
//! axes the paper's evaluation trades off — task accuracy (Tables II–V),
//! real multiplications per example (Table VI) and compressed storage
//! (Fig. 4) — and keeps the candidates no other candidate beats on all
//! three. This module is the format-agnostic arithmetic of that search:
//! dominance, frontier extraction and knee-point selection over plain
//! [`Objectives`] values, deliberately independent of any weight-format or
//! model type so `bench` can drive it and tests can probe it in isolation.

/// One candidate's score on the three objectives the tuner optimises:
/// accuracy is maximised, multiplications and snapshot bytes are minimised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Top-1 accuracy on the held-out evaluation set (maximise).
    pub accuracy: f64,
    /// Real multiplications per served example (minimise).
    pub mul_count: u64,
    /// On-disk snapshot size in bytes (minimise).
    pub snapshot_bytes: u64,
}

impl Objectives {
    /// Number of objectives on which `self` is *strictly* better than
    /// `other` (0..=3).
    pub fn strictly_better_count(&self, other: &Objectives) -> usize {
        usize::from(self.accuracy > other.accuracy)
            + usize::from(self.mul_count < other.mul_count)
            + usize::from(self.snapshot_bytes < other.snapshot_bytes)
    }

    /// Number of objectives on which `self` is strictly *worse* than
    /// `other` (0..=3).
    pub fn strictly_worse_count(&self, other: &Objectives) -> usize {
        other.strictly_better_count(self)
    }
}

/// Pareto dominance: `a` dominates `b` when it is at least as good on every
/// objective and strictly better on at least one.
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    let no_worse = a.accuracy >= b.accuracy
        && a.mul_count <= b.mul_count
        && a.snapshot_bytes <= b.snapshot_bytes;
    no_worse && a.strictly_better_count(b) >= 1
}

/// Indices of the Pareto frontier of `scored`: every point not dominated by
/// any other point. Duplicated points (identical on all three objectives)
/// all survive — none dominates the other. The returned indices are in
/// ascending order, so the frontier is deterministic for a deterministic
/// input order.
pub fn pareto_frontier(scored: &[Objectives]) -> Vec<usize> {
    (0..scored.len())
        .filter(|&i| !scored.iter().any(|other| dominates(other, &scored[i])))
        .collect()
}

/// Selects the deployment "knee" among `frontier` indices into `scored`: of
/// the frontier points whose accuracy is at least `accuracy_floor`, the one
/// with the fewest multiplications, breaking ties by fewer snapshot bytes,
/// then higher accuracy, then lowest index (fully deterministic). Falls back
/// to the most accurate frontier point (ties again broken by muls, bytes,
/// index) when nothing meets the floor, so the tuner always has a pick.
///
/// Returns `None` only for an empty frontier.
pub fn knee_point(scored: &[Objectives], frontier: &[usize], accuracy_floor: f64) -> Option<usize> {
    let eligible: Vec<usize> = frontier
        .iter()
        .copied()
        .filter(|&i| scored[i].accuracy >= accuracy_floor)
        .collect();
    let pick_cheapest = |candidates: &[usize]| -> Option<usize> {
        candidates.iter().copied().min_by(|&a, &b| {
            scored[a]
                .mul_count
                .cmp(&scored[b].mul_count)
                .then(scored[a].snapshot_bytes.cmp(&scored[b].snapshot_bytes))
                .then(
                    scored[b]
                        .accuracy
                        .partial_cmp(&scored[a].accuracy)
                        .expect("accuracies are finite"),
                )
                .then(a.cmp(&b))
        })
    };
    if !eligible.is_empty() {
        return pick_cheapest(&eligible);
    }
    // Nothing meets the floor: take the most accurate point, cheapest first
    // among equals.
    frontier.iter().copied().min_by(|&a, &b| {
        scored[b]
            .accuracy
            .partial_cmp(&scored[a].accuracy)
            .expect("accuracies are finite")
            .then(scored[a].mul_count.cmp(&scored[b].mul_count))
            .then(scored[a].snapshot_bytes.cmp(&scored[b].snapshot_bytes))
            .then(a.cmp(&b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(accuracy: f64, mul_count: u64, snapshot_bytes: u64) -> Objectives {
        Objectives {
            accuracy,
            mul_count,
            snapshot_bytes,
        }
    }

    #[test]
    fn dominance_requires_no_worse_everywhere_and_better_somewhere() {
        assert!(dominates(&o(0.9, 100, 100), &o(0.9, 200, 100)));
        assert!(dominates(&o(0.95, 100, 100), &o(0.9, 200, 300)));
        // Equal points do not dominate each other.
        assert!(!dominates(&o(0.9, 100, 100), &o(0.9, 100, 100)));
        // A trade-off (better muls, worse accuracy) is not dominance.
        assert!(!dominates(&o(0.8, 50, 100), &o(0.9, 100, 100)));
        assert!(!dominates(&o(0.9, 100, 100), &o(0.8, 50, 100)));
    }

    #[test]
    fn strictly_better_counts_are_symmetric_complements_on_distinct_values() {
        let a = o(0.9, 50, 300);
        let b = o(0.8, 100, 200);
        assert_eq!(a.strictly_better_count(&b), 2); // accuracy + muls
        assert_eq!(a.strictly_worse_count(&b), 1); // bytes
    }

    #[test]
    fn frontier_drops_dominated_points_and_keeps_tradeoffs() {
        let scored = vec![
            o(0.95, 1000, 4000), // 0: accurate but big — frontier
            o(0.90, 250, 1000),  // 1: the trade-off — frontier
            o(0.90, 500, 2000),  // 2: dominated by 1
            o(0.85, 250, 1000),  // 3: dominated by 1
            o(0.80, 100, 500),   // 4: cheapest — frontier
        ];
        assert_eq!(pareto_frontier(&scored), vec![0, 1, 4]);
    }

    #[test]
    fn duplicate_points_all_survive_the_frontier() {
        let scored = vec![o(0.9, 100, 100), o(0.9, 100, 100)];
        assert_eq!(pareto_frontier(&scored), vec![0, 1]);
    }

    #[test]
    fn empty_input_gives_an_empty_frontier_and_no_knee() {
        assert!(pareto_frontier(&[]).is_empty());
        assert_eq!(knee_point(&[], &[], 0.5), None);
    }

    #[test]
    fn knee_takes_the_cheapest_point_meeting_the_accuracy_floor() {
        let scored = vec![o(0.95, 1000, 4000), o(0.90, 250, 1000), o(0.80, 100, 500)];
        let frontier = pareto_frontier(&scored);
        assert_eq!(knee_point(&scored, &frontier, 0.88), Some(1));
        // A floor nothing on the cheap side meets pushes the knee upward.
        assert_eq!(knee_point(&scored, &frontier, 0.94), Some(0));
        // A floor nothing meets falls back to the most accurate point.
        assert_eq!(knee_point(&scored, &frontier, 0.99), Some(0));
    }

    #[test]
    fn knee_ties_break_by_bytes_then_accuracy_then_index() {
        let scored = vec![
            o(0.90, 100, 900),
            o(0.90, 100, 800), // fewer bytes wins
            o(0.92, 100, 800), // more accurate wins over index 1
        ];
        let frontier = vec![0, 1, 2];
        assert_eq!(knee_point(&scored, &frontier, 0.5), Some(2));
    }
}
