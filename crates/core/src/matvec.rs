//! Forward-propagation kernels for block-permuted-diagonal matrices (Section III-B).
//!
//! Two functionally identical kernels are provided:
//!
//! * [`matvec`] / [`BlockPermDiagMatrix::matvec`] — the mathematically direct row-oriented
//!   evaluation of `a_i = Σ_g w_ij x_j` with `j = ((i + k_l) mod p) + g·p`.
//! * [`matvec_column_wise`] — the column-wise, input-zero-skipping order the PERMDNN
//!   hardware uses (Fig. 5): for every *non-zero* `x_j`, broadcast it to all PEs and
//!   accumulate `w_j · x_j` into the output registers. Columns whose activation is zero
//!   are skipped entirely, which is where the architecture's dynamic-sparsity savings
//!   come from.
//!
//! Both kernels perform `m · n / p` multiplications in the worst (fully dense input) case,
//! versus `m · n` for the dense layer — the `p ×` computation reduction of the paper.

use crate::{BlockPermDiagMatrix, PdError};

/// Row-oriented forward propagation `a = W·x` (Eqn. in Section III-B).
///
/// # Errors
///
/// Returns [`PdError::DimensionMismatch`] if `x.len() != w.cols()`.
pub fn matvec(w: &BlockPermDiagMatrix, x: &[f32]) -> Result<Vec<f32>, PdError> {
    if x.len() != w.cols() {
        return Err(PdError::DimensionMismatch {
            op: "matvec",
            expected: w.cols(),
            got: x.len(),
        });
    }
    let p = w.p();
    let block_cols = w.block_cols();
    let mut a = vec![0.0f32; w.rows()];
    #[allow(clippy::needless_range_loop)] // direct rendering of the Section III-B index math
    for i in 0..w.rows() {
        let c = i % p;
        let br = i / p;
        let mut acc = 0.0f32;
        for g in 0..block_cols {
            let l = br * block_cols + g;
            let k = w.perms()[l];
            let j = g * p + (c + k) % p;
            if j < w.cols() {
                acc += w.values()[l * p + c] * x[j];
            }
        }
        a[i] = acc;
    }
    Ok(a)
}

/// Column-wise forward propagation with input zero-skipping (the hardware dataflow of
/// Fig. 5).
///
/// Returns the output vector together with the number of columns actually processed
/// (i.e. the number of non-zero input activations) — the quantity that determines the
/// PERMDNN engine's cycle count.
///
/// # Errors
///
/// Returns [`PdError::DimensionMismatch`] if `x.len() != w.cols()`.
pub fn matvec_column_wise(
    w: &BlockPermDiagMatrix,
    x: &[f32],
) -> Result<(Vec<f32>, usize), PdError> {
    if x.len() != w.cols() {
        return Err(PdError::DimensionMismatch {
            op: "matvec_column_wise",
            expected: w.cols(),
            got: x.len(),
        });
    }
    let mut a = vec![0.0f32; w.rows()];
    let mut processed_columns = 0usize;
    for (j, &xj) in x.iter().enumerate() {
        if xj == 0.0 {
            continue; // zero-detector drops this activation before it reaches the PEs
        }
        processed_columns += 1;
        for (i, value_idx) in w.column_nonzeros(j) {
            a[i] += w.values()[value_idx] * xj;
        }
    }
    Ok((a, processed_columns))
}

/// Transposed product `y = Wᵀ·x`, the error back-propagation direction of Eqn. (3):
/// `∂J/∂x_j = Σ_g w_ij · ∂J/∂a_i` with `i = ((j + p − k_l) mod p) + g·p`.
///
/// # Errors
///
/// Returns [`PdError::DimensionMismatch`] if `x.len() != w.rows()`.
pub fn matvec_transposed(w: &BlockPermDiagMatrix, x: &[f32]) -> Result<Vec<f32>, PdError> {
    if x.len() != w.rows() {
        return Err(PdError::DimensionMismatch {
            op: "matvec_transposed",
            expected: w.rows(),
            got: x.len(),
        });
    }
    let p = w.p();
    let block_cols = w.block_cols();
    let block_rows = w.block_rows();
    let mut y = vec![0.0f32; w.cols()];
    #[allow(clippy::needless_range_loop)] // direct rendering of the Eqn. (3) index math
    for j in 0..w.cols() {
        let d = j % p;
        let bc = j / p;
        let mut acc = 0.0f32;
        for g in 0..block_rows {
            let l = g * block_cols + bc;
            let k = w.perms()[l];
            let c = (d + p - k) % p;
            let i = g * p + c;
            if i < w.rows() {
                acc += w.values()[l * p + c] * x[i];
            }
        }
        y[j] = acc;
    }
    Ok(y)
}

impl BlockPermDiagMatrix {
    /// Forward propagation `a = W·x` using the permuted-diagonal kernel.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`. Use [`matvec`] for the fallible variant.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        matvec(self, x).expect("input length must equal the number of columns")
    }

    /// Transposed product `Wᵀ·x` (back-propagation direction).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`. Use [`matvec_transposed`] for the fallible
    /// variant.
    pub fn matvec_transposed(&self, x: &[f32]) -> Vec<f32> {
        matvec_transposed(self, x).expect("input length must equal the number of rows")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PermutationIndexing;
    use pd_tensor::init::{seeded_rng, sparse_activation_vector};
    use rand::Rng;

    fn random_pd(rows: usize, cols: usize, p: usize, seed: u64) -> BlockPermDiagMatrix {
        BlockPermDiagMatrix::random(rows, cols, p, &mut seeded_rng(seed))
    }

    #[test]
    fn matvec_matches_dense_reference() {
        for &(rows, cols, p) in &[
            (8usize, 8usize, 4usize),
            (16, 32, 4),
            (12, 20, 5),
            (6, 9, 3),
        ] {
            let w = random_pd(rows, cols, p, 1);
            let mut rng = seeded_rng(2);
            let x: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let expected = w.to_dense().matvec(&x);
            let got = w.matvec(&x);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g - e).abs() < 1e-4, "{rows}x{cols} p={p}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn matvec_rejects_wrong_length() {
        let w = random_pd(8, 8, 4, 1);
        assert!(matches!(
            matvec(&w, &[0.0; 7]),
            Err(PdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn column_wise_matches_row_wise() {
        let w = random_pd(24, 36, 4, 3);
        let mut rng = seeded_rng(4);
        let x = sparse_activation_vector(&mut rng, 36, 0.5);
        let row_wise = w.matvec(&x);
        let (col_wise, processed) = matvec_column_wise(&w, &x).unwrap();
        for (a, b) in row_wise.iter().zip(col_wise.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
        let nonzeros = x.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(processed, nonzeros);
    }

    #[test]
    fn column_wise_skips_all_zero_input() {
        let w = random_pd(8, 8, 2, 5);
        let (y, processed) = matvec_column_wise(&w, &[0.0; 8]).unwrap();
        assert_eq!(processed, 0);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transposed_matches_dense_transpose() {
        for &(rows, cols, p) in &[(8usize, 8usize, 4usize), (16, 32, 8), (10, 15, 5)] {
            let w = random_pd(rows, cols, p, 7);
            let mut rng = seeded_rng(8);
            let x: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let expected = w.to_dense().transpose().matvec(&x);
            let got = w.matvec_transposed(&x);
            for (g, e) in got.iter().zip(expected.iter()) {
                assert!((g - e).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn transposed_rejects_wrong_length() {
        let w = random_pd(8, 12, 4, 1);
        assert!(matvec_transposed(&w, &[0.0; 12]).is_err());
        assert!(matvec_transposed(&w, &[0.0; 8]).is_ok());
    }

    #[test]
    fn ragged_dimensions_are_handled() {
        // 10x13 with p=4: padded blocks must not contribute out-of-range reads.
        let w = BlockPermDiagMatrix::random(10, 13, 4, &mut seeded_rng(11));
        let x: Vec<f32> = (0..13).map(|i| (i as f32 * 0.37).sin()).collect();
        let expected = w.to_dense().matvec(&x);
        let got = w.matvec(&x);
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-4);
        }
        let xt: Vec<f32> = (0..10).map(|i| (i as f32 * 0.21).cos()).collect();
        let expected_t = w.to_dense().transpose().matvec(&xt);
        let got_t = w.matvec_transposed(&xt);
        for (g, e) in got_t.iter().zip(expected_t.iter()) {
            assert!((g - e).abs() < 1e-4);
        }
    }

    #[test]
    fn linearity_of_kernel() {
        let w = random_pd(16, 16, 4, 13);
        let mut rng = seeded_rng(14);
        let x1: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x2: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sum: Vec<f32> = x1.iter().zip(x2.iter()).map(|(a, b)| a + b).collect();
        let y1 = w.matvec(&x1);
        let y2 = w.matvec(&x2);
        let ysum = w.matvec(&sum);
        for i in 0..16 {
            assert!((ysum[i] - (y1[i] + y2[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn identity_permutation_with_unit_values_acts_as_block_sum() {
        // p == cols: a single block column; with k=0 and all values 1, y_i = x_{i mod p}.
        let w = BlockPermDiagMatrix::new(4, 4, 4, vec![0], vec![1.0; 4]).unwrap();
        let y = w.matvec(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn random_permutation_indexing_still_correct() {
        let w = BlockPermDiagMatrix::random_with_indexing(
            32,
            24,
            4,
            PermutationIndexing::Random,
            &mut seeded_rng(21),
        );
        let mut rng = seeded_rng(22);
        let x: Vec<f32> = (0..24).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let expected = w.to_dense().matvec(&x);
        let got = w.matvec(&x);
        for (g, e) in got.iter().zip(expected.iter()) {
            assert!((g - e).abs() < 1e-4);
        }
    }
}
