//! A single `p × p` permuted-diagonal block.

use pd_tensor::Matrix;

use crate::PdError;

/// A `p × p` permuted-diagonal matrix: exactly one non-zero per row and per column, with
/// the non-zero of row `c` sitting at column `(c + k) mod p`.
///
/// This is the elementary building block of the PermDNN representation (Fig. 1(b) of the
/// paper). `k = 0` gives an ordinary diagonal matrix; other values give cyclic shifts of
/// it. Only the `p` values and the single parameter `k` are stored — a `p×` compression
/// over the dense `p × p` block with zero index overhead.
///
/// # Example
///
/// ```
/// use permdnn_core::PermutedDiagonalBlock;
///
/// let b = PermutedDiagonalBlock::new(vec![1.0, 2.0, 3.0], 1).unwrap();
/// // Row 0's non-zero is at column 1, row 2's wraps to column 0.
/// assert_eq!(b.entry(0, 1), 1.0);
/// assert_eq!(b.entry(2, 0), 3.0);
/// assert_eq!(b.entry(0, 0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PermutedDiagonalBlock {
    values: Vec<f32>,
    k: usize,
}

impl PermutedDiagonalBlock {
    /// Creates a block from its `p` stored values and permutation parameter `k`.
    ///
    /// # Errors
    ///
    /// Returns [`PdError::ZeroBlockSize`] if `values` is empty and
    /// [`PdError::InvalidPermutation`] if `k >= values.len()`.
    pub fn new(values: Vec<f32>, k: usize) -> Result<Self, PdError> {
        if values.is_empty() {
            return Err(PdError::ZeroBlockSize);
        }
        if k >= values.len() {
            return Err(PdError::InvalidPermutation { k, p: values.len() });
        }
        Ok(PermutedDiagonalBlock { values, k })
    }

    /// Creates an all-zero block of size `p` with permutation `k`.
    ///
    /// # Errors
    ///
    /// Returns [`PdError::ZeroBlockSize`] if `p == 0`, [`PdError::InvalidPermutation`] if
    /// `k >= p`.
    pub fn zeros(p: usize, k: usize) -> Result<Self, PdError> {
        Self::new(vec![0.0; p.max(1).min(p)], k).and_then(|b| {
            if p == 0 {
                Err(PdError::ZeroBlockSize)
            } else {
                Ok(b)
            }
        })
    }

    /// Block size `p`.
    pub fn p(&self) -> usize {
        self.values.len()
    }

    /// The permutation parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The stored non-zero values, indexed by row-within-block.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access to the stored values.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Column holding the non-zero of row `c`: `(c + k) mod p`.
    pub fn col_of_row(&self, c: usize) -> usize {
        (c + self.k) % self.p()
    }

    /// Row holding the non-zero of column `d`: `(d + p - k) mod p`.
    pub fn row_of_col(&self, d: usize) -> usize {
        (d + self.p() - self.k) % self.p()
    }

    /// Entry `(r, c)` of the dense `p × p` block this represents (Eqn. 1 restricted to one
    /// block).
    ///
    /// # Panics
    ///
    /// Panics if `r >= p` or `c >= p`.
    pub fn entry(&self, r: usize, c: usize) -> f32 {
        let p = self.p();
        assert!(r < p && c < p, "({r},{c}) out of bounds for block size {p}");
        if (r + self.k) % p == c {
            self.values[r]
        } else {
            0.0
        }
    }

    /// Expands into a dense `p × p` [`Matrix`].
    pub fn to_dense(&self) -> Matrix {
        let p = self.p();
        Matrix::from_fn(p, p, |r, c| self.entry(r, c))
    }

    /// Multiplies this block by a length-`p` vector slice: `y[r] += values[r] * x[(r+k)%p]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != p` or `y.len() != p`.
    pub fn matvec_accumulate(&self, x: &[f32], y: &mut [f32]) {
        let p = self.p();
        assert_eq!(x.len(), p, "input slice length mismatch");
        assert_eq!(y.len(), p, "output slice length mismatch");
        for r in 0..p {
            y[r] += self.values[r] * x[(r + self.k) % p];
        }
    }

    /// Number of real multiplications a mat-vec with this block costs (one per row).
    pub fn matvec_mul_count(&self) -> usize {
        self.p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_inputs() {
        assert_eq!(
            PermutedDiagonalBlock::new(vec![], 0),
            Err(PdError::ZeroBlockSize)
        );
        assert_eq!(
            PermutedDiagonalBlock::new(vec![1.0, 2.0], 2),
            Err(PdError::InvalidPermutation { k: 2, p: 2 })
        );
        assert!(PermutedDiagonalBlock::new(vec![1.0, 2.0], 1).is_ok());
    }

    #[test]
    fn k_zero_is_plain_diagonal() {
        let b = PermutedDiagonalBlock::new(vec![1.0, 2.0, 3.0], 0).unwrap();
        let d = b.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                if r == c {
                    assert_eq!(d[(r, c)], (r + 1) as f32);
                } else {
                    assert_eq!(d[(r, c)], 0.0);
                }
            }
        }
    }

    #[test]
    fn exactly_one_nonzero_per_row_and_col() {
        for k in 0..5 {
            let b = PermutedDiagonalBlock::new(vec![1.0; 5], k).unwrap();
            let d = b.to_dense();
            for r in 0..5 {
                let row_nnz = (0..5).filter(|&c| d[(r, c)] != 0.0).count();
                assert_eq!(row_nnz, 1, "row {r} with k={k}");
            }
            for c in 0..5 {
                let col_nnz = (0..5).filter(|&r| d[(r, c)] != 0.0).count();
                assert_eq!(col_nnz, 1, "col {c} with k={k}");
            }
        }
    }

    #[test]
    fn row_col_maps_are_inverse() {
        let b = PermutedDiagonalBlock::new(vec![0.0; 7], 3).unwrap();
        for c in 0..7 {
            assert_eq!(b.row_of_col(b.col_of_row(c)), c);
            assert_eq!(b.col_of_row(b.row_of_col(c)), c);
        }
    }

    #[test]
    fn matvec_matches_dense() {
        let b = PermutedDiagonalBlock::new(vec![1.0, -2.0, 0.5, 4.0], 3).unwrap();
        let x = vec![0.1, 0.2, 0.3, 0.4];
        let mut y = vec![0.0; 4];
        b.matvec_accumulate(&x, &mut y);
        let expected = b.to_dense().matvec(&x);
        for (a, e) in y.iter().zip(expected.iter()) {
            assert!((a - e).abs() < 1e-6);
        }
    }

    #[test]
    fn matvec_accumulates_on_top() {
        let b = PermutedDiagonalBlock::new(vec![1.0, 1.0], 0).unwrap();
        let mut y = vec![10.0, 20.0];
        b.matvec_accumulate(&[1.0, 2.0], &mut y);
        assert_eq!(y, vec![11.0, 22.0]);
    }

    #[test]
    fn mul_count_is_p() {
        let b = PermutedDiagonalBlock::new(vec![0.0; 6], 2).unwrap();
        assert_eq!(b.matvec_mul_count(), 6);
    }

    #[test]
    fn zeros_constructor() {
        let b = PermutedDiagonalBlock::zeros(4, 2).unwrap();
        assert_eq!(b.p(), 4);
        assert_eq!(b.k(), 2);
        assert!(b.values().iter().all(|&v| v == 0.0));
        assert!(PermutedDiagonalBlock::zeros(0, 0).is_err());
    }
}
