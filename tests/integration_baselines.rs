//! Integration tests comparing the three weight representations (permuted-diagonal,
//! block-circulant, unstructured sparse) on identical dense matrices: approximation
//! quality, storage and kernel agreement.

use pd_tensor::init::{seeded_rng, xavier_uniform};
use permdnn_circulant::approx::circulant_approximate;
use permdnn_core::approx::{pd_approximate, ApproxStrategy};
use permdnn_core::format::CompressedLinear;
use permdnn_core::storage::{eie_storage, permdnn_storage, LayerShape};
use permdnn_prune::{magnitude_prune, CscMatrix};

#[test]
fn structured_approximations_have_comparable_error_at_equal_compression() {
    let dense = xavier_uniform(&mut seeded_rng(1), 64, 64);
    let pd = pd_approximate(&dense, 8, ApproxStrategy::BestPerBlock).unwrap();
    let circ = circulant_approximate(&dense, 8).unwrap();
    // Both keep 1/8 of the degrees of freedom of the dense matrix; for an i.i.d. random
    // matrix both projections lose most of the energy, and neither collapses to zero.
    assert!(pd.relative_error > 0.5 && pd.relative_error < 1.0);
    assert!(circ.relative_error > 0.5 && circ.relative_error < 1.0);
    assert_eq!(pd.matrix.stored_weights(), circ.matrix.stored_weights());
}

#[test]
fn pruned_matrix_keeps_more_energy_but_needs_indices() {
    let dense = xavier_uniform(&mut seeded_rng(2), 64, 64);
    let pruned = magnitude_prune(&dense, 1.0 / 8.0);
    let kept_energy = pruned.pruned.frobenius_norm() / dense.frobenius_norm();
    let pd = pd_approximate(&dense, 8, ApproxStrategy::BestPerBlock).unwrap();
    let pd_energy = (1.0 - pd.relative_error * pd.relative_error)
        .max(0.0)
        .sqrt();
    // Magnitude pruning selects the largest entries, so it keeps more energy than any
    // position-constrained projection at the same non-zero budget...
    assert!(kept_energy as f64 >= pd_energy - 1e-6);
    // ...but it pays for that freedom with per-entry indices (Fig. 4's point).
    let shape = LayerShape::new(64, 64);
    let eie_bits = eie_storage(shape, 1.0 / 8.0, 4, 4, 16, 32).total_bits();
    let pd_bits = permdnn_storage(shape, 8, 4).total_bits();
    assert!(eie_bits as f64 > 1.5 * pd_bits as f64);
}

#[test]
fn all_formats_compute_the_same_linear_map_they_store() {
    // Every format is derived from the same dense matrix (by projection or
    // pruning), then verified purely through the CompressedLinear trait: the
    // kernel each format runs must agree with its own dense expansion. No
    // per-format matvec entry points appear below the construction step.
    let dense = xavier_uniform(&mut seeded_rng(3), 48, 48);
    let x: Vec<f32> = (0..48).map(|i| ((i as f32) * 0.13).sin()).collect();

    let operators: Vec<Box<dyn CompressedLinear>> = vec![
        Box::new(dense.clone()),
        Box::new(
            pd_approximate(&dense, 4, ApproxStrategy::BestPerBlock)
                .unwrap()
                .matrix,
        ),
        Box::new(circulant_approximate(&dense, 4).unwrap().matrix),
        Box::new(CscMatrix::from_dense(&magnitude_prune(&dense, 0.25).pruned)),
    ];

    for op in &operators {
        let got = op.matvec(&x).unwrap();
        let reference = op.to_dense().matvec(&x);
        assert_eq!(got.len(), op.out_dim());
        for (a, b) in got.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-3, "{}: {a} vs {b}", op.label());
        }
    }

    // All structured formats at p = k = 4 store the same number of weights.
    assert_eq!(operators[1].stored_weights(), operators[2].stored_weights());
}
