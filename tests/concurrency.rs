//! Concurrency and determinism suite for the parallel batched-inference
//! runtime.
//!
//! Locks in the two properties serving correctness rests on:
//!
//! 1. **Equivalence** — `ParallelExecutor::matmul` is bit-for-bit identical to
//!    the sequential `CompressedLinear::matmul` for every weight format and
//!    any worker count (row-granular sharding re-orders no floating-point
//!    operation), including batch sizes not divisible by the worker count.
//! 2. **Determinism** — the same ChaCha-seeded request stream produces
//!    identical batching decisions and identical outputs across runs *and*
//!    across worker counts: batch formation is a pure function of the arrival
//!    stream and the policy, never of execution speed.

use std::sync::Arc;

use permdnn::core::format::{BatchView, CompressedLinear};
use permdnn::core::BlockPermDiagMatrix;
use permdnn::nn::layers::WeightFormat;
use permdnn::nn::MlpClassifier;
use permdnn::runtime::{
    plan_batches, seeded_request_stream, serve, BatchConfig, ParallelExecutor, ServeConfig,
    ServiceModel, SingleLayerModel,
};
use permdnn::tensor::init::{seeded_rng, xavier_uniform};
use proptest::prelude::*;

/// Every registry format at the given shape (dimensions padded to multiples
/// of 4 so the structured formats get whole blocks).
fn registry_formats() -> [WeightFormat; 6] {
    [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 4 },
        WeightFormat::Circulant { k: 4 },
        WeightFormat::Circulant { k: 3 }, // non-2ᵗ: direct-kernel fallback
        WeightFormat::UnstructuredSparse { p: 4 },
        WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_matmul_is_bit_identical_for_every_format_and_worker_count(
        (rows4, cols4, batch, seed) in (1usize..=10, 1usize..=10, 1usize..=17, 0u64..300)
    ) {
        let (rows, cols) = (rows4 * 4, cols4 * 4);
        let mut rng = seeded_rng(seed);
        let xs_mat = xavier_uniform(&mut seeded_rng(seed ^ 0xface), batch, cols);
        let xs = BatchView::from_matrix(&xs_mat);
        for format in registry_formats() {
            let op: Arc<dyn CompressedLinear> = Arc::from(format.build(rows, cols, &mut rng));
            let sequential = op.matmul(&xs).unwrap();
            // 1, 2, 3 and 7 workers: batch sizes up to 17 are routinely not
            // divisible by the worker count.
            for workers in [1usize, 2, 3, 7] {
                let exec = ParallelExecutor::new(workers);
                let parallel = exec.matmul(&op, &xs).unwrap();
                prop_assert_eq!(
                    &parallel,
                    &sequential,
                    "{} with {} workers on a {}-row batch",
                    format.label(),
                    workers,
                    batch
                );
            }
        }
    }
}

#[test]
fn batching_decisions_are_identical_across_runs() {
    let cfg = BatchConfig::new(8, 12);
    let a = plan_batches(seeded_request_stream(99, 64, 4, 5.0), cfg);
    let b = plan_batches(seeded_request_stream(99, 64, 4, 5.0), cfg);
    assert_eq!(a, b, "same seed, same plan");
    assert!(a.len() > 1, "the stream should produce several batches");
    let served: usize = a.iter().map(|p| p.requests.len()).sum();
    assert_eq!(served, 64);

    let c = plan_batches(seeded_request_stream(100, 64, 4, 5.0), cfg);
    assert_ne!(a, c, "a different seed should batch differently");
}

#[test]
fn serving_is_deterministic_across_runs_and_worker_counts() {
    let op: Arc<dyn CompressedLinear> =
        Arc::new(BlockPermDiagMatrix::random(32, 32, 4, &mut seeded_rng(5)));
    let model = SingleLayerModel::new(op);
    let cfg = ServeConfig {
        batching: BatchConfig::new(8, 12),
        service: ServiceModel::default(),
    };
    let stream = seeded_request_stream(41, 48, 32, 4.0);

    let baseline = serve(&model, &ParallelExecutor::new(1), &cfg, stream.clone()).unwrap();
    let rerun = serve(&model, &ParallelExecutor::new(1), &cfg, stream.clone()).unwrap();
    assert_eq!(
        baseline, rerun,
        "same stream, same worker count: same report"
    );

    for workers in [2usize, 3, 7] {
        let exec = ParallelExecutor::new(workers);
        let report = serve(&model, &exec, &cfg, stream.clone()).unwrap();
        // Batching decisions are a function of the arrival stream only.
        assert_eq!(
            report.batch_sizes, baseline.batch_sizes,
            "{workers} workers changed the batching decisions"
        );
        // Outputs are bit-for-bit identical; only latency accounting may
        // change with worker count.
        assert_eq!(report.completed.len(), baseline.completed.len());
        for (got, want) in report.completed.iter().zip(baseline.completed.iter()) {
            assert_eq!(got.id, want.id, "{workers} workers reordered completions");
            assert_eq!(got.output, want.output, "request {} diverged", got.id);
        }
    }
}

#[test]
fn served_mlp_outputs_match_sequential_logits_for_every_format() {
    for format in registry_formats() {
        let model = MlpClassifier::new_frozen(16, &[24], 4, format, &mut seeded_rng(11));
        let cfg = ServeConfig {
            batching: BatchConfig::new(4, 6),
            service: ServiceModel::default(),
        };
        let stream = seeded_request_stream(17, 20, 16, 2.0);
        let exec = ParallelExecutor::new(3);
        let report = serve(&model, &exec, &cfg, stream.clone()).unwrap();
        assert_eq!(report.completed.len(), 20, "{}", format.label());
        for done in &report.completed {
            let expected = model.logits(&stream[done.id as usize].input);
            assert_eq!(
                done.output,
                expected,
                "{}: request {} diverged from sequential inference",
                format.label(),
                done.id
            );
        }
    }
}

#[test]
fn quantized_serving_is_bit_exact_across_worker_counts() {
    // The fixed-point backend through the full serving stack: a frozen MLP
    // quantized to 16 bits must produce bit-identical outputs for any worker
    // count, exactly like the f32 path — integer kernels shard by batch rows
    // and re-order nothing.
    for format in [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 4 },
        WeightFormat::Circulant { k: 4 }, // dequantize-fallback path
        WeightFormat::UnstructuredSparse { p: 4 },
    ] {
        let model = MlpClassifier::new_frozen(16, &[24], 4, format, &mut seeded_rng(31));
        let stream = seeded_request_stream(37, 24, 16, 2.0);
        let calibration: Vec<Vec<f32>> = stream.iter().map(|r| r.input.clone()).collect();
        let (q_model, _) = model.quantize(&calibration);
        let cfg = ServeConfig {
            batching: BatchConfig::new(4, 6),
            service: ServiceModel::fixed_point(),
        };
        let baseline = serve(&q_model, &ParallelExecutor::new(1), &cfg, stream.clone()).unwrap();
        for workers in [2usize, 3, 7] {
            let exec = ParallelExecutor::new(workers);
            let report = serve(&q_model, &exec, &cfg, stream.clone()).unwrap();
            assert_eq!(
                report.batch_sizes,
                baseline.batch_sizes,
                "{}: {workers} workers changed the batching decisions",
                format.label()
            );
            for (got, want) in report.completed.iter().zip(baseline.completed.iter()) {
                assert_eq!(got.id, want.id);
                assert_eq!(
                    got.output,
                    want.output,
                    "{}: quantized request {} diverged at {workers} workers",
                    format.label(),
                    got.id
                );
            }
        }
        // And the served outputs are the quantized model's own logits.
        for done in &baseline.completed {
            assert_eq!(
                done.output,
                q_model.logits(&stream[done.id as usize].input),
                "{}: request {}",
                format.label(),
                done.id
            );
        }
    }
}

#[test]
fn mixed_format_serving_is_bit_exact_across_worker_counts() {
    // The autotuner's output shape: different weight formats on different
    // layers of the same model. Worker-count invariance must hold exactly as
    // it does for uniform-format models — each layer's kernel shards by
    // batch rows independently of its neighbours' formats.
    let model = MlpClassifier::new_frozen_mixed(
        16,
        &[
            (24, WeightFormat::PermutedDiagonal { p: 4 }),
            (16, WeightFormat::EieEncoded { p: 4 }),
            (
                12,
                WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
            ),
        ],
        4,
        &mut seeded_rng(51),
    );
    let cfg = ServeConfig {
        batching: BatchConfig::new(4, 6),
        service: ServiceModel::default(),
    };
    let stream = seeded_request_stream(53, 24, 16, 2.0);
    let baseline = serve(&model, &ParallelExecutor::new(1), &cfg, stream.clone()).unwrap();
    for workers in [2usize, 3, 7] {
        let exec = ParallelExecutor::new(workers);
        let report = serve(&model, &exec, &cfg, stream.clone()).unwrap();
        assert_eq!(
            report.batch_sizes, baseline.batch_sizes,
            "{workers} workers changed the batching decisions"
        );
        for (got, want) in report.completed.iter().zip(baseline.completed.iter()) {
            assert_eq!(got.id, want.id);
            assert_eq!(
                got.output, want.output,
                "mixed-format request {} diverged at {workers} workers",
                got.id
            );
        }
    }
    for done in &baseline.completed {
        assert_eq!(
            done.output,
            model.logits(&stream[done.id as usize].input),
            "request {} diverged from sequential inference",
            done.id
        );
    }
}

#[test]
fn quantized_integer_matmul_is_bit_identical_for_every_format_and_worker_count() {
    use permdnn::core::qlinear::{QScheme, QuantizedLinear};
    let xs_mat = xavier_uniform(&mut seeded_rng(53), 9, 32);
    for format in registry_formats() {
        let op: Arc<dyn CompressedLinear> = Arc::from(format.build(20, 32, &mut seeded_rng(51)));
        let q = Arc::new(QuantizedLinear::from_op(
            Arc::clone(&op),
            QScheme::calibrate(1.0, op.max_weight_abs(), 16.0),
        ));
        let mut xs_raw = Vec::new();
        for i in 0..9 {
            xs_raw.extend(q.quantize_input(xs_mat.row(i)));
        }
        let sequential = q.matmul_q(&xs_raw, 9).unwrap();
        for workers in [1usize, 2, 3, 7] {
            let exec = ParallelExecutor::new(workers);
            let parallel = exec.matmul_q(&q, &xs_raw, 9).unwrap();
            assert_eq!(
                parallel,
                sequential,
                "{} with {workers} workers",
                format.label()
            );
        }
    }
}

#[test]
fn modeled_throughput_scales_with_workers_for_a_saturated_stream() {
    let model = MlpClassifier::new_frozen(
        64,
        &[64],
        8,
        WeightFormat::PermutedDiagonal { p: 4 },
        &mut seeded_rng(23),
    );
    let cfg = ServeConfig {
        batching: BatchConfig::new(32, 0),
        service: ServiceModel::default(),
    };
    let stream = seeded_request_stream(29, 256, 64, 0.0);
    let one = serve(&model, &ParallelExecutor::new(1), &cfg, stream.clone()).unwrap();
    let four = serve(&model, &ParallelExecutor::new(4), &cfg, stream).unwrap();
    let speedup = one.makespan_ticks() as f64 / four.makespan_ticks() as f64;
    assert!(
        speedup > 1.5,
        "4 workers vs 1 on batch-32 serving: {speedup:.2}x"
    );
}
