//! Bit-identity suite for the wall-clock kernel pass.
//!
//! The optimisation pass (precomputed FFT plans + cached weight spectra,
//! scratch arenas through the matvec/matmul hot path, cache-blocked batched
//! kernels, the unrolled i16 column-sparse inner loop) is a reordering of
//! memory traffic only — every float and every integer operation happens in
//! the same order as before. This suite pins that down:
//!
//! 1. `FftPlan` transforms are bitwise identical to the freestanding
//!    `fft_in_place` / `ifft_in_place` / `fft_real` they replace.
//! 2. The cached-spectra circulant matvec equals the retained per-call FFT
//!    path exactly, including ragged (non-multiple-of-`k`) shapes, across
//!    repeated calls on one reused scratch.
//! 3. The streamed PD column kernel and the cache-blocked batched kernels
//!    equal the reference traversal exactly.
//! 4. The unrolled flat-accumulator i16 kernel equals the boxed-accumulator
//!    reference exactly — outputs *and* datapath counters.
//! 5. The arena-backed executor stays bit-identical to sequential execution
//!    for every registry format, worker count, and across repeated calls
//!    (arena reuse must not leak state between calls).
//! 6. The serving loops (`serve`, `ModelRegistry::serve_traffic`), which now
//!    reuse one output matrix across batches and models, still produce the
//!    exact per-request outputs of the sequential operator.

use std::sync::Arc;

use permdnn::circulant::fft::{fft_in_place, fft_real, ifft_in_place};
use permdnn::circulant::{BlockCirculantMatrix, CirculantScratch, Complex, FftPlan};
use permdnn::core::format::{BatchView, CompressedLinear};
use permdnn::core::qlinear::{QKernelStats, QScheme, QScratch, QuantizedLinear};
use permdnn::core::snapshot::{load_tensor, save_tensor, SnapshotCodec};
use permdnn::core::{BlockPermDiagMatrix, Scratch};
use permdnn::nn::layers::WeightFormat;
use permdnn::runtime::{
    seeded_request_stream, serve, AdmissionPolicy, BatchConfig, BatchModel, ModelLoader,
    ModelRegistry, ParallelExecutor, ServeConfig, ServiceModel, SingleLayerModel, SloTarget,
    TrafficConfig, UniformProcess,
};
use permdnn::tensor::init::{seeded_rng, xavier_uniform};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn complex_signal(n: usize, seed: u64) -> Vec<Complex> {
    let m = xavier_uniform(&mut seeded_rng(seed), 2, n.max(1));
    (0..n)
        .map(|i| Complex::new(m[(0, i)] as f64, m[(1, i)] as f64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // 1. FftPlan vs the freestanding transforms, bitwise.
    #[test]
    fn prop_fft_plan_matches_freestanding_transforms(exp in 0u32..=7, seed in 0u64..500) {
        let n = 1usize << exp;
        let plan = FftPlan::new(n);
        let signal = complex_signal(n, seed);

        let mut planned = signal.clone();
        plan.forward_in_place(&mut planned);
        let mut free = signal.clone();
        fft_in_place(&mut free);
        prop_assert_eq!(&planned, &free, "forward transform differs at n = {}", n);

        plan.inverse_in_place(&mut planned);
        ifft_in_place(&mut free);
        prop_assert_eq!(&planned, &free, "inverse transform differs at n = {}", n);

        // Real-input path: forward_real_padded vs fft_real on the zero-padded
        // signal, writing into a deliberately dirty output buffer.
        let real_len = (seed as usize % n.max(1)).max(1).min(n);
        let reals: Vec<f32> = (0..real_len).map(|i| signal[i].re as f32).collect();
        let mut padded: Vec<Complex> = reals.iter().map(|&r| Complex::from_real(f64::from(r))).collect();
        padded.resize(n, Complex::default());
        let expected = fft_real(&padded.iter().map(|c| c.re as f32).collect::<Vec<_>>());
        let mut out = vec![Complex::new(7.5, -3.25); n];
        plan.forward_real_padded(&reals, &mut out);
        prop_assert_eq!(&out, &expected, "real-padded transform differs at n = {}", n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // 2. Cached-spectra circulant matvec vs the per-call FFT path, with one
    // scratch reused across every call (state must not leak between inputs).
    #[test]
    fn prop_circulant_cached_fft_matches_percall(
        (rows, cols, kexp, seed) in (1usize..=40, 1usize..=40, 1u32..=3, 0u64..300)
    ) {
        let k = 1usize << kexp;
        let w = BlockCirculantMatrix::random_any_size(rows, cols, k, &mut seeded_rng(seed));
        let mut scratch = CirculantScratch::default();
        let mut y = vec![0.0f32; rows];
        for trial in 0..3u64 {
            let x_mat = xavier_uniform(&mut seeded_rng(seed ^ (trial + 1)), 1, cols);
            let x = x_mat.row(0);
            w.matvec_fft_into(x, &mut y, &mut scratch).unwrap();
            let y_percall = w.matvec_fft_percall(x).unwrap();
            prop_assert_eq!(&y, &y_percall, "{}x{} k={} trial {}", rows, cols, k, trial);
            // The direct kernel agrees to rounding (different op order), so
            // only sanity-check it here; exactness is FFT-vs-FFT.
            let y_direct = w.matvec_direct(x).unwrap();
            for (a, b) in y.iter().zip(y_direct.iter()) {
                prop_assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()));
            }
        }
    }

    // 3. Streamed PD column kernel + blocked batched kernel vs the reference
    // traversal, bitwise.
    #[test]
    fn prop_pd_kernels_match_reference(
        (rb, cb, p, batch, seed) in (1usize..=8, 1usize..=8, 2usize..=5, 1usize..=9, 0u64..300)
    ) {
        let (rows, cols) = (rb * p, cb * p);
        let w = BlockPermDiagMatrix::random(rows, cols, p, &mut seeded_rng(seed));
        let xs_mat = xavier_uniform(&mut seeded_rng(seed ^ 0xabc), batch, cols);
        let xs = BatchView::from_matrix(&xs_mat);

        let mut y_ref = vec![0.0f32; rows];
        let mut y = vec![0.0f32; rows];
        for i in 0..batch {
            w.matvec_reference(xs.row(i), &mut y_ref);
            w.matvec_into(xs.row(i), &mut y).unwrap();
            prop_assert_eq!(&y, &y_ref, "matvec row {}", i);
        }

        let mut out = vec![f32::NAN; batch * rows];
        w.matmul_into(&xs, &mut out, &mut Scratch::new()).unwrap();
        for (i, out_row) in out.chunks(rows).enumerate() {
            w.matvec_reference(xs.row(i), &mut y_ref);
            prop_assert_eq!(out_row, &y_ref[..], "blocked matmul row {}", i);
        }
    }

    // 4. Unrolled i16 column-sparse kernel vs the boxed-accumulator
    // reference: outputs and datapath counters, with one QScratch reused.
    #[test]
    fn prop_q16_scratch_matches_reference_with_stats(
        (rb, cb, p, batch, seed) in (1usize..=6, 1usize..=6, 2usize..=5, 1usize..=7, 0u64..300)
    ) {
        let (rows, cols) = (rb * p, cb * p);
        let op: Arc<dyn CompressedLinear> =
            Arc::new(BlockPermDiagMatrix::random(rows, cols, p, &mut seeded_rng(seed)));
        let q = QuantizedLinear::from_op(
            Arc::clone(&op),
            QScheme::calibrate(1.0, op.max_weight_abs(), 8.0),
        );
        prop_assert!(q.has_integer_kernel());

        let xs_mat = xavier_uniform(&mut seeded_rng(seed ^ 0x51), batch, cols);
        let mut scratch = QScratch::default();
        let mut y = vec![0i16; rows];
        let mut y_ref = vec![0i16; rows];
        for i in 0..batch {
            let x_raw = q.quantize_input(xs_mat.row(i));
            let stats = q.matvec_q_scratch(&x_raw, &mut y, &mut scratch).unwrap();
            let stats_ref = q.matvec_q_reference(&x_raw, &mut y_ref).unwrap();
            prop_assert_eq!(&y, &y_ref, "outputs row {}", i);
            prop_assert_eq!(stats, stats_ref, "counters row {}", i);
        }
    }
}

/// Every registry format at the given shape (dimensions multiples of 4 so the
/// structured formats get whole blocks).
fn registry_formats() -> [WeightFormat; 6] {
    [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 4 },
        WeightFormat::Circulant { k: 4 },
        WeightFormat::Circulant { k: 3 }, // non-2ᵗ: direct-kernel fallback
        WeightFormat::UnstructuredSparse { p: 4 },
        WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // 5. Arena-backed executor vs sequential, every format x worker count,
    // repeated calls on one executor and one reused output matrix.
    #[test]
    fn prop_executor_arenas_stay_bit_identical_across_repeated_calls(
        (rows4, cols4, batch, seed) in (1usize..=8, 1usize..=8, 1usize..=13, 0u64..300)
    ) {
        let (rows, cols) = (rows4 * 4, cols4 * 4);
        let mut rng = seeded_rng(seed);
        for format in registry_formats() {
            let op: Arc<dyn CompressedLinear> = Arc::from(format.build(rows, cols, &mut rng));
            for workers in WORKER_COUNTS {
                let exec = ParallelExecutor::new(workers);
                let mut out = permdnn::tensor::Matrix::zeros(0, 0);
                for trial in 0..3u64 {
                    // A different batch each call: a stale arena buffer from
                    // the previous (larger or smaller) call must not show.
                    let b = 1 + ((batch + trial as usize) % 13);
                    let xs_mat = xavier_uniform(&mut seeded_rng(seed ^ (trial + 9)), b, cols);
                    let xs = BatchView::from_matrix(&xs_mat);
                    let sequential = op.matmul(&xs).unwrap();
                    exec.matmul_into(&op, &xs, &mut out).unwrap();
                    prop_assert_eq!(
                        &out,
                        &sequential,
                        "{} workers={} trial {}",
                        format.label(),
                        workers,
                        trial
                    );
                }
            }
        }
    }

    // 5b. Integer path: executor matmul_q vs sequential matmul_q, repeated.
    #[test]
    fn prop_executor_integer_path_matches_sequential(
        (rb, cb, batch, seed) in (1usize..=6, 1usize..=6, 1usize..=9, 0u64..300)
    ) {
        let (rows, cols) = (rb * 4, cb * 4);
        let op: Arc<dyn CompressedLinear> =
            Arc::new(BlockPermDiagMatrix::random(rows, cols, 4, &mut seeded_rng(seed)));
        let q = Arc::new(QuantizedLinear::from_op(
            Arc::clone(&op),
            QScheme::calibrate(1.0, op.max_weight_abs(), 8.0),
        ));
        for workers in WORKER_COUNTS {
            let exec = ParallelExecutor::new(workers);
            for trial in 0..3u64 {
                let b = 1 + ((batch + trial as usize) % 9);
                let xs_mat = xavier_uniform(&mut seeded_rng(seed ^ (trial + 3)), b, cols);
                let mut xs_raw = Vec::with_capacity(b * cols);
                for i in 0..b {
                    xs_raw.extend(q.quantize_input(xs_mat.row(i)));
                }
                let sequential = q.matmul_q(&xs_raw, b).unwrap();
                let parallel = exec.matmul_q(&q, &xs_raw, b).unwrap();
                prop_assert_eq!(&parallel, &sequential, "workers={} trial {}", workers, trial);
            }
        }
    }
}

// 6a. The serve loop's reused output matrix: every completed request's output
// equals the sequential operator applied to that request's input.
#[test]
fn serve_loop_outputs_equal_sequential_operator() {
    let dim = 24;
    let op: Arc<dyn CompressedLinear> = Arc::new(BlockPermDiagMatrix::random(
        dim,
        dim,
        4,
        &mut seeded_rng(0xE0),
    ));
    let model = SingleLayerModel::new(Arc::clone(&op));
    let cfg = ServeConfig {
        batching: BatchConfig::new(5, 3),
        service: ServiceModel::default(),
    };
    let requests = seeded_request_stream(41, 64, dim, 2.0);
    let by_id: std::collections::BTreeMap<u64, Vec<f32>> =
        requests.iter().map(|r| (r.id, r.input.clone())).collect();

    for workers in WORKER_COUNTS {
        let exec = ParallelExecutor::new(workers);
        let report = serve(&model, &exec, &cfg, requests.clone()).unwrap();
        assert_eq!(report.completed.len(), 64);
        for c in &report.completed {
            let expected = op.matvec(&by_id[&c.id]).unwrap();
            assert_eq!(c.output, expected, "request {} workers {}", c.id, workers);
        }
    }
}

// 6a'. Mixed-format model (the autotuner's output shape): one executor's
// arenas and one reused output matrix carry state across layers whose
// formats differ — PD scratch, EIE run-decoding, shared-PD tag lookups and
// the dense head must not leak into each other across repeated calls.
#[test]
fn mixed_format_model_stays_bit_identical_under_arena_reuse() {
    let model = permdnn::nn::MlpClassifier::new_frozen_mixed(
        16,
        &[
            (24, WeightFormat::PermutedDiagonal { p: 4 }),
            (16, WeightFormat::Circulant { k: 4 }),
            (12, WeightFormat::UnstructuredSparse { p: 4 }),
        ],
        4,
        &mut seeded_rng(0xA11),
    );
    // Repeated varying-size batches through ONE executor per worker count.
    for workers in WORKER_COUNTS {
        let exec = ParallelExecutor::new(workers);
        for trial in 0..4u64 {
            let b = 1 + ((3 * trial as usize) % 7);
            let xs_mat = xavier_uniform(&mut seeded_rng(0xA12 + trial), b, 16);
            let xs = BatchView::from_matrix(&xs_mat);
            let got = model.forward_batch(&xs, &exec).unwrap();
            let want = model
                .forward_batch(&xs, &ParallelExecutor::sequential())
                .unwrap();
            assert_eq!(got, want, "workers {workers} trial {trial}");
        }
    }
    // And through the serve loop's reused output matrix.
    let cfg = ServeConfig {
        batching: BatchConfig::new(5, 3),
        service: ServiceModel::default(),
    };
    let requests = seeded_request_stream(0xA13, 32, 16, 2.0);
    for workers in WORKER_COUNTS {
        let report = serve(
            &model,
            &ParallelExecutor::new(workers),
            &cfg,
            requests.clone(),
        )
        .unwrap();
        assert_eq!(report.completed.len(), 32);
        for c in &report.completed {
            let expected = model.logits(&requests[c.id as usize].input);
            assert_eq!(c.output, expected, "request {} workers {}", c.id, workers);
        }
    }
}

// 6b. serve_traffic through the registry, two models with *different* output
// widths sharing the reused matrix: outputs must be bit-identical across
// worker counts and across repeated runs.
#[test]
fn serve_traffic_outputs_identical_across_workers_with_reused_buffers() {
    fn loader() -> ModelLoader {
        Box::new(|bytes| {
            let op = load_tensor(bytes, &SnapshotCodec::new())?;
            Ok(Arc::new(SingleLayerModel::new(op)) as Arc<dyn BatchModel>)
        })
    }
    fn build() -> ModelRegistry {
        let mut reg = ModelRegistry::new(loader(), u64::MAX);
        let small = BlockPermDiagMatrix::random(16, 16, 4, &mut seeded_rng(0xA1));
        let large = BlockPermDiagMatrix::random(48, 48, 4, &mut seeded_rng(0xA2));
        reg.insert_with_slo(
            "small",
            save_tensor(&small).unwrap(),
            SloTarget::new(500, 5, 16).unwrap(),
        )
        .unwrap();
        reg.insert_with_slo(
            "large",
            save_tensor(&large).unwrap(),
            SloTarget::new(2_000, 2, 32).unwrap(),
        )
        .unwrap();
        reg
    }
    let stream = permdnn::runtime::interleave_streams(vec![
        (
            "small".to_string(),
            UniformProcess::new(16, 3.0).unwrap().stream(0xD2, 40),
        ),
        (
            "large".to_string(),
            UniformProcess::new(48, 5.0).unwrap().stream(0xD3, 24),
        ),
    ]);
    let cfg = TrafficConfig::new(
        ServeConfig {
            batching: BatchConfig::new(8, 4),
            service: ServiceModel::default(),
        },
        AdmissionPolicy::Fifo,
    );

    let run = |workers: usize| {
        build()
            .serve_traffic(&ParallelExecutor::new(workers), &cfg, stream.clone())
            .unwrap()
    };
    let baseline = run(1);
    assert_eq!(baseline, run(1), "same seed must replay bit-identically");
    let outputs = |r: &permdnn::runtime::TrafficReport| -> Vec<(String, u64, Vec<f32>)> {
        r.serve
            .completed
            .iter()
            .map(|c| {
                (
                    c.model_id.clone(),
                    c.completed.id,
                    c.completed.output.clone(),
                )
            })
            .collect()
    };
    for workers in &WORKER_COUNTS[1..] {
        assert_eq!(
            outputs(&run(*workers)),
            outputs(&baseline),
            "{workers} workers changed a served bit"
        );
    }
    // And every single output equals the sequential operator.
    let small = BlockPermDiagMatrix::random(16, 16, 4, &mut seeded_rng(0xA1));
    let large = BlockPermDiagMatrix::random(48, 48, 4, &mut seeded_rng(0xA2));
    let by_id: std::collections::BTreeMap<(String, u64), Vec<f32>> = stream
        .iter()
        .map(|r| ((r.model_id.clone(), r.request.id), r.request.input.clone()))
        .collect();
    for c in &baseline.serve.completed {
        let input = &by_id[&(c.model_id.clone(), c.completed.id)];
        let expected = match c.model_id.as_str() {
            "small" => small.matvec(input),
            _ => large.matvec(input),
        };
        assert_eq!(
            c.completed.output, expected,
            "{}/{}",
            c.model_id, c.completed.id
        );
    }
}

// The merged counters from the sharded integer path are pure sums: check the
// degenerate single-row batch on many workers, where most shards are empty.
#[test]
fn executor_integer_stats_are_exact_on_tiny_batches() {
    let op: Arc<dyn CompressedLinear> =
        Arc::new(BlockPermDiagMatrix::random(12, 12, 4, &mut seeded_rng(77)));
    let q = Arc::new(QuantizedLinear::from_op(
        Arc::clone(&op),
        QScheme::calibrate(1.0, op.max_weight_abs(), 8.0),
    ));
    let x_raw = q.quantize_input(&[0.5f32; 12]);
    let (y_seq, stats_seq) = q.matmul_q(&x_raw, 1).unwrap();
    let exec = ParallelExecutor::new(8);
    let (y_par, stats_par) = exec.matmul_q(&q, &x_raw, 1).unwrap();
    assert_eq!(y_par, y_seq);
    assert_eq!(stats_par, stats_seq);
    assert_ne!(
        stats_seq,
        QKernelStats::default(),
        "the kernel did real work"
    );
}
