//! Cluster serving suite: the scale-out layer must be invisible in the bits.
//!
//! Locked-in properties:
//!
//! 1. **Replicated bit-exactness** — for ZipfMix traffic under every
//!    admission policy, the shed set and every served output are identical
//!    to the single-host run across replicas × workers ∈ {1, 2, 3, 7}², for
//!    both routing policies. With one replica the *entire report* (ticks
//!    included) reproduces the single host exactly.
//! 2. **Topology bit-exactness** — every traffic generator × every policy
//!    serves identically on replicated, row-sharded and single-host
//!    deployments; row-sharded runs also match across shard counts, and a
//!    one-shard cluster reproduces single-host ticks exactly.
//! 3. **Pipeline bit-exactness** — a staged chain across hosts serves the
//!    same bits as the fused [`PipelineModel`] on one host, for every worker
//!    count; the modeled link cost moves completion ticks, never outputs.
//! 4. **Shard-section round-trip** — proptest: decoding a whole tensor
//!    equals concatenating its decoded shards (dense and PD), and corrupting
//!    a sharded container (bit flips, truncation) yields typed errors, never
//!    panics.

use std::sync::Arc;

use permdnn::core::snapshot::{
    extract_shard, load_tensor, read_shard_index, save_tensor, shard_tensor_snapshot, SnapshotCodec,
};
use permdnn::core::BlockPermDiagMatrix;
use permdnn::runtime::{
    interleave_streams, AdmissionPolicy, BatchConfig, BatchModel, Cluster, ClusterReport,
    ModelLoader, ModelRegistry, OnOffFlashCrowd, ParallelExecutor, PipelineModel, PoissonBurst,
    RoutingPolicy, ServeConfig, ServiceModel, SingleLayerModel, SloTarget, TaggedRequest,
    TrafficConfig, TrafficReport, UniformProcess, ZipfMix,
};
use permdnn::tensor::init::{seeded_rng, xavier_uniform};
use proptest::prelude::*;

const GRID: [usize; 4] = [1, 2, 3, 7];
const POLICIES: [AdmissionPolicy; 3] = [
    AdmissionPolicy::Fifo,
    AdmissionPolicy::Priority,
    AdmissionPolicy::EarliestDeadline,
];

fn tensor_loader() -> ModelLoader {
    Box::new(|bytes| {
        let op = load_tensor(bytes, &SnapshotCodec::new())?;
        Ok(Arc::new(SingleLayerModel::new(op)) as Arc<dyn BatchModel>)
    })
}

fn loaders(n: usize) -> Vec<ModelLoader> {
    (0..n).map(|_| tensor_loader()).collect()
}

fn pd_snapshot(rows: usize, cols: usize, seed: u64) -> Vec<u8> {
    let w = BlockPermDiagMatrix::random(rows, cols, 4, &mut seeded_rng(seed));
    save_tensor(&w).unwrap()
}

/// The three models every test serves: shapes big enough to split into 7
/// block-row shards (dim ≥ 28 at p = 4), with distinct costs and SLOs.
fn model_specs() -> Vec<(&'static str, usize, u64, SloTarget)> {
    vec![
        ("fast", 32, 0xF1, SloTarget::new(400, 7, 16).unwrap()),
        ("mid", 64, 0xF2, SloTarget::new(1_500, 3, 32).unwrap()),
        ("bulk", 256, 0xF3, SloTarget::new(60_000, 1, 128).unwrap()),
    ]
}

fn build_registry() -> ModelRegistry {
    let mut reg = ModelRegistry::new(tensor_loader(), u64::MAX);
    for (id, dim, seed, slo) in model_specs() {
        reg.insert_with_slo(id, pd_snapshot(dim, dim, seed), slo)
            .unwrap();
    }
    reg
}

/// Registers the same three models (same bytes, same SLOs) on a cluster.
fn populate(cluster: &mut Cluster) {
    for (id, dim, seed, slo) in model_specs() {
        cluster
            .insert(id, pd_snapshot(dim, dim, seed), Some(slo))
            .unwrap();
    }
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        batching: BatchConfig::new(4, 12),
        service: ServiceModel::default(),
    }
}

/// One stream per arrival generator, shaped like the SLO suite's but on the
/// cluster-sized models.
fn generator_streams() -> Vec<(&'static str, Vec<TaggedRequest>)> {
    let uniform = interleave_streams(vec![
        (
            "fast".to_string(),
            UniformProcess::new(32, 1.5).unwrap().stream(0xA1, 48),
        ),
        (
            "bulk".to_string(),
            UniformProcess::new(256, 4.0).unwrap().stream(0xA2, 24),
        ),
    ]);
    let poisson = interleave_streams(vec![
        (
            "fast".to_string(),
            PoissonBurst::new(32, 2.0, 0.35, 24)
                .unwrap()
                .stream(0xB1, 60),
        ),
        (
            "mid".to_string(),
            PoissonBurst::new(64, 3.0, 0.2, 8).unwrap().stream(0xB2, 30),
        ),
    ]);
    let crowd = interleave_streams(vec![
        (
            "fast".to_string(),
            OnOffFlashCrowd::new(32, 20, 150, 0.4)
                .unwrap()
                .stream(0xC1, 60),
        ),
        (
            "bulk".to_string(),
            UniformProcess::new(256, 0.0).unwrap().stream(0xC2, 16),
        ),
    ]);
    let zipf = zipf_stream();
    vec![
        ("uniform", uniform),
        ("poisson_burst", poisson),
        ("flash_crowd", crowd),
        ("zipf_mix", zipf),
    ]
}

fn zipf_stream() -> Vec<TaggedRequest> {
    ZipfMix::new(
        vec![
            ("fast".to_string(), 32),
            ("mid".to_string(), 64),
            ("bulk".to_string(), 256),
        ],
        1.3,
        1.0,
    )
    .unwrap()
    .stream(0xD1, 90)
}

/// Everything that must be invariant across topology, replica/shard count
/// and worker count: the shed set and every served output, keyed by
/// `(model, request id)`. Completion ticks and batch sizes are deliberately
/// excluded — per-host batching may differ; the bits may not.
type Decisions = (Vec<String>, Vec<(String, u64, Vec<f32>)>);

fn shed_strings(rejections: &[permdnn::runtime::Rejection]) -> Vec<String> {
    rejections
        .iter()
        .map(|r| format!("{}/{}/{}/{:?}", r.model, r.request_id, r.tick, r.reason))
        .collect()
}

fn cluster_decisions(report: &ClusterReport) -> Decisions {
    let served = report
        .completed
        .iter()
        .map(|tc| {
            (
                tc.model_id.clone(),
                tc.completed.id,
                tc.completed.output.clone(),
            )
        })
        .collect();
    (shed_strings(&report.rejections), served)
}

fn single_host_decisions(report: &TrafficReport) -> Decisions {
    let mut served: Vec<(String, u64, Vec<f32>)> = report
        .serve
        .completed
        .iter()
        .map(|tc| {
            (
                tc.model_id.clone(),
                tc.completed.id,
                tc.completed.output.clone(),
            )
        })
        .collect();
    served.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    (shed_strings(&report.rejections), served)
}

fn single_host_run(policy: AdmissionPolicy, stream: &[TaggedRequest]) -> TrafficReport {
    build_registry()
        .serve_traffic(
            &ParallelExecutor::new(1),
            &TrafficConfig::new(serve_cfg(), policy),
            stream.to_vec(),
        )
        .unwrap()
}

// ---------------------------------------------------------------------------
// 1. Replicated bit-exactness across replicas × workers.
// ---------------------------------------------------------------------------

#[test]
fn zipf_replicated_bit_identical_across_replicas_and_workers() {
    let stream = zipf_stream();
    for policy in POLICIES {
        let baseline = single_host_decisions(&single_host_run(policy, &stream));
        for routing in [RoutingPolicy::HashModulo, RoutingPolicy::Rendezvous] {
            for replicas in GRID {
                for workers in GRID {
                    let mut cluster =
                        Cluster::replicated(loaders(replicas), routing, u64::MAX).unwrap();
                    populate(&mut cluster);
                    let report = cluster
                        .serve_traffic(
                            &ParallelExecutor::new(workers),
                            &TrafficConfig::new(serve_cfg(), policy),
                            stream.clone(),
                        )
                        .unwrap();
                    assert_eq!(
                        cluster_decisions(&report),
                        baseline,
                        "{policy:?}/{routing:?}: {replicas} replicas x {workers} workers \
                         changed the served bits"
                    );
                    assert_eq!(
                        report.per_host.iter().map(|h| h.served).sum::<usize>(),
                        report.completed.len(),
                        "host tallies cover every served request"
                    );
                }
            }
        }
    }
}

#[test]
fn one_replica_reproduces_the_single_host_report_exactly() {
    let stream = zipf_stream();
    for policy in POLICIES {
        let single = single_host_run(policy, &stream);
        let mut expected = single.serve.completed.clone();
        expected.sort_by(|a, b| (&a.model_id, a.completed.id).cmp(&(&b.model_id, b.completed.id)));

        let mut cluster =
            Cluster::replicated(loaders(1), RoutingPolicy::HashModulo, u64::MAX).unwrap();
        populate(&mut cluster);
        let report = cluster
            .serve_traffic(
                &ParallelExecutor::new(1),
                &TrafficConfig::new(serve_cfg(), policy),
                stream.clone(),
            )
            .unwrap();
        // Ticks included: one replica IS the single host.
        assert_eq!(report.completed, expected, "{policy:?}: completions differ");
        assert_eq!(report.rejections, single.rejections);
        assert_eq!(report.final_tick, single.serve.final_tick);
        assert_eq!(report.per_model_slo, single.per_model_slo);
    }
}

// ---------------------------------------------------------------------------
// 2. Every generator × policy × topology.
// ---------------------------------------------------------------------------

#[test]
fn every_generator_and_policy_serves_identically_on_every_topology() {
    for (generator, stream) in generator_streams() {
        for policy in POLICIES {
            let baseline = single_host_decisions(&single_host_run(policy, &stream));
            let cfg = TrafficConfig::new(serve_cfg(), policy);

            let mut replicated =
                Cluster::replicated(loaders(3), RoutingPolicy::Rendezvous, u64::MAX).unwrap();
            populate(&mut replicated);
            let report = replicated
                .serve_traffic(&ParallelExecutor::new(2), &cfg, stream.clone())
                .unwrap();
            assert_eq!(
                cluster_decisions(&report),
                baseline,
                "{generator}/{policy:?}: replicated differs from single host"
            );

            for shards in [2, 7] {
                let mut sharded = Cluster::row_sharded(loaders(shards), u64::MAX).unwrap();
                populate(&mut sharded);
                let report = sharded
                    .serve_traffic(&ParallelExecutor::new(2), &cfg, stream.clone())
                    .unwrap();
                assert_eq!(
                    cluster_decisions(&report),
                    baseline,
                    "{generator}/{policy:?}: {shards} row shards changed the served bits"
                );
            }
        }
    }
}

#[test]
fn one_shard_reproduces_single_host_ticks_exactly() {
    let stream = zipf_stream();
    for policy in POLICIES {
        let single = single_host_run(policy, &stream);
        let mut expected = single.serve.completed.clone();
        expected.sort_by(|a, b| (&a.model_id, a.completed.id).cmp(&(&b.model_id, b.completed.id)));

        let mut cluster = Cluster::row_sharded(loaders(1), u64::MAX).unwrap();
        populate(&mut cluster);
        let report = cluster
            .serve_traffic(
                &ParallelExecutor::new(1),
                &TrafficConfig::new(serve_cfg(), policy),
                stream.clone(),
            )
            .unwrap();
        assert_eq!(report.completed, expected, "{policy:?}: completions differ");
        assert_eq!(report.final_tick, single.serve.final_tick);
    }
}

#[test]
fn row_sharding_scales_memory_down_per_host() {
    let whole_bytes: u64 = model_specs()
        .iter()
        .map(|&(_, dim, seed, _)| pd_snapshot(dim, dim, seed).len() as u64)
        .sum();
    let mut cluster = Cluster::row_sharded(loaders(4), u64::MAX).unwrap();
    populate(&mut cluster);
    for &host_bytes in &cluster.host_loaded_bytes() {
        // Three models on each host: each holds ~1/4 of each model's payload
        // plus per-shard container framing.
        assert!(
            host_bytes <= whole_bytes.div_ceil(4) + 3 * 256,
            "host holds {host_bytes} of {whole_bytes} whole-model bytes"
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Pipeline bit-exactness.
// ---------------------------------------------------------------------------

/// A 32 → 48 → 32 → 32 chain: stage k's rows are stage k+1's cols.
fn stage_snapshots() -> Vec<Vec<u8>> {
    vec![
        pd_snapshot(48, 32, 0x51),
        pd_snapshot(32, 48, 0x52),
        pd_snapshot(32, 32, 0x53),
    ]
}

/// A single-host registry serving the fused chain through [`PipelineModel`]
/// — the reference a pipeline cluster must match.
fn fused_registry(slo: SloTarget) -> ModelRegistry {
    let stages = stage_snapshots();
    let loader: ModelLoader = Box::new(move |_| {
        let codec = SnapshotCodec::new();
        let chain: Vec<Arc<dyn BatchModel>> = stages
            .iter()
            .map(|bytes| {
                Ok(Arc::new(SingleLayerModel::new(load_tensor(bytes, &codec)?))
                    as Arc<dyn BatchModel>)
            })
            .collect::<Result<_, permdnn::core::snapshot::SnapshotError>>()?;
        Ok(Arc::new(PipelineModel::new(chain).expect("stages chain")) as Arc<dyn BatchModel>)
    });
    let mut reg = ModelRegistry::new(loader, u64::MAX);
    reg.insert_with_slo("chain", vec![0xC4], slo).unwrap();
    reg
}

#[test]
fn pipeline_cluster_matches_the_fused_single_host_chain() {
    let slo = SloTarget::new(2_000, 5, 24).unwrap();
    let stream: Vec<TaggedRequest> = ZipfMix::new(vec![("chain".to_string(), 32)], 1.1, 1.2)
        .unwrap()
        .stream(0x77, 70);
    for policy in POLICIES {
        let cfg = TrafficConfig::new(serve_cfg(), policy);
        let baseline = single_host_decisions(
            &fused_registry(slo)
                .serve_traffic(&ParallelExecutor::new(1), &cfg, stream.clone())
                .unwrap(),
        );
        for workers in GRID {
            for link_ticks in [0, 250] {
                let mut cluster = Cluster::pipeline(loaders(3), link_ticks, u64::MAX).unwrap();
                cluster
                    .insert_stages("chain", stage_snapshots(), Some(slo))
                    .unwrap();
                let report = cluster
                    .serve_traffic(&ParallelExecutor::new(workers), &cfg, stream.clone())
                    .unwrap();
                assert_eq!(
                    cluster_decisions(&report),
                    baseline,
                    "{policy:?}: pipeline at {workers} workers / link {link_ticks} \
                     changed the served bits"
                );
            }
        }
    }
}

#[test]
fn link_cost_moves_ticks_but_never_outputs() {
    let stream: Vec<TaggedRequest> = ZipfMix::new(vec![("chain".to_string(), 32)], 1.1, 0.8)
        .unwrap()
        .stream(0x78, 40);
    let cfg = TrafficConfig::new(serve_cfg(), AdmissionPolicy::Fifo);
    let run = |link: u64| {
        let mut cluster = Cluster::pipeline(loaders(3), link, u64::MAX).unwrap();
        cluster
            .insert_stages("chain", stage_snapshots(), None)
            .unwrap();
        cluster
            .serve_traffic(&ParallelExecutor::new(2), &cfg, stream.clone())
            .unwrap()
    };
    let free = run(0);
    let slow = run(500);
    assert_eq!(cluster_decisions(&free), cluster_decisions(&slow));
    assert!(
        slow.final_tick > free.final_tick,
        "2 hops x 500 ticks must lengthen the makespan ({} vs {})",
        slow.final_tick,
        free.final_tick
    );
}

#[test]
fn pipeline_model_is_the_stage_composition() {
    let codec = SnapshotCodec::new();
    let ops: Vec<_> = stage_snapshots()
        .iter()
        .map(|b| load_tensor(b, &codec).unwrap())
        .collect();
    let chain = PipelineModel::new(
        ops.iter()
            .map(|op| Arc::new(SingleLayerModel::new(op.clone())) as Arc<dyn BatchModel>)
            .collect(),
    )
    .unwrap();
    assert_eq!((chain.in_dim(), chain.out_dim()), (32, 32));
    assert_eq!(
        chain.mul_count_per_example(),
        ops.iter().map(|op| op.mul_count()).sum::<u64>()
    );
    let x: Vec<f32> = (0..32).map(|i| (i as f32 * 0.23).sin()).collect();
    let expected = ops
        .iter()
        .fold(x.clone(), |acc, op| op.matvec(&acc).unwrap());
    let xs = permdnn::core::format::BatchView::new(&x, 1, 32).unwrap();
    let out = chain
        .forward_batch(&xs, &ParallelExecutor::sequential())
        .unwrap();
    assert_eq!(out.row(0), &expected[..], "fused chain = composed matvecs");
}

// ---------------------------------------------------------------------------
// 4. Shard-section round-trip + corruption.
// ---------------------------------------------------------------------------

fn sharded_victim() -> Vec<u8> {
    let whole = pd_snapshot(32, 32, 0x99);
    shard_tensor_snapshot(&whole, 3).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn whole_decode_equals_concatenated_shard_decodes(
        (blocks, shards, seed) in (2usize..12, 1usize..8, 0u64..500)
    ) {
        let shards = shards.min(blocks);
        let dim = blocks * 4;
        let codec = SnapshotCodec::new();
        // PD tensor.
        let pd = BlockPermDiagMatrix::random(dim, dim, 4, &mut seeded_rng(seed));
        let sharded = shard_tensor_snapshot(&save_tensor(&pd).unwrap(), shards).unwrap();
        let index = read_shard_index(&sharded).unwrap();
        prop_assert_eq!(index.shards(), shards);
        let mut rows: Vec<f32> = Vec::new();
        for k in 0..shards {
            let op = load_tensor(&extract_shard(&sharded, k).unwrap(), &codec).unwrap();
            rows.extend_from_slice(op.to_dense().as_slice());
        }
        prop_assert_eq!(rows, pd.to_dense().into_vec());
        // Dense tensor, same split.
        let dense = xavier_uniform(&mut seeded_rng(seed + 1), dim, 8);
        let sharded = shard_tensor_snapshot(&save_tensor(&dense).unwrap(), shards).unwrap();
        let mut rows: Vec<f32> = Vec::new();
        for k in 0..shards {
            let op = load_tensor(&extract_shard(&sharded, k).unwrap(), &codec).unwrap();
            rows.extend_from_slice(op.to_dense().as_slice());
        }
        prop_assert_eq!(rows, dense.into_vec());
    }

    #[test]
    fn sharded_container_bit_flips_are_typed_errors((byte, bit) in (0usize..10_000, 0u8..8)) {
        let mut bytes = sharded_victim();
        let byte = byte % bytes.len();
        bytes[byte] ^= 1 << bit;
        // Every flip lands in framing (validation fails), a section name
        // (the shard/index lookup fails) or a checksummed payload (CRC
        // fails): always a clean Err, never a panic, never a silent load.
        prop_assert!(read_shard_index(&bytes).is_err());
        prop_assert!(extract_shard(&bytes, 0).is_err());
    }

    #[test]
    fn sharded_container_truncation_is_a_typed_error(cut in 0usize..10_000) {
        let bytes = sharded_victim();
        let cut = cut % bytes.len();
        prop_assert!(read_shard_index(&bytes[..cut]).is_err());
        prop_assert!(extract_shard(&bytes[..cut], 1).is_err());
    }
}
