//! Conv/LSTM serving-stack equivalence suite.
//!
//! PR 4 lowers every model — conv net and seq2seq LSTM included — onto the
//! `CompressedLinear` serving stack. This suite locks in the properties that
//! refactor rests on:
//!
//! 1. **Freeze equivalence** — the frozen (im2col-lowered) conv forward equals
//!    the training-path direct convolution, and the frozen LSTM's
//!    teacher-forced logits equal the training path's, for every trainable
//!    conv/LSTM format and for proptest-generated shapes including channel
//!    counts not divisible by the block size.
//! 2. **Worker-count invariance** — the frozen *and quantized* conv and LSTM
//!    forwards are bit-for-bit identical across {1, 2, 3, 7} workers (the
//!    PR 2 invariant, extended beyond FC).
//! 3. **Serving-loop integration** — a frozen conv net serves through the
//!    batching runtime (`serve`) with outputs identical to sequential
//!    inference.

use permdnn::nn::conv_net::ConvClassifier;
use permdnn::nn::data::{GlyphImages, TranslationPairs};
use permdnn::nn::layers::WeightFormat;
use permdnn::nn::lstm::Seq2Seq;
use permdnn::runtime::{
    serve, BatchConfig, BatchModel, ParallelExecutor, Request, ServeConfig, ServiceModel,
};
use permdnn::tensor::init::seeded_rng;
use permdnn::tensor::Tensor4;
use proptest::prelude::*;
use rand::Rng;

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn random_image(c: usize, size: usize, seed: u64) -> Tensor4 {
    let mut rng = seeded_rng(seed);
    Tensor4::from_fn([1, c, size, size], |_| rng.gen_range(-1.0f32..1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Frozen conv forward ≡ training-path forward (dense_conv2d /
    // BlockPermDiagTensor4::forward) for both trainable conv formats, on
    // shapes including channel counts not divisible by p, and bit-for-bit
    // identical across worker counts. (Regular comments: the proptest shim's
    // macro does not accept doc attributes on property fns.)
    #[test]
    fn frozen_conv_forward_matches_training_path(
        (c1, c2, p, seed) in (1usize..=5, 1usize..=6, 2usize..=3, 0u64..200)
    ) {
        let size = 8usize;
        let img = random_image(1, size, seed ^ 0xf00d);
        for format in [WeightFormat::Dense, WeightFormat::PermutedDiagonal { p }] {
            let model =
                ConvClassifier::new(size, 1, [c1, c2], 3, format, &mut seeded_rng(seed)).unwrap();
            let frozen = model.freeze();
            let trained = model.logits(&img);
            let lowered = frozen.logits(&img).unwrap();
            for (a, b) in trained.iter().zip(lowered.iter()) {
                prop_assert!(
                    (a - b).abs() < 1e-4,
                    "{} [{c1},{c2}] p={p}: {a} vs {b}",
                    format.label()
                );
            }
            for workers in WORKER_COUNTS {
                let exec = ParallelExecutor::new(workers);
                prop_assert_eq!(
                    frozen.logits_parallel(&img, &exec).unwrap(),
                    lowered.clone(),
                    "{} diverged at {} workers",
                    format.label(),
                    workers
                );
            }
        }
    }

    // Frozen LSTM teacher-forced logits ≡ training-path logits for the
    // weight-preserving formats, at hidden sizes divisible and not divisible
    // by the block size.
    #[test]
    fn frozen_lstm_logits_match_training_path(
        (hidden, seed) in (9usize..=24, 0u64..200)
    ) {
        let vocab = 6usize;
        let mut tok_rng = seeded_rng(seed ^ 0xbeef);
        let source: Vec<u32> = (0..4).map(|_| tok_rng.gen_range(0..vocab as u32)).collect();
        let target: Vec<u32> = (0..4).map(|_| tok_rng.gen_range(0..vocab as u32)).collect();
        for format in [WeightFormat::Dense, WeightFormat::PermutedDiagonal { p: 4 }] {
            let model = Seq2Seq::new(vocab, hidden, format, &mut seeded_rng(seed));
            let frozen = model.freeze();
            let trained = model.teacher_forced_logits(&source, &target);
            let served = frozen.teacher_forced_logits(&source, &target).unwrap();
            prop_assert_eq!(trained.len(), served.len());
            for (a, b) in trained.iter().flatten().zip(served.iter().flatten()) {
                prop_assert!(
                    (a - b).abs() < 1e-4,
                    "{} hidden={hidden}: {a} vs {b}",
                    format.label()
                );
            }
        }
    }
}

/// Frozen + quantized conv net: bit-exact end-to-end through the executor at
/// every worker count (the acceptance criterion of the unification PR).
#[test]
fn quantized_conv_is_bit_exact_across_worker_counts() {
    let glyphs = GlyphImages::generate(&mut seeded_rng(1), 48, 4, 12, 1, 0.15);
    let mut model = ConvClassifier::new(
        12,
        1,
        [4, 8],
        4,
        WeightFormat::PermutedDiagonal { p: 2 },
        &mut seeded_rng(2),
    )
    .unwrap();
    model.fit(&glyphs, 1, 0.05);
    let frozen = model.freeze();
    let (quantized, report) = frozen.quantize(&glyphs.images[..8]);
    assert!(report.fully_integer());
    for image in glyphs.images.iter().take(4) {
        let sequential = quantized.logits(image).unwrap();
        for workers in WORKER_COUNTS {
            let exec = ParallelExecutor::new(workers);
            assert_eq!(
                quantized.logits_parallel(image, &exec).unwrap(),
                sequential,
                "workers = {workers}"
            );
        }
    }
}

/// Frozen + quantized seq2seq: batched decoding bit-exact across worker
/// counts, for a weight-preserving format and a freeze-built deployment
/// format.
#[test]
fn quantized_lstm_is_bit_exact_across_worker_counts() {
    let pairs = TranslationPairs::generate(&mut seeded_rng(3), 60, 8, 4);
    for format in [
        WeightFormat::PermutedDiagonal { p: 4 },
        WeightFormat::UnstructuredSparse { p: 4 },
    ] {
        let model = Seq2Seq::new(8, 24, format, &mut seeded_rng(4));
        let frozen = model.freeze();
        let (quantized, _) = frozen.quantize(&pairs);
        let sources: Vec<Vec<u32>> = pairs.sources.iter().take(9).cloned().collect();
        for net in [&frozen, &quantized] {
            let sequential: Vec<Vec<u32>> = sources
                .iter()
                .map(|s| net.translate(s, 4).unwrap())
                .collect();
            for workers in WORKER_COUNTS {
                let exec = ParallelExecutor::new(workers);
                assert_eq!(
                    net.translate_batch(&sources, 4, &exec).unwrap(),
                    sequential,
                    "{} workers = {workers}",
                    format.label()
                );
            }
        }
    }
}

/// A frozen conv net is a `BatchModel`: the request-batching serving loop
/// returns exactly the model's own sequential logits for every request.
#[test]
fn conv_net_serves_through_the_batching_runtime() {
    let glyphs = GlyphImages::generate(&mut seeded_rng(5), 24, 4, 12, 1, 0.15);
    let model = ConvClassifier::new(
        12,
        1,
        [4, 8],
        4,
        WeightFormat::PermutedDiagonal { p: 2 },
        &mut seeded_rng(6),
    )
    .unwrap();
    let frozen = model.freeze();
    let requests: Vec<Request> = glyphs
        .images
        .iter()
        .take(10)
        .enumerate()
        .map(|(i, img)| Request {
            id: i as u64,
            arrival_tick: 3 * i as u64,
            input: img.as_slice().to_vec(),
        })
        .collect();
    let cfg = ServeConfig {
        batching: BatchConfig::new(4, 10),
        service: ServiceModel::default(),
    };
    let exec = ParallelExecutor::new(3);
    let report = serve(&frozen, &exec, &cfg, requests).unwrap();
    assert_eq!(report.completed.len(), 10);
    assert_eq!(BatchModel::out_dim(&frozen), 4);
    for done in &report.completed {
        let reference = frozen.logits(&glyphs.images[done.id as usize]).unwrap();
        assert_eq!(done.output, reference, "request {}", done.id);
    }
}

/// The sim bridge charges the engine model for the lowered scenarios: PD conv
/// and LSTM serving must model faster than dense at the same shapes.
#[test]
fn sim_charges_lowered_conv_and_lstm_scenarios() {
    use permdnn::core::format::CompressedLinear;
    use permdnn::sim::{ConvWorkload, EngineConfig, LstmWorkload};

    let cfg = EngineConfig::paper_32pe();
    let model = ConvClassifier::new(
        12,
        1,
        [8, 16],
        4,
        WeightFormat::PermutedDiagonal { p: 4 },
        &mut seeded_rng(7),
    )
    .unwrap();
    let frozen = model.freeze();
    let [conv1, conv2] = frozen.conv_ops();
    let sim1 = ConvWorkload::from_format("conv1", conv1, 144, 1.0).simulate(&cfg);
    let sim2 = ConvWorkload::from_format("conv2", conv2, 36, 1.0).simulate(&cfg);
    assert!(sim1.total_cycles > 0 && sim2.total_cycles > 0);

    let seq = Seq2Seq::new(
        8,
        32,
        WeightFormat::PermutedDiagonal { p: 4 },
        &mut seeded_rng(8),
    );
    let frozen_seq = seq.freeze();
    let enc_ops = frozen_seq.encoder().gate_ops();
    let lstm = LstmWorkload::from_formats(&enc_ops[..4], &enc_ops[4..], 0.2, 1.0, 4);
    let lstm_sim = lstm.simulate(&cfg);
    assert_eq!(lstm_sim.per_gate.len(), 8);
    assert!(lstm_sim.total_cycles == lstm_sim.cycles_per_step * 4);
    // PD gates store 4x fewer weights, so the engine retires 4x fewer MACs
    // than a dense cell of the same shape would.
    let dense_seq = Seq2Seq::new(8, 32, WeightFormat::Dense, &mut seeded_rng(8));
    let dense_frozen = dense_seq.freeze();
    let dense_ops = dense_frozen.encoder().gate_ops();
    let dense_sim =
        LstmWorkload::from_formats(&dense_ops[..4], &dense_ops[4..], 0.2, 1.0, 4).simulate(&cfg);
    assert!(
        lstm_sim.total_useful_macs * 3 < dense_sim.total_useful_macs,
        "pd {} vs dense {}",
        lstm_sim.total_useful_macs,
        dense_sim.total_useful_macs
    );
    let _ = CompressedLinear::mul_count(conv1);
}
