//! Determinism and SLO contracts of the traffic engine
//! (`permdnn_runtime::traffic` + `permdnn_runtime::slo`):
//!
//! 1. For **every arrival generator × admission policy**, the admission
//!    decisions (which requests are shed, and why) and the served outputs
//!    (execution order, batch membership, every output bit) are identical
//!    across {1, 2, 3, 7} workers and across repeated runs with the same
//!    seed. Only completion ticks may change with the worker count.
//! 2. `seeded_request_stream` is the `UniformProcess` generator bit-for-bit,
//!    so every committed serving baseline stays comparable.
//! 3. `EarliestDeadline` attains at least `Fifo`'s SLO attainment on the
//!    flash-crowd scenario at the equal shed rate admission guarantees.
//! 4. The `ModelRegistry`'s LRU weight cache under Zipf-skewed interleaved
//!    traffic keeps the hot model resident, evicts and reloads the cold one,
//!    and never changes a served bit.

use std::sync::Arc;

use permdnn::core::snapshot::{load_tensor, save_tensor, SnapshotCodec};
use permdnn::core::BlockPermDiagMatrix;
use permdnn::runtime::{
    interleave_streams, AdmissionPolicy, BatchConfig, BatchModel, ModelLoader, ModelRegistry,
    OnOffFlashCrowd, ParallelExecutor, PoissonBurst, ServeConfig, ServiceModel, SingleLayerModel,
    SloTarget, TaggedRequest, TrafficConfig, TrafficReport, UniformProcess, ZipfMix,
};
use permdnn::tensor::init::seeded_rng;

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn tensor_loader() -> ModelLoader {
    Box::new(|bytes| {
        let op = load_tensor(bytes, &SnapshotCodec::new())?;
        Ok(Arc::new(SingleLayerModel::new(op)) as Arc<dyn BatchModel>)
    })
}

fn pd_snapshot(dim: usize, seed: u64) -> Vec<u8> {
    let w = BlockPermDiagMatrix::random(dim, dim, 4, &mut seeded_rng(seed));
    save_tensor(&w).unwrap()
}

/// A three-model registry with distinct shapes, costs and SLOs: a tight-
/// deadline high-priority "fast" model, a mid-tier "mid", and a loose but
/// expensive "bulk".
fn build_registry(budget: u64) -> ModelRegistry {
    let mut reg = ModelRegistry::new(tensor_loader(), budget);
    reg.insert_with_slo(
        "fast",
        pd_snapshot(16, 0xF1),
        SloTarget::new(300, 7, 16).unwrap(),
    )
    .unwrap();
    reg.insert_with_slo(
        "mid",
        pd_snapshot(32, 0xF2),
        SloTarget::new(1_200, 3, 32).unwrap(),
    )
    .unwrap();
    reg.insert_with_slo(
        "bulk",
        pd_snapshot(256, 0xF3),
        SloTarget::new(60_000, 1, 128).unwrap(),
    )
    .unwrap();
    reg
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        batching: BatchConfig::new(4, 12),
        service: ServiceModel::default(),
    }
}

/// Everything that must be invariant across worker counts: shed requests
/// (model, id, tick, reason) plus served decisions (execution order, batch
/// membership, output bits). Completion ticks are deliberately excluded.
#[allow(clippy::type_complexity)]
fn decisions(report: &TrafficReport) -> (Vec<String>, Vec<(String, u64, usize, Vec<f32>)>) {
    let sheds = report
        .rejections
        .iter()
        .map(|r| format!("{}/{}/{}/{:?}", r.model, r.request_id, r.tick, r.reason))
        .collect();
    let served = report
        .serve
        .completed
        .iter()
        .map(|tc| {
            (
                tc.model_id.clone(),
                tc.completed.id,
                tc.completed.batch_size,
                tc.completed.output.clone(),
            )
        })
        .collect();
    (sheds, served)
}

/// One dense stream per generator, routed across the registry's models. Each
/// stream is heavy enough to exercise batching, contention and (for the
/// bounded-depth models) shedding.
fn generator_streams() -> Vec<(&'static str, Vec<TaggedRequest>)> {
    let uniform = interleave_streams(vec![
        (
            "fast".to_string(),
            UniformProcess::new(16, 1.5).unwrap().stream(0xA1, 48),
        ),
        (
            "bulk".to_string(),
            UniformProcess::new(256, 4.0).unwrap().stream(0xA2, 24),
        ),
    ]);
    let poisson = interleave_streams(vec![
        (
            "fast".to_string(),
            PoissonBurst::new(16, 2.0, 0.35, 24)
                .unwrap()
                .stream(0xB1, 60),
        ),
        (
            "mid".to_string(),
            PoissonBurst::new(32, 3.0, 0.2, 8).unwrap().stream(0xB2, 30),
        ),
    ]);
    let crowd = interleave_streams(vec![
        (
            "fast".to_string(),
            OnOffFlashCrowd::new(16, 20, 150, 0.4)
                .unwrap()
                .stream(0xC1, 60),
        ),
        (
            "bulk".to_string(),
            UniformProcess::new(256, 0.0).unwrap().stream(0xC2, 16),
        ),
    ]);
    let zipf = ZipfMix::new(
        vec![
            ("fast".to_string(), 16),
            ("mid".to_string(), 32),
            ("bulk".to_string(), 256),
        ],
        1.3,
        1.0,
    )
    .unwrap()
    .stream(0xD1, 90);
    vec![
        ("uniform", uniform),
        ("poisson_burst", poisson),
        ("flash_crowd", crowd),
        ("zipf_mix", zipf),
    ]
}

#[test]
fn decisions_and_outputs_identical_across_workers_for_every_generator_and_policy() {
    let policies = [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::Priority,
        AdmissionPolicy::EarliestDeadline,
    ];
    for (generator, stream) in generator_streams() {
        for policy in policies {
            let cfg = TrafficConfig::new(serve_cfg(), policy);
            let run = |workers: usize| {
                build_registry(u64::MAX)
                    .serve_traffic(&ParallelExecutor::new(workers), &cfg, stream.clone())
                    .unwrap()
            };
            let baseline = run(1);
            assert_eq!(
                baseline.offered(),
                stream.len(),
                "{generator}: every request is accounted for"
            );
            assert_eq!(
                baseline.serve.completed.len() + baseline.rejections.len(),
                stream.len(),
                "{generator}/{policy:?}: served + shed covers the stream"
            );
            // Same seed, same run: bit-identical, including ticks.
            let repeat = run(1);
            assert_eq!(baseline, repeat, "{generator}/{policy:?}: replay differs");
            for workers in &WORKER_COUNTS[1..] {
                let report = run(*workers);
                assert_eq!(
                    decisions(&report),
                    decisions(&baseline),
                    "{generator}/{policy:?}: {workers} workers changed decisions"
                );
            }
        }
    }
}

#[test]
fn seeded_request_stream_is_the_uniform_process_bit_for_bit() {
    for (seed, n, in_dim, mean) in [(7u64, 64usize, 16usize, 3.0f64), (42, 20, 8, 2.5)] {
        assert_eq!(
            permdnn::runtime::seeded_request_stream(seed, n, in_dim, mean),
            UniformProcess::new(in_dim, mean).unwrap().stream(seed, n),
            "legacy stream and UniformProcess must agree"
        );
    }
    // Saturated closed-loop mode included.
    assert_eq!(
        permdnn::runtime::seeded_request_stream(3, 12, 4, 0.0),
        UniformProcess::new(4, 0.0).unwrap().stream(3, 12),
    );
}

#[test]
fn earliest_deadline_attains_at_least_fifo_on_flash_crowd_at_equal_shed_rate() {
    // The crowd lands on "fast" while a saturated tick-0 "bulk" wave already
    // occupies the engine; Fifo serves the earlier-closed bulk backlog first,
    // EarliestDeadline lets the crowd jump it.
    let stream = interleave_streams(vec![
        (
            "fast".to_string(),
            OnOffFlashCrowd::new(16, 25, 200, 0.3)
                .unwrap()
                .stream(0xE1, 80),
        ),
        (
            "bulk".to_string(),
            UniformProcess::new(256, 0.0).unwrap().stream(0xE2, 48),
        ),
    ]);
    let run = |policy: AdmissionPolicy| {
        build_registry(u64::MAX)
            .serve_traffic(
                &ParallelExecutor::new(2),
                &TrafficConfig::new(serve_cfg(), policy),
                stream.clone(),
            )
            .unwrap()
    };
    let fifo = run(AdmissionPolicy::Fifo);
    let edf = run(AdmissionPolicy::EarliestDeadline);
    // Admission is policy-independent, so the shed sets are equal — the
    // attainment comparison is at exactly equal shed rate.
    assert_eq!(fifo.rejections, edf.rejections, "equal shed sets");
    assert_eq!(fifo.shed_rate(), edf.shed_rate());
    assert!(
        edf.attainment() >= fifo.attainment(),
        "EDF attainment {:.4} must be at least Fifo's {:.4}",
        edf.attainment(),
        fifo.attainment()
    );
    // On this contended scenario the improvement is strict: Fifo leaves
    // crowd requests stuck behind the bulk wave past their deadline.
    assert!(
        edf.attainment() > fifo.attainment(),
        "EDF {:.4} vs Fifo {:.4}: expected a strict rescue",
        edf.attainment(),
        fifo.attainment()
    );
}

#[test]
fn lru_cache_under_zipf_traffic_keeps_hot_resident_and_serves_identically() {
    let zipf = ZipfMix::new(
        vec![
            ("fast".to_string(), 16),
            ("mid".to_string(), 32),
            ("bulk".to_string(), 256),
        ],
        1.5,
        2.0,
    )
    .unwrap();
    let stream = zipf.stream(0xF5, 120);
    let cfg = TrafficConfig::new(serve_cfg(), AdmissionPolicy::EarliestDeadline);
    let run = |budget: u64| {
        let mut reg = build_registry(budget);
        let report = reg
            .serve_traffic(&ParallelExecutor::new(2), &cfg, stream.clone())
            .unwrap();
        (report, reg)
    };
    let (unlimited, _) = run(u64::MAX);

    // Budget sized to roughly one resident model: the Zipf-hot "fast" model
    // should stay cached while the cold tail thrashes.
    let bulk_bytes = pd_snapshot(256, 0xF3).len() as u64;
    let (tight, mut reg) = run(bulk_bytes + 8);
    assert!(
        tight.serve.stats.evictions > 0 && tight.serve.stats.reloads > 0,
        "tight budget must thrash the cold models: {:?}",
        tight.serve.stats
    );
    // A follow-up burst of hot-only traffic: LRU keeps the hot model
    // resident afterwards while the expensive cold model has been evicted.
    reg.serve_traffic(
        &ParallelExecutor::new(2),
        &cfg,
        interleave_streams(vec![(
            "fast".to_string(),
            UniformProcess::new(16, 1.0).unwrap().stream(0xF6, 8),
        )]),
    )
    .unwrap();
    assert!(reg.is_resident("fast"), "Zipf-hot model stays resident");
    assert!(
        !reg.is_resident("mid") || !reg.is_resident("bulk"),
        "some cold model must have been evicted"
    );
    // The weight cache changes *when* bytes are materialised — never what is
    // served or shed.
    assert_eq!(decisions(&tight), decisions(&unlimited));
    assert_eq!(tight.rejections, unlimited.rejections);
    assert_eq!(
        tight.serve.completed, unlimited.serve.completed,
        "ticks equal too: caching is off the service-time books"
    );
}
