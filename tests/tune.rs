//! Integration tests for the per-layer format autotuner (`permdnn::bench::tune`).
//!
//! 1. **Determinism** — the same seed yields a byte-identical rendered
//!    frontier, the identical chosen spec, and a bit-identical chosen model
//!    across two full runs; the chosen model equals the committed
//!    `mlp_mixed` golden fixture byte for byte.
//! 2. **Pareto dominance** — property tests over random objective tables:
//!    no frontier point is dominated, every non-frontier point is dominated
//!    by some frontier point, and the knee point sits on the frontier and
//!    meets the accuracy floor whenever any frontier point does.
//! 3. **Typed errors** — zero beam width, an empty candidate list, and
//!    PD-family block sizes outside {2, 4, 8, 16} are rejected with the
//!    matching `TuneError` before any search work happens.

use permdnn::bench::tune::{render_json, tune, TuneConfig, TuneError};
use permdnn::core::pareto::{dominates, knee_point, pareto_frontier, Objectives};
use permdnn::nn::layers::WeightFormat;
use proptest::prelude::*;

fn fixture_path(name: &str, ext: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.{ext}"))
}

// A cut-down two-layer search that keeps debug-profile runs quick while
// still exercising beam expansion, dedup and q16 candidates.
fn small_config() -> TuneConfig {
    TuneConfig {
        hidden_dims: vec![12, 8],
        samples: 160,
        epochs: 4,
        beam_width: 2,
        formats: vec![
            WeightFormat::Dense,
            WeightFormat::PermutedDiagonal { p: 4 },
            WeightFormat::EieEncoded { p: 4 },
        ],
        ..TuneConfig::sweep_config()
    }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

#[test]
fn same_seed_gives_byte_identical_frontier_and_identical_chosen_spec() {
    let cfg = small_config();
    let a = tune(&cfg).expect("valid config");
    let b = tune(&cfg).expect("valid config");

    assert_eq!(
        render_json(&cfg, &a),
        render_json(&cfg, &b),
        "rendered frontier must be byte-identical across runs"
    );
    assert_eq!(a.frontier, b.frontier);
    assert_eq!(a.chosen, b.chosen);
    assert_eq!(a.scored[a.chosen].label, b.scored[b.chosen].label);

    // The chosen model itself is bit-identical, not just its label.
    let model_a = a.chosen_model().expect("realizes").save().expect("saves");
    let model_b = b.chosen_model().expect("realizes").save().expect("saves");
    assert_eq!(model_a, model_b);
}

#[test]
fn sweep_config_chosen_model_equals_the_committed_mixed_fixture() {
    let run = tune(&TuneConfig::sweep_config()).expect("valid config");
    let rebuilt = run.chosen_model().expect("realizes").save().expect("saves");
    let committed = std::fs::read(fixture_path("mlp_mixed", "snap"))
        .expect("mlp_mixed.snap is committed — regenerate with gen_fixtures");
    assert_eq!(
        rebuilt, committed,
        "the tuner's knee point must reproduce the golden fixture byte for byte"
    );
}

#[test]
fn all_dense_baseline_is_scored_and_chosen_meets_the_accuracy_floor() {
    let cfg = small_config();
    let run = tune(&cfg).expect("valid config");
    let dense = run.dense_objectives();
    let chosen = run.chosen_objectives();
    assert!(
        run.frontier.contains(&run.chosen),
        "knee sits on the frontier"
    );
    assert!(
        chosen.accuracy >= dense.accuracy - cfg.accuracy_slack,
        "chosen accuracy {} fell below the floor ({} - {})",
        chosen.accuracy,
        dense.accuracy,
        cfg.accuracy_slack
    );
}

#[test]
fn frontier_of_a_real_run_obeys_pareto_dominance() {
    let run = tune(&small_config()).expect("valid config");
    let objectives: Vec<Objectives> = run.scored.iter().map(|s| s.objectives).collect();
    for &f in &run.frontier {
        for o in &objectives {
            assert!(
                !dominates(o, &objectives[f]),
                "frontier point {f} is dominated"
            );
        }
    }
    for (i, o) in objectives.iter().enumerate() {
        if !run.frontier.contains(&i) {
            assert!(
                run.frontier.iter().any(|&f| dominates(&objectives[f], o)),
                "non-frontier point {i} is not dominated by any frontier point"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Pareto dominance: property tests over random objective tables
// ---------------------------------------------------------------------------

fn objective_table() -> impl Strategy<Value = Vec<Objectives>> {
    // Small value ranges on purpose: ties and exact duplicates must appear
    // often enough to exercise the duplicate-survival rule.
    proptest::collection::vec((0u8..5, 0u8..5, 0u8..5), 1..24).prop_map(|raw| {
        raw.into_iter()
            .map(|(a, m, b)| Objectives {
                accuracy: a as f64 / 4.0,
                mul_count: m as u64,
                snapshot_bytes: b as u64,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frontier_points_are_never_dominated(table in objective_table()) {
        let frontier = pareto_frontier(&table);
        prop_assert!(!frontier.is_empty());
        for &f in &frontier {
            for o in &table {
                prop_assert!(!dominates(o, &table[f]));
            }
        }
    }

    #[test]
    fn every_non_frontier_point_is_dominated_by_a_frontier_point(table in objective_table()) {
        let frontier = pareto_frontier(&table);
        for (i, o) in table.iter().enumerate() {
            if !frontier.contains(&i) {
                prop_assert!(frontier.iter().any(|&f| dominates(&table[f], o)));
            }
        }
    }

    #[test]
    fn knee_point_sits_on_the_frontier_and_respects_a_feasible_floor(
        table in objective_table(),
        floor_raw in 0u8..5,
    ) {
        let frontier = pareto_frontier(&table);
        let floor = floor_raw as f64 / 4.0;
        let knee = knee_point(&table, &frontier, floor).expect("non-empty frontier");
        prop_assert!(frontier.contains(&knee));
        if frontier.iter().any(|&f| table[f].accuracy >= floor) {
            prop_assert!(table[knee].accuracy >= floor);
        }
    }
}

// ---------------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------------

#[test]
fn zero_beam_width_is_an_empty_beam_error() {
    let mut cfg = small_config();
    cfg.beam_width = 0;
    assert_eq!(tune(&cfg).err(), Some(TuneError::EmptyBeam));
}

#[test]
fn empty_candidate_list_is_a_typed_error() {
    let mut cfg = small_config();
    cfg.formats.clear();
    assert_eq!(tune(&cfg).err(), Some(TuneError::NoCandidates));
}

#[test]
fn block_sizes_outside_the_supported_set_are_rejected() {
    for p in [1usize, 3, 5, 32] {
        let mut cfg = small_config();
        cfg.formats.push(WeightFormat::PermutedDiagonal { p });
        assert_eq!(tune(&cfg).err(), Some(TuneError::InvalidBlockSize { p }));

        let mut cfg = small_config();
        cfg.formats
            .push(WeightFormat::SharedPermutedDiagonal { p, tag_bits: 4 });
        assert_eq!(tune(&cfg).err(), Some(TuneError::InvalidBlockSize { p }));
    }
}

#[test]
fn tune_errors_format_readably() {
    assert!(TuneError::EmptyBeam.to_string().contains("beam"));
    assert!(TuneError::InvalidBlockSize { p: 3 }
        .to_string()
        .contains('3'));
}
