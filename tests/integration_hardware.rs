//! Integration tests spanning the permuted-diagonal core and the architecture simulator:
//! the functional kernels, the SRAM layout, the scheduler and the cycle model must tell a
//! consistent story about the same matrices.

use pd_tensor::init::seeded_rng;
use permdnn_core::matvec::matvec_column_wise;
use permdnn_core::sparsity::exact_sparsity_vector;
use permdnn_core::BlockPermDiagMatrix;
use permdnn_nn::layers::WeightFormat;
use permdnn_sim::schedule::schedule_dense_input;
use permdnn_sim::sram::layout_weight_sram;
use permdnn_sim::workload::FcWorkload;
use permdnn_sim::{engine, EngineConfig};

#[test]
fn scheduler_sram_and_cycle_model_agree_on_work() {
    let rows = 64;
    let cols = 96;
    let p = 4;
    let n_pe = 4;
    let matrix = BlockPermDiagMatrix::random(rows, cols, p, &mut seeded_rng(1));

    // The functional scheduler issues exactly one MAC per structural non-zero.
    let schedule = schedule_dense_input(&matrix, n_pe, 2, 64);
    assert_eq!(schedule.macs.len(), matrix.structural_nonzeros());

    // The SRAM layout stores exactly the same set of weights, evenly across PEs.
    let images = layout_weight_sram(&matrix, n_pe);
    let stored: usize = images.iter().map(|i| i.stored_weights()).sum();
    assert_eq!(stored, matrix.structural_nonzeros());

    // The analytical cycle model's useful-MAC count matches the functional kernel run on
    // a dense input (every column processed).
    let cfg = EngineConfig {
        n_pe,
        ..EngineConfig::paper_32pe()
    };
    let w = FcWorkload {
        name: "integration",
        rows,
        cols,
        p,
        activation_nonzero_fraction: 1.0,
        description: "integration test layer",
    };
    let x = vec![1.0f32; cols];
    let (_, processed) = matvec_column_wise(&matrix, &x).unwrap();
    let result = engine::simulate_layer(&cfg, &w);
    assert_eq!(result.processed_columns, processed as u64);
    assert_eq!(result.useful_macs, (rows / p * cols) as u64);
}

#[test]
fn zero_skipping_is_consistent_between_kernel_and_cycle_model() {
    let rows = 128;
    let cols = 128;
    let p = 8;
    let matrix = BlockPermDiagMatrix::random(rows, cols, p, &mut seeded_rng(2));
    let cfg = EngineConfig::paper_32pe();
    for frac in [1.0, 0.5, 0.25] {
        let x = exact_sparsity_vector(&mut seeded_rng(3), cols, frac);
        let (_, processed) = matvec_column_wise(&matrix, &x).unwrap();
        let w = FcWorkload {
            name: "sweep",
            rows,
            cols,
            p,
            activation_nonzero_fraction: frac,
            description: "sparsity sweep",
        };
        let result = engine::simulate_layer(&cfg, &w);
        assert_eq!(
            result.processed_columns, processed as u64,
            "fraction {frac}"
        );
    }
}

#[test]
fn cycle_model_consumes_weights_through_the_trait() {
    // The engine model can be driven by any CompressedLinear operator from the
    // registry; for a PD matrix the derived workload must agree with the
    // functional kernel's zero-skipping behaviour, exactly as with an
    // explicitly-specified workload.
    let cfg = EngineConfig::paper_32pe();
    let w = WeightFormat::PermutedDiagonal { p: 8 }.build(128, 128, &mut seeded_rng(4));
    let x = exact_sparsity_vector(&mut seeded_rng(5), 128, 0.5);
    let nonzero = x.iter().filter(|&&v| v != 0.0).count();

    let result = engine::simulate_compressed(&cfg, w.as_ref(), 0.5);
    assert_eq!(result.processed_columns + result.skipped_columns, 128);
    assert_eq!(result.processed_columns, nonzero as u64);
    // The model's useful MACs match the trait's dense-input multiplication
    // count scaled by the activation density.
    assert_eq!(result.useful_macs, nonzero as u64 * (128 / 8));
    assert_eq!(w.mul_count(), 128 * 128 / 8);
}

#[test]
fn table7_layers_fit_the_paper_design() {
    // Every Table VII benchmark layer fits the 32-PE engine's weight SRAM with 4-bit
    // weight sharing (the over-design argument of Section V-B).
    let cfg = EngineConfig::paper_32pe();
    for w in &permdnn_sim::TABLE7_WORKLOADS {
        let per_pe_weights = w.stored_weights().div_ceil(cfg.n_pe);
        let per_pe_bits = per_pe_weights as u64 * cfg.weight_sharing_bits as u64;
        assert!(
            per_pe_bits <= cfg.pe.weight_sram_bytes() as u64 * 8,
            "{} does not fit: {} bits per PE",
            w.name,
            per_pe_bits
        );
    }
}
