//! Property suite for the 16-bit fixed-point inference backend.
//!
//! Pins down the numeric contract of `permdnn_core::qlinear`:
//!
//! 1. **Rounding bound** — for every registry format, the quantized kernel's
//!    output matches the f32-roundtrip reference (dequantized weights ×
//!    round-tripped input, computed in f32) within `Q16::EPSILON · in_dim`
//!    per element: per-product rounding is at most half an ulp of the
//!    accumulator format and requantization at most half an ulp of the
//!    output format.
//! 2. **End-to-end accuracy** — a trained MLP quantized to 16 bits serves
//!    through `runtime::serve` with classification accuracy within 1 point
//!    of the f32 model on the synthetic eval set.
//! 3. **Saturation semantics** — overflow clamps (and is counted), never
//!    wraps.

use std::sync::Arc;

use permdnn::core::format::CompressedLinear;
use permdnn::core::qlinear::{QScheme, QuantizedLinear};
use permdnn::nn::data::GaussianClusters;
use permdnn::nn::layers::WeightFormat;
use permdnn::nn::MlpClassifier;
use permdnn::runtime::{serve, BatchConfig, ParallelExecutor, ServeConfig, ServiceModel};
use permdnn::tensor::fixed::roundtrip_f32;
use permdnn::tensor::init::{seeded_rng, sparse_activation_vector};
use proptest::prelude::*;

/// Every registry format (dimensions padded to multiples of 4 for the
/// structured formats).
fn registry_formats() -> [WeightFormat; 6] {
    [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 4 },
        WeightFormat::Circulant { k: 4 },
        WeightFormat::Circulant { k: 3 }, // non-2ᵗ: direct-kernel fallback
        WeightFormat::UnstructuredSparse { p: 4 },
        WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
    ]
}

/// Calibrated quantization of a freshly built operator against an input: the
/// output Q-format is chosen from the actual f32 output range, so the
/// rounding-bound property is not polluted by saturation.
fn calibrated(op: Arc<dyn CompressedLinear>, x: &[f32]) -> (QuantizedLinear, QScheme) {
    let input_max = x.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let y = op.matvec(x).expect("matching dims");
    let output_max = y.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scheme = QScheme::calibrate(
        input_max.max(1e-3),
        op.max_weight_abs(),
        output_max.max(1e-3),
    );
    (QuantizedLinear::from_op(op, scheme), scheme)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn quantized_kernels_match_f32_roundtrip_reference(
        (rows4, cols4, seed, density) in (1usize..=8, 1usize..=8, 0u64..300, 1usize..=10)
    ) {
        let (rows, cols) = (rows4 * 4, cols4 * 4);
        let mut rng = seeded_rng(seed);
        let x = sparse_activation_vector(&mut seeded_rng(seed ^ 0xbeef), cols, density as f64 / 10.0);
        for format in registry_formats() {
            let op: Arc<dyn CompressedLinear> = Arc::from(format.build(rows, cols, &mut rng));
            let (q, scheme) = calibrated(Arc::clone(&op), &x);
            let got = q.matvec(&x).unwrap();

            // The f32-roundtrip reference: the quantized operator's own dense
            // expansion (dequantized weights for integer kernels, the f32
            // weights for the fallback) times the round-tripped input.
            let x_rt: Vec<f32> = x.iter().map(|&v| roundtrip_f32(v, scheme.input_frac)).collect();
            let reference = q.to_dense().matvec(&x_rt);

            // Per element: ≤ in_dim half-ulps of the accumulator grid plus one
            // ulp of the output grid (requantization + the reference's own f32
            // rounding slack).
            let tol = scheme.accumulator_epsilon() * cols as f32
                + 2.0 * scheme.output_epsilon();
            for (i, (a, b)) in got.iter().zip(reference.iter()).enumerate() {
                prop_assert!(
                    (a - b).abs() <= tol,
                    "{} row {i}: q16 {a} vs reference {b} (tol {tol})",
                    format.label()
                );
            }
        }
    }

    #[test]
    fn quantized_matmul_is_bit_identical_across_worker_counts(
        (seed, batch) in (0u64..200, 1usize..=13)
    ) {
        let mut rng = seeded_rng(seed);
        let op: Arc<dyn CompressedLinear> =
            Arc::from(WeightFormat::PermutedDiagonal { p: 4 }.build(24, 32, &mut rng));
        let q = Arc::new(QuantizedLinear::from_op(
            Arc::clone(&op),
            QScheme::calibrate(1.0, op.max_weight_abs(), 16.0),
        ));
        let mut xs_raw = Vec::new();
        for i in 0..batch {
            let x: Vec<f32> = (0..32)
                .map(|j| ((seed as f32 + (i * 32 + j) as f32) * 0.37).sin())
                .collect();
            xs_raw.extend(q.quantize_input(&x));
        }
        let sequential = q.matmul_q(&xs_raw, batch).unwrap();
        for workers in [1usize, 2, 3, 7] {
            let exec = ParallelExecutor::new(workers);
            let parallel = exec.matmul_q(&q, &xs_raw, batch).unwrap();
            prop_assert_eq!(&parallel, &sequential, "workers = {}", workers);
        }
    }
}

#[test]
fn every_format_quantizes_with_the_expected_execution_path() {
    let mut rng = seeded_rng(9);
    for format in registry_formats() {
        let op: Arc<dyn CompressedLinear> = Arc::from(format.build(16, 16, &mut rng));
        let q = QuantizedLinear::from_op(Arc::clone(&op), QScheme::q3_12());
        let expect_integer = !matches!(format, WeightFormat::Circulant { .. });
        assert_eq!(
            q.has_integer_kernel(),
            expect_integer,
            "{}: integer kernels for dense/PD/CSC/EIE-style formats, fallback for circulant",
            format.label()
        );
        assert_eq!(q.out_dim(), 16);
        assert_eq!(q.in_dim(), 16);
        assert!(q.stored_weights() > 0, "{}", format.label());
        // Cost accounting carries over from the source format.
        assert_eq!(q.mul_count(), op.mul_count(), "{}", format.label());
        assert_eq!(
            q.exploits_input_sparsity(),
            op.exploits_input_sparsity(),
            "{}",
            format.label()
        );
    }
}

#[test]
fn quantized_mlp_serves_within_one_point_of_f32_accuracy() {
    // The acceptance bar: a trained, frozen MLP quantized to 16 bits runs
    // end-to-end through runtime::serve with accuracy within 1 point of f32.
    let (train, eval) =
        GaussianClusters::generate(&mut seeded_rng(41), 1200, 4, 24, 1.0).split(0.5);
    let mut model = MlpClassifier::new(
        24,
        &[32],
        4,
        WeightFormat::PermutedDiagonal { p: 4 },
        &mut seeded_rng(42),
    );
    model.fit(&train, 8, 8, 0.1);
    let f32_acc = model.evaluate(&eval);
    assert!(f32_acc > 0.8, "f32 model should learn the task: {f32_acc}");

    let (q_model, report) = model.quantize(&train.features);
    assert!(report.fully_integer(), "PD + dense head both have kernels");
    let q_acc = q_model.evaluate(&eval);
    assert!(
        (f32_acc - q_acc).abs() <= 0.01,
        "q16 accuracy {q_acc} drifted more than 1 point from f32 {f32_acc}"
    );

    // Serve the eval set through the runtime and grade the served outputs.
    let requests: Vec<permdnn::runtime::Request> = eval
        .features
        .iter()
        .enumerate()
        .map(|(i, x)| permdnn::runtime::Request {
            id: i as u64,
            arrival_tick: i as u64,
            input: x.clone(),
        })
        .collect();
    let cfg = ServeConfig {
        batching: BatchConfig::new(16, 4),
        service: ServiceModel::fixed_point(),
    };
    let exec = ParallelExecutor::new(3);
    let report = serve(&q_model, &exec, &cfg, requests).unwrap();
    let mut correct = 0usize;
    for done in &report.completed {
        let predicted = done
            .output
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        correct += usize::from(predicted == eval.labels[done.id as usize]);
    }
    let served_acc = correct as f64 / eval.len() as f64;
    assert!(
        (served_acc - q_acc).abs() < 1e-12,
        "served accuracy {served_acc} must equal sequential quantized accuracy {q_acc}"
    );
}

#[test]
fn saturation_clamps_and_is_counted_never_wraps() {
    // Weights and inputs chosen so the true sum (64 · 1.9 · 1.9 ≈ 231)
    // overflows every 16-bit output format: the output must pin at the
    // positive rail and the counters must say so.
    let m = permdnn::tensor::Matrix::filled(2, 64, 1.9);
    let op: Arc<dyn CompressedLinear> = Arc::new(m);
    let q = QuantizedLinear::from_op(op, QScheme::new(14, 14, 14));
    let x_raw = q.quantize_input(&vec![1.9f32; 64]);
    let (y, stats) = q.matvec_q(&x_raw).unwrap();
    for &raw in &y {
        assert_eq!(raw, i16::MAX, "pinned at the rail, not wrapped negative");
    }
    assert!(stats.saturated());
    assert!(stats.accumulator_saturations > 0 || stats.requantize_saturations > 0);

    // The mirrored input pins at the negative rail.
    let x_neg = q.quantize_input(&vec![-1.9f32; 64]);
    let (y_neg, _) = q.matvec_q(&x_neg).unwrap();
    for &raw in &y_neg {
        assert_eq!(raw, i16::MIN);
    }
}
