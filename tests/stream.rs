//! Contracts of the block-streamed snapshot path (`permdnn_core::snapshot`
//! `KIND_BLOCKED` + `permdnn_runtime` paged residency):
//!
//! 1. **Corruption safety.** Truncating a blocked container at any byte, or
//!    flipping any single bit, makes the paged loader return a typed
//!    [`SnapshotError`] — never a panic, never a silently different model.
//! 2. **Paged ≡ whole.** For every arrival generator × admission policy ×
//!    worker count in {1, 2, 3, 7}, a registry paging blocks through a tight
//!    budget serves outputs, batch membership and order bit-identical to an
//!    unlimited-budget whole-load registry. Only modeled ticks differ (demand
//!    faults are charged).
//! 3. **Over-budget serving.** A model whose weight blocks exceed the entire
//!    cache budget still completes a Zipf-mix run bit-identically, with peak
//!    resident weight bytes pinned to `budget + max_block`.

use permdnn::core::snapshot::{block_stream_snapshot, read_block_index, SnapshotError};
use permdnn::nn::layers::WeightFormat;
use permdnn::nn::snapshot::{batch_model_loader, load_paged_model, paged_config};
use permdnn::nn::MlpClassifier;
use permdnn::runtime::{
    interleave_streams, AdmissionPolicy, BatchConfig, ModelRegistry, OnOffFlashCrowd,
    ParallelExecutor, PoissonBurst, ServeConfig, ServiceModel, TaggedRequest, TrafficConfig,
    TrafficReport, UniformProcess, ZipfMix,
};
use permdnn::tensor::init::seeded_rng;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 7];
const IN_DIM: usize = 24;
const HIDDEN: [usize; 1] = [32];
const CLASSES: usize = 8;

/// A frozen permuted-diagonal MLP snapshot (the shape the paging layer was
/// built for: FC weight blocks chained through bias and activation stages).
fn mlp_snapshot(seed: u64) -> Vec<u8> {
    MlpClassifier::new_frozen(
        IN_DIM,
        &HIDDEN,
        CLASSES,
        WeightFormat::PermutedDiagonal { p: 4 },
        &mut seeded_rng(seed),
    )
    .save()
    .expect("frozen models snapshot")
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        batching: BatchConfig::new(4, 8),
        service: ServiceModel::default(),
    }
}

/// The worker- and budget-invariant fingerprint of a run: everything except
/// completion ticks.
fn strip(r: &TrafficReport) -> Vec<(String, u64, usize, Vec<f32>)> {
    r.serve
        .completed
        .iter()
        .map(|tc| {
            (
                tc.model_id.clone(),
                tc.completed.id,
                tc.completed.batch_size,
                tc.completed.output.clone(),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// 1. Corruption safety.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Truncation at every prefix length is a typed error; only the full
    // container loads.
    #[test]
    fn truncated_blocked_containers_are_typed_errors(cut_frac in 0.0f64..1.0, seed in 0u64..50) {
        let blocked = block_stream_snapshot(&mlp_snapshot(seed % 3)).unwrap();
        // Clamp instead of assuming: every cut strictly inside the container.
        let cut = ((cut_frac * blocked.len() as f64) as usize).min(blocked.len() - 1);
        // The Err type is SnapshotError by signature: typed, never a panic.
        let err: Result<_, SnapshotError> = load_paged_model(&blocked[..cut]);
        prop_assert!(err.is_err(), "cut at {cut}/{} must not load", blocked.len());
    }

    // Any single flipped bit is caught by the header checks, the index CRC,
    // the per-section CRCs, or the graph validation — typed error, no panic.
    #[test]
    fn bit_flips_in_blocked_containers_are_typed_errors(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut blocked = block_stream_snapshot(&mlp_snapshot(0)).unwrap();
        let pos = ((pos_frac * blocked.len() as f64) as usize).min(blocked.len() - 1);
        blocked[pos] ^= 1 << bit;
        let loaded = load_paged_model(&blocked);
        prop_assert!(
            loaded.is_err(),
            "flip of bit {bit} at byte {pos} must be detected"
        );
    }

    // Block extraction bounds survive a corrupted index: whatever the index
    // claims, reading it back is Ok or a typed error, never a panic or an
    // out-of-bounds slice.
    #[test]
    fn corrupt_index_entries_never_escape_bounds(pos_frac in 0.0f64..1.0, byte in 0u8..=255u8) {
        let mut blocked = block_stream_snapshot(&mlp_snapshot(1)).unwrap();
        // Overwrite a byte inside the leading index section specifically.
        let index_span = 16 + 2 + "block_index".len() + 64;
        let pos = ((pos_frac * index_span as f64) as usize).min(blocked.len() - 1);
        blocked[pos] = byte;
        let _ = read_block_index(&blocked).map(|ix| ix.blocks.len());
        let _ = load_paged_model(&blocked);
    }
}

// ---------------------------------------------------------------------------
// 2. Paged ≡ whole across generators × policies × workers.
// ---------------------------------------------------------------------------

/// Three MLP tenants on a shared input width, as plain and blocked snapshots.
fn tenant_snapshots() -> Vec<(String, Vec<u8>, Vec<u8>)> {
    (0..3)
        .map(|i| {
            let snap = mlp_snapshot(0x5717 + i);
            let blocked = block_stream_snapshot(&snap).unwrap();
            (format!("m{i}"), snap, blocked)
        })
        .collect()
}

/// A budget tight enough that the three tenants' blocks cannot all stay
/// resident, plus the largest single block (the residency-bound unit).
fn tight_budget(tenants: &[(String, Vec<u8>, Vec<u8>)]) -> (u64, u64) {
    let indexes: Vec<_> = tenants
        .iter()
        .map(|(_, _, b)| read_block_index(b).unwrap())
        .collect();
    let total: u64 = indexes.iter().map(|ix| ix.total_block_bytes()).sum();
    let max_block = indexes.iter().map(|ix| ix.max_block_bytes()).max().unwrap();
    ((total / 3).max(max_block), max_block)
}

fn generator_streams() -> Vec<(&'static str, Vec<TaggedRequest>)> {
    let uniform = |seed: u64| UniformProcess::new(IN_DIM, 6.0).unwrap().stream(seed, 14);
    let poisson = |seed: u64| {
        PoissonBurst::new(IN_DIM, 7.0, 0.3, 4)
            .unwrap()
            .stream(seed, 14)
    };
    let crowd = |seed: u64| {
        OnOffFlashCrowd::new(IN_DIM, 30, 90, 2.0)
            .unwrap()
            .stream(seed, 14)
    };
    let three = |streams: [Vec<_>; 3]| {
        let mut tagged = Vec::new();
        for (i, s) in streams.into_iter().enumerate() {
            tagged.push((format!("m{i}"), s));
        }
        interleave_streams(tagged)
    };
    vec![
        (
            "uniform",
            three([uniform(0xA0), uniform(0xA1), uniform(0xA2)]),
        ),
        (
            "poisson_burst",
            three([poisson(0xB0), poisson(0xB1), poisson(0xB2)]),
        ),
        (
            "flash_crowd",
            three([crowd(0xC0), crowd(0xC1), crowd(0xC2)]),
        ),
        (
            "zipf_mix",
            ZipfMix::new(
                (0..3).map(|i| (format!("m{i}"), IN_DIM)).collect(),
                1.2,
                5.0,
            )
            .unwrap()
            .stream(0xD0, 42),
        ),
    ]
}

#[test]
fn paged_serving_is_bit_identical_to_whole_load_everywhere() {
    let tenants = tenant_snapshots();
    let (budget, max_block) = tight_budget(&tenants);
    let policies = [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::Priority,
        AdmissionPolicy::EarliestDeadline,
    ];

    for (gen_name, stream) in generator_streams() {
        for policy in policies {
            let cfg = TrafficConfig::new(serve_cfg(), policy);

            // Whole-load reference at one worker.
            let mut whole = ModelRegistry::new(batch_model_loader(), u64::MAX);
            for (id, snap, _) in &tenants {
                whole.insert(id, snap.clone()).unwrap();
            }
            let reference = whole
                .serve_traffic(&ParallelExecutor::new(1), &cfg, stream.clone())
                .unwrap();
            assert!(
                reference.rejections.is_empty(),
                "{gen_name}/{policy:?}: no SLOs registered, nothing sheds"
            );
            let expected = strip(&reference);

            for workers in WORKER_COUNTS {
                let mut paged =
                    ModelRegistry::new_paged(batch_model_loader(), paged_config(), budget);
                for (id, _, blocked) in &tenants {
                    paged.insert(id, blocked.clone()).unwrap();
                }
                let report = paged
                    .serve_traffic(&ParallelExecutor::new(workers), &cfg, stream.clone())
                    .unwrap();
                assert_eq!(
                    strip(&report),
                    expected,
                    "{gen_name}/{policy:?}/{workers} workers: paged run diverged"
                );
                assert!(report.rejections.is_empty());
                assert!(
                    report.serve.stats.peak_resident_bytes <= budget + max_block,
                    "{gen_name}/{policy:?}/{workers} workers: peak {} > {budget} + {max_block}",
                    report.serve.stats.peak_resident_bytes
                );
                assert!(
                    report.serve.stats.blocks_faulted > 0,
                    "{gen_name}/{policy:?}: a cold paged registry must fault"
                );
            }
        }
    }
}

#[test]
fn paged_runs_are_deterministic_across_repeats() {
    let tenants = tenant_snapshots();
    let (budget, _) = tight_budget(&tenants);
    let cfg = TrafficConfig::new(serve_cfg(), AdmissionPolicy::EarliestDeadline);
    let stream = generator_streams().remove(3).1;

    let run = || {
        let mut paged = ModelRegistry::new_paged(batch_model_loader(), paged_config(), budget);
        for (id, _, blocked) in &tenants {
            paged.insert(id, blocked.clone()).unwrap();
        }
        let report = paged
            .serve_traffic(&ParallelExecutor::new(3), &cfg, stream.clone())
            .unwrap();
        (
            strip(&report),
            report.serve.final_tick,
            report.serve.stats.blocks_faulted,
            report.serve.stats.bytes_faulted,
        )
    };
    assert_eq!(run(), run(), "same seed, same budget: same everything");
}

// ---------------------------------------------------------------------------
// 3. Serving a model bigger than the entire budget.
// ---------------------------------------------------------------------------

#[test]
fn model_larger_than_the_whole_budget_still_serves_bit_identically() {
    let snap = mlp_snapshot(0xB16);
    let blocked = block_stream_snapshot(&snap).unwrap();
    let index = read_block_index(&blocked).unwrap();
    let max_block = index.max_block_bytes();
    // The budget holds one block with headroom, but not the model.
    let budget = max_block + 32;
    assert!(
        budget < index.total_block_bytes(),
        "the scenario requires model > budget"
    );

    let stream = ZipfMix::new(vec![("big".to_string(), IN_DIM)], 1.1, 3.0)
        .unwrap()
        .stream(0xE0, 36);
    let cfg = TrafficConfig::new(serve_cfg(), AdmissionPolicy::Fifo);

    let mut whole = ModelRegistry::new(batch_model_loader(), u64::MAX);
    whole.insert("big", snap).unwrap();
    let reference = whole
        .serve_traffic(&ParallelExecutor::new(2), &cfg, stream.clone())
        .unwrap();

    let mut paged = ModelRegistry::new_paged(batch_model_loader(), paged_config(), budget);
    paged.insert("big", blocked).unwrap();
    let report = paged
        .serve_traffic(&ParallelExecutor::new(2), &cfg, stream)
        .unwrap();

    assert_eq!(strip(&report), strip(&reference));
    assert_eq!(
        report.serve.completed.len(),
        reference.serve.completed.len()
    );
    let stats = report.serve.stats;
    assert!(
        stats.peak_resident_bytes <= budget + max_block,
        "peak {} exceeds budget {budget} + max block {max_block}",
        stats.peak_resident_bytes
    );
    assert!(
        stats.blocks_faulted as usize > index.blocks.len(),
        "an over-budget model must re-fault evicted blocks"
    );
    assert!(stats.evictions > 0);
    assert!(paged.loaded_bytes() <= budget + max_block);
    // Paging costs modeled time; the contract is it never costs bits.
    assert!(report.serve.final_tick > reference.serve.final_tick);
}

// ---------------------------------------------------------------------------
// 4. Mixed-format snapshots page like any other: the layer-granular block
// index is format-agnostic, so the autotuner's golden fixture (EIE +
// shared-PD hidden layers, dense head) streams block by block and serves
// bit-identically to whole loading.
// ---------------------------------------------------------------------------

#[test]
fn mixed_format_fixture_pages_bit_identically_to_whole_load() {
    let snap = std::fs::read(
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mlp_mixed.snap"),
    )
    .expect("committed mlp_mixed fixture");
    let in_dim = MlpClassifier::load(&snap)
        .expect("fixture loads")
        .input_dim();
    let blocked = block_stream_snapshot(&snap).unwrap();
    let index = read_block_index(&blocked).unwrap();
    assert!(
        index.blocks.len() >= 3,
        "a three-layer mixed model should block per weight section"
    );
    // Budget below the model's total block bytes: serving must fault blocks
    // in and out rather than hold the whole model.
    let budget = index.max_block_bytes() + 32;
    assert!(budget < index.total_block_bytes());

    let stream = ZipfMix::new(vec![("mixed".to_string(), in_dim)], 1.1, 3.0)
        .unwrap()
        .stream(0x313, 28);
    let cfg = TrafficConfig::new(serve_cfg(), AdmissionPolicy::Fifo);

    let mut whole = ModelRegistry::new(batch_model_loader(), u64::MAX);
    whole.insert("mixed", snap).unwrap();
    let reference = whole
        .serve_traffic(&ParallelExecutor::new(2), &cfg, stream.clone())
        .unwrap();

    let mut paged = ModelRegistry::new_paged(batch_model_loader(), paged_config(), budget);
    paged.insert("mixed", blocked).unwrap();
    let report = paged
        .serve_traffic(&ParallelExecutor::new(2), &cfg, stream)
        .unwrap();

    assert_eq!(
        strip(&report),
        strip(&reference),
        "paging a mixed-format snapshot must not change a single output bit"
    );
    assert!(report.serve.stats.blocks_faulted > 0);
}
