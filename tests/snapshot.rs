//! Snapshot-format and multi-model-registry suite.
//!
//! Three properties are locked in here:
//!
//! 1. **Golden fixtures** — the committed files under `tests/fixtures/` are
//!    byte-identical to what today's code writes, still load, and reproduce
//!    their committed logits bit-for-bit: the on-disk format cannot drift
//!    silently.
//! 2. **Corruption safety** — proptest over truncations, bit flips, bad
//!    magic, wrong versions and oversized length fields: `load` returns a
//!    typed `SnapshotError`, never panics, never over-allocates.
//! 3. **Round-trip serving equivalence** — for every weight format (and its
//!    quantized variant) at 1, 2, 3 and 7 workers, `load(save(model))`
//!    produces bit-for-bit identical logits to the in-memory model through
//!    the `serve` loop, and the `ModelRegistry` serves heterogeneous streams
//!    with the same guarantee across eviction and reload.

use std::sync::Arc;

use permdnn::bench::fixtures;
use permdnn::core::format::BatchView;
use permdnn::core::snapshot::{Snapshot, SnapshotError};
use permdnn::nn::layers::WeightFormat;
use permdnn::nn::snapshot::{batch_model_loader, codec, load_batch_model};
use permdnn::nn::{FrozenSeq2Seq, MlpClassifier, Seq2Seq};
use permdnn::runtime::{
    interleave_streams, seeded_request_stream, serve, BatchConfig, BatchModel, ModelRegistry,
    ParallelExecutor, Request, ServeConfig, ServiceModel, SingleLayerModel, TaggedRequest,
};
use permdnn::tensor::init::seeded_rng;
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 7];

fn fixture_path(name: &str, ext: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.{ext}"))
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        batching: BatchConfig::new(4, 6),
        service: ServiceModel::default(),
    }
}

// ---------------------------------------------------------------------------
// 1. Golden fixtures.
// ---------------------------------------------------------------------------

#[test]
fn golden_fixtures_are_byte_identical_to_todays_encoder() {
    for fixture in fixtures::all() {
        let committed = std::fs::read(fixture_path(fixture.name, "snap")).unwrap_or_else(|e| {
            panic!("{}: missing fixture ({e}); run gen_fixtures", fixture.name)
        });
        assert_eq!(
            committed, fixture.bytes,
            "{}: committed snapshot differs from today's encoder — \
             the on-disk format drifted without a version bump",
            fixture.name
        );
        let committed_logits =
            std::fs::read(fixture_path(fixture.name, "logits")).expect("logits sidecar");
        assert_eq!(
            fixtures::logits_from_bytes(&committed_logits),
            fixture.logits,
            "{}: committed logits differ from today's arithmetic",
            fixture.name
        );
    }
}

#[test]
fn golden_fixtures_load_and_reproduce_their_logits() {
    for fixture in fixtures::all() {
        let bytes = std::fs::read(fixture_path(fixture.name, "snap")).expect("fixture file");
        assert!(
            bytes.len() <= 8 * 1024,
            "{}: {} bytes exceeds the 8 KiB fixture cap",
            fixture.name,
            bytes.len()
        );
        let expected = fixtures::logits_from_bytes(
            &std::fs::read(fixture_path(fixture.name, "logits")).expect("logits sidecar"),
        );
        let snap = Snapshot::parse(&bytes).expect("fixture parses");
        if snap.kind() == permdnn::core::snapshot::KIND_TENSOR {
            let op = permdnn::core::snapshot::load_tensor(&bytes, &codec()).expect("tensor loads");
            let got = op.matvec(&fixtures::probe_input(op.in_dim())).unwrap();
            assert_eq!(got, expected, "{}: loaded tensor output", fixture.name);
        } else {
            let model = MlpClassifier::load(&bytes).expect("model loads");
            let got = model.logits(&fixtures::probe_input(model.input_dim()));
            assert_eq!(got, expected, "{}: loaded model logits", fixture.name);
            // The loader the registry uses agrees with the typed loader.
            let as_batch = load_batch_model(&bytes).expect("batch-servable");
            let xs_data = fixtures::probe_input(model.input_dim());
            let xs = BatchView::new(&xs_data, 1, model.input_dim()).unwrap();
            let out = as_batch
                .forward_batch(&xs, &ParallelExecutor::sequential())
                .unwrap();
            assert_eq!(out.row(0), &expected[..], "{}", fixture.name);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Corruption / fuzz.
// ---------------------------------------------------------------------------

/// A valid snapshot to corrupt: the PD fixture model (mixes container,
/// graph, tensor records and bias sections).
fn victim_bytes() -> Vec<u8> {
    MlpClassifier::new_frozen(
        8,
        &[8],
        3,
        WeightFormat::PermutedDiagonal { p: 4 },
        &mut seeded_rng(0xC0),
    )
    .save()
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn truncation_at_any_point_is_a_typed_error(cut in 0usize..1000) {
        let bytes = victim_bytes();
        let cut = cut % bytes.len();
        // Must not panic and must not load.
        prop_assert!(MlpClassifier::load(&bytes[..cut]).is_err());
    }

    #[test]
    fn single_bit_flips_never_panic_and_never_load_silently(
        (byte, bit) in (0usize..1000, 0u8..8)
    ) {
        let mut bytes = victim_bytes();
        let byte = byte % bytes.len();
        bytes[byte] ^= 1 << bit;
        // Any outcome must be a clean Result; a flip inside a checksummed
        // payload must be *detected*. (Flips in the header/framing fail
        // their own validation; flips the CRC itself covers are caught by
        // the mismatch.)
        let _ = MlpClassifier::load(&bytes);
    }

    #[test]
    fn payload_bit_flips_are_detected_by_the_checksum(
        (offset, bit) in (0usize..10_000, 0u8..8)
    ) {
        let bytes = victim_bytes();
        let snap = Snapshot::parse(&bytes).unwrap();
        // Flip a bit inside a section payload, re-frame with the ORIGINAL
        // checksum by patching the raw file bytes: find the payload of the
        // largest section in the file and flip inside it.
        let (_, payload) = snap
            .sections()
            .iter()
            .max_by_key(|(_, p)| p.len())
            .unwrap();
        let start = find_subslice(&bytes, payload).expect("payload is embedded verbatim");
        let mut corrupted = bytes.clone();
        let offset = offset % payload.len();
        corrupted[start + offset] ^= 1 << bit;
        prop_assert!(
            matches!(
                Snapshot::parse(&corrupted),
                Err(SnapshotError::ChecksumMismatch { .. })
            ),
            "payload corruption must fail the CRC"
        );
    }

    #[test]
    fn oversized_section_lengths_do_not_allocate(len in proptest::strategy::Strategy::prop_map(0u64..u64::MAX, |v| v | (1 << 40))) {
        let bytes = victim_bytes();
        // Overwrite the first section's payload-length field (header is 16
        // bytes, then u16 name len + name).
        let name_len = u16::from_le_bytes([bytes[16], bytes[17]]) as usize;
        let len_off = 16 + 2 + name_len;
        let mut corrupted = bytes.clone();
        corrupted[len_off..len_off + 8].copy_from_slice(&len.to_le_bytes());
        // Declared lengths in the tebibyte range must be rejected from the
        // byte count actually present — allocating would OOM the test.
        prop_assert!(matches!(
            Snapshot::parse(&corrupted),
            Err(SnapshotError::Truncated { .. })
        ));
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[test]
fn bad_magic_and_wrong_version_are_rejected() {
    let bytes = victim_bytes();
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(
        MlpClassifier::load(&bad_magic),
        Err(SnapshotError::BadMagic { .. })
    ));
    let mut bad_version = bytes.clone();
    bad_version[8..10].copy_from_slice(&999u16.to_le_bytes());
    assert!(matches!(
        MlpClassifier::load(&bad_version),
        Err(SnapshotError::UnsupportedVersion { got: 999, .. })
    ));
    // Wrong model kind for the typed loader.
    let mut wrong_kind = bytes;
    wrong_kind[10..12].copy_from_slice(&permdnn::core::snapshot::KIND_CONV.to_le_bytes());
    assert!(MlpClassifier::load(&wrong_kind).is_err());
}

#[test]
fn unknown_tensor_format_codes_are_typed_errors() {
    // Craft a KIND_TENSOR snapshot whose record carries an unassigned code.
    let mut w = permdnn::core::snapshot::ByteWriter::new();
    w.u16(0x6006);
    let mut b = permdnn::core::snapshot::SnapshotBuilder::new(permdnn::core::snapshot::KIND_TENSOR);
    b.section("tensor", w.into_vec());
    let bytes = b.finish();
    assert!(matches!(
        permdnn::core::snapshot::load_tensor(&bytes, &codec()),
        Err(SnapshotError::UnknownFormat { code: 0x6006 })
    ));
}

// ---------------------------------------------------------------------------
// 3. Round-trip serving equivalence.
// ---------------------------------------------------------------------------

/// Every registry format at MLP shape, plus the non-2^t circulant ablation.
fn registry_formats() -> [WeightFormat; 6] {
    [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 4 },
        WeightFormat::Circulant { k: 4 },
        WeightFormat::Circulant { k: 3 },
        WeightFormat::UnstructuredSparse { p: 4 },
        WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
    ]
}

/// Serves the same stream through two models and asserts bit-identical
/// outputs at every tested worker count.
fn assert_serving_equivalence(
    label: &str,
    original: &dyn BatchModel,
    reloaded: &dyn BatchModel,
    stream_seed: u64,
) {
    let stream = seeded_request_stream(stream_seed, 24, original.in_dim(), 2.0);
    for workers in WORKER_COUNTS {
        let exec = ParallelExecutor::new(workers);
        let a = serve(original, &exec, &serve_cfg(), stream.clone()).unwrap();
        let b = serve(reloaded, &exec, &serve_cfg(), stream.clone()).unwrap();
        assert_eq!(
            a, b,
            "{label} at {workers} workers: reloaded model must serve identically"
        );
    }
}

#[test]
fn reloaded_mlps_serve_bit_identically_for_every_format_and_worker_count() {
    for (i, format) in registry_formats().into_iter().enumerate() {
        let model = MlpClassifier::new_frozen(12, &[16, 8], 5, format, &mut seeded_rng(i as u64));
        let reloaded = MlpClassifier::load(&model.save().unwrap()).unwrap();
        // Direct logits equivalence first (sharper failure messages)...
        let x = fixtures::probe_input(12);
        assert_eq!(model.logits(&x), reloaded.logits(&x), "{}", format.label());
        // ...then through the full batching serve loop.
        assert_serving_equivalence(&format.label(), &model, &reloaded, 7 + i as u64);
    }
}

#[test]
fn reloaded_quantized_mlps_serve_bit_identically() {
    let calibration: Vec<Vec<f32>> = (0..6)
        .map(|i| {
            let mut rng = seeded_rng(0xCAFE + i);
            (0..12)
                .map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0))
                .collect()
        })
        .collect();
    for (i, format) in registry_formats().into_iter().enumerate() {
        let model =
            MlpClassifier::new_frozen(12, &[16, 8], 5, format, &mut seeded_rng(100 + i as u64));
        let (q_model, report) = model.quantize(&calibration);
        let reloaded = MlpClassifier::load(&q_model.save().unwrap()).unwrap();
        let x = fixtures::probe_input(12);
        assert_eq!(
            q_model.logits(&x),
            reloaded.logits(&x),
            "{} quantized ({} layers)",
            format.label(),
            report.layers.len()
        );
        assert_serving_equivalence(
            &format!("{} quantized", format.label()),
            &q_model,
            &reloaded,
            60 + i as u64,
        );
    }
}

#[test]
fn reloaded_eie_tensor_serves_bit_identically() {
    // EIE is a storage format without a training-registry entry: serve it as
    // a bare operator model.
    let dense = permdnn::tensor::init::xavier_uniform(&mut seeded_rng(0xE1E), 16, 12);
    let pruned = permdnn::prune::magnitude_prune(&dense, 0.25).pruned;
    let cb = permdnn::prune::eie_format::uniform_codebook(4, pruned.max_abs());
    let enc = permdnn::prune::eie_format::EieEncodedMatrix::encode(&pruned, &cb, 4, 4);
    let bytes = permdnn::core::snapshot::save_tensor(&enc).unwrap();
    let reloaded = permdnn::core::snapshot::load_tensor(&bytes, &codec()).unwrap();
    let original = SingleLayerModel::new(Arc::new(enc));
    let loaded_model = SingleLayerModel::new(reloaded);
    assert_serving_equivalence("eie tensor", &original, &loaded_model, 0xE1E);
}

#[test]
fn reloaded_conv_net_serves_bit_identically() {
    use permdnn::nn::conv_net::ConvClassifier;
    use permdnn::nn::data::GlyphImages;
    let data = GlyphImages::generate(&mut seeded_rng(0xC04), 12, 3, 8, 1, 0.15);
    let mut model = ConvClassifier::new(
        8,
        1,
        [4, 4],
        3,
        WeightFormat::PermutedDiagonal { p: 2 },
        &mut seeded_rng(0xC05),
    )
    .unwrap();
    model.fit(&data, 1, 0.05);
    let frozen = model.freeze();
    let reloaded = permdnn::nn::FrozenConvNet::load(&frozen.save().unwrap()).unwrap();
    assert_serving_equivalence("pd conv net", &frozen, &reloaded, 0xC06);

    // And the quantized conv net.
    let (q, _) = frozen.quantize(&data.images);
    let q_reloaded = permdnn::nn::FrozenConvNet::load(&q.save().unwrap()).unwrap();
    assert_serving_equivalence("pd conv net q16", &q, &q_reloaded, 0xC07);
}

#[test]
fn reloaded_seq2seq_reproduces_teacher_forced_logits_bitwise() {
    for format in [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 4 },
        WeightFormat::UnstructuredSparse { p: 2 },
    ] {
        let (model, _) = permdnn::nn::capture_proxy_warnings(|| {
            Seq2Seq::new(6, 8, format, &mut seeded_rng(0x5E9))
        });
        let frozen = model.freeze();
        let reloaded = FrozenSeq2Seq::load(&frozen.save().unwrap()).unwrap();
        let source = [1u32, 4, 2, 5];
        let target = [2u32, 3, 0];
        assert_eq!(
            frozen.teacher_forced_logits(&source, &target).unwrap(),
            reloaded.teacher_forced_logits(&source, &target).unwrap(),
            "{}",
            format.label()
        );
        assert_eq!(
            frozen.translate(&source, 5).unwrap(),
            reloaded.translate(&source, 5).unwrap()
        );
        // Batched decoding stays bit-identical across worker counts too.
        let sources = vec![source.to_vec(), vec![0, 2, 4, 1]];
        for workers in WORKER_COUNTS {
            let exec = ParallelExecutor::new(workers);
            assert_eq!(
                frozen.translate_batch(&sources, 5, &exec).unwrap(),
                reloaded.translate_batch(&sources, 5, &exec).unwrap(),
                "{} at {workers} workers",
                format.label()
            );
        }
    }
}

#[test]
fn quantized_seq2seq_round_trips_per_gate_qschemes() {
    use permdnn::nn::data::TranslationPairs;
    let pairs = TranslationPairs::generate(&mut seeded_rng(0x5EA), 10, 6, 4);
    let (model, _) = permdnn::nn::capture_proxy_warnings(|| {
        Seq2Seq::new(
            6,
            8,
            WeightFormat::PermutedDiagonal { p: 4 },
            &mut seeded_rng(0x5EB),
        )
    });
    let (q, report) = model.freeze().quantize(&pairs);
    assert_eq!(report.layers.len(), 17, "16 gates + head");
    let reloaded = FrozenSeq2Seq::load(&q.save().unwrap()).unwrap();
    let source = [1u32, 3, 5];
    let target = [0u32, 2];
    assert_eq!(
        q.teacher_forced_logits(&source, &target).unwrap(),
        reloaded.teacher_forced_logits(&source, &target).unwrap(),
        "quantized seq2seq round trip"
    );
}

// ---------------------------------------------------------------------------
// Registry: multi-model serving over snapshots.
// ---------------------------------------------------------------------------

fn mlp_snapshot(format: WeightFormat, seed: u64) -> Vec<u8> {
    MlpClassifier::new_frozen(10, &[12], 4, format, &mut seeded_rng(seed))
        .save()
        .unwrap()
}

#[test]
fn registry_serves_heterogeneous_streams_identically_across_worker_counts() {
    let snapshots: Vec<(String, Vec<u8>)> = registry_formats()
        .into_iter()
        .enumerate()
        .map(|(i, f)| (format!("model-{i}"), mlp_snapshot(f, 0x900 + i as u64)))
        .collect();
    let tagged = interleave_streams(
        snapshots
            .iter()
            .enumerate()
            .map(|(i, (id, _))| {
                (
                    id.clone(),
                    seeded_request_stream(0xA00 + i as u64, 12, 10, 2.0),
                )
            })
            .collect(),
    );
    let run = |workers: usize| {
        let mut reg = ModelRegistry::new(batch_model_loader(), u64::MAX);
        for (id, bytes) in &snapshots {
            reg.insert(id, bytes.clone()).unwrap();
        }
        reg.serve_multi(
            &ParallelExecutor::new(workers),
            &serve_cfg(),
            tagged.clone(),
        )
        .unwrap()
    };
    // Ticks legitimately shrink with more workers; what must be invariant is
    // the execution order, the batching decisions and every output bit.
    let decisions = |report: &permdnn::runtime::MultiServeReport| -> Vec<_> {
        report
            .completed
            .iter()
            .map(|tc| {
                (
                    tc.model_id.clone(),
                    tc.completed.id,
                    tc.completed.batch_size,
                    tc.completed.output.clone(),
                )
            })
            .collect()
    };
    let baseline = run(1);
    assert_eq!(baseline.completed.len(), snapshots.len() * 12);
    for workers in [2usize, 3, 7] {
        let report = run(workers);
        assert_eq!(
            decisions(&report),
            decisions(&baseline),
            "{workers} workers: multi-model batching and outputs must be bit-deterministic"
        );
    }
    // Every model's outputs match its own direct forward.
    for (i, (id, bytes)) in snapshots.iter().enumerate() {
        let model = MlpClassifier::load(bytes).unwrap();
        let stream = seeded_request_stream(0xA00 + i as u64, 12, 10, 2.0);
        for tc in baseline.completed.iter().filter(|tc| &tc.model_id == id) {
            let expected = model.logits(&stream[tc.completed.id as usize].input);
            assert_eq!(tc.completed.output, expected, "{id}");
        }
    }
}

#[test]
fn registry_eviction_and_reload_do_not_change_served_outputs() {
    let snapshots: Vec<(String, Vec<u8>)> = (0..4)
        .map(|i| {
            (
                format!("m{i}"),
                mlp_snapshot(WeightFormat::PermutedDiagonal { p: 2 }, 0xB00 + i),
            )
        })
        .collect();
    // Budget fits ~1.5 models: serving 4 round-robin forces constant
    // eviction + reload.
    let budget = snapshots[0].1.len() as u64 * 3 / 2;
    let tagged = interleave_streams(
        snapshots
            .iter()
            .enumerate()
            .map(|(i, (id, _))| {
                (
                    id.clone(),
                    seeded_request_stream(0xC00 + i as u64, 8, 10, 4.0),
                )
            })
            .collect(),
    );
    let serve_with_budget = |budget: u64| {
        let mut reg = ModelRegistry::new(batch_model_loader(), budget);
        for (id, bytes) in &snapshots {
            reg.insert(id, bytes.clone()).unwrap();
        }
        let report = reg
            .serve_multi(&ParallelExecutor::new(2), &serve_cfg(), tagged.clone())
            .unwrap();
        (report, reg)
    };
    let (tight, tight_reg) = serve_with_budget(budget);
    let (unlimited, unlimited_reg) = serve_with_budget(u64::MAX);
    assert!(
        tight.stats.reloads > 0,
        "a tight budget must force reloads (evictions: {})",
        tight.stats.evictions
    );
    assert_eq!(unlimited.stats.reloads, 0, "no pressure, no reloads");
    assert!(tight_reg.loaded_bytes() <= budget);
    assert!(unlimited_reg.loaded_bytes() > budget);
    // Weight-cache behaviour is invisible in the outputs.
    assert_eq!(tight.completed, unlimited.completed);
}

#[test]
fn registry_hot_swap_switches_models_between_batches() {
    let old = mlp_snapshot(WeightFormat::PermutedDiagonal { p: 2 }, 0xD00);
    let new = mlp_snapshot(WeightFormat::Dense, 0xD01);
    let mut reg = ModelRegistry::new(batch_model_loader(), u64::MAX);
    reg.insert("m", old.clone()).unwrap();
    // Early wave at tick 0, late wave at tick 50_000; swap at 10_000.
    let mut requests: Vec<TaggedRequest> = Vec::new();
    for (i, r) in seeded_request_stream(0xD02, 6, 10, 0.0)
        .into_iter()
        .enumerate()
    {
        requests.push(TaggedRequest {
            model_id: "m".into(),
            request: Request { id: i as u64, ..r },
        });
    }
    for (i, r) in seeded_request_stream(0xD03, 6, 10, 0.0)
        .into_iter()
        .enumerate()
    {
        requests.push(TaggedRequest {
            model_id: "m".into(),
            request: Request {
                id: 100 + i as u64,
                arrival_tick: 50_000,
                ..r
            },
        });
    }
    reg.schedule_swap("m", new.clone(), 10_000);
    let report = reg
        .serve_multi(&ParallelExecutor::new(2), &serve_cfg(), requests.clone())
        .unwrap();
    assert_eq!(report.stats.swaps, 1);
    let old_model = MlpClassifier::load(&old).unwrap();
    let new_model = MlpClassifier::load(&new).unwrap();
    for tc in &report.completed {
        let input = &requests
            .iter()
            .find(|r| r.request.id == tc.completed.id)
            .unwrap()
            .request
            .input;
        let expected = if tc.completed.id < 100 {
            old_model.logits(input)
        } else {
            new_model.logits(input)
        };
        assert_eq!(tc.completed.output, expected, "request {}", tc.completed.id);
    }
}

// ---------------------------------------------------------------------------
// 4. Mixed-format models (the autotuner's output shape).
// ---------------------------------------------------------------------------

/// A frozen MLP mixing four weight formats across its layers: PD, CSC and
/// circulant hidden layers plus the dense head — one snapshot, four distinct
/// tensor record formats.
fn mixed_model(seed: u64) -> MlpClassifier {
    MlpClassifier::new_frozen_mixed(
        12,
        &[
            (16, WeightFormat::PermutedDiagonal { p: 4 }),
            (12, WeightFormat::UnstructuredSparse { p: 4 }),
            (8, WeightFormat::Circulant { k: 4 }),
        ],
        5,
        &mut seeded_rng(seed),
    )
}

#[test]
fn mixed_format_models_round_trip_and_serve_bit_identically() {
    let model = mixed_model(0x313);
    let reloaded = MlpClassifier::load(&model.save().unwrap()).unwrap();
    let x = fixtures::probe_input(12);
    assert_eq!(model.logits(&x), reloaded.logits(&x), "mixed-format reload");
    assert_serving_equivalence("mixed-format mlp", &model, &reloaded, 0x31);
}

#[test]
fn quantized_mixed_format_models_round_trip_and_serve_bit_identically() {
    let calibration: Vec<Vec<f32>> = (0..6)
        .map(|i| {
            let mut rng = seeded_rng(0xD1CE + i);
            (0..12)
                .map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0))
                .collect()
        })
        .collect();
    let (q_model, report) = mixed_model(0x31A).quantize(&calibration);
    assert_eq!(report.layers.len(), 4, "three hidden + head all quantize");
    let reloaded = MlpClassifier::load(&q_model.save().unwrap()).unwrap();
    let x = fixtures::probe_input(12);
    assert_eq!(q_model.logits(&x), reloaded.logits(&x));
    assert_serving_equivalence("mixed-format mlp q16", &q_model, &reloaded, 0x32);
}

/// A mixed-format snapshot to corrupt: four record formats in one container.
fn mixed_victim_bytes() -> Vec<u8> {
    mixed_model(0xC1).save().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mixed_snapshot_truncation_at_any_point_is_a_typed_error(cut in 0usize..4000) {
        let bytes = mixed_victim_bytes();
        let cut = cut % bytes.len();
        prop_assert!(MlpClassifier::load(&bytes[..cut]).is_err());
    }

    #[test]
    fn mixed_snapshot_bit_flips_never_panic_and_never_load_silently(
        (byte, bit) in (0usize..4000, 0u8..8)
    ) {
        let mut bytes = mixed_victim_bytes();
        let byte = byte % bytes.len();
        bytes[byte] ^= 1 << bit;
        // Every record format's decoder must fail cleanly, whatever the flip
        // hit — framing, a PD record, a CSC record, a circulant record or
        // the dense head.
        let _ = MlpClassifier::load(&bytes);
    }

    #[test]
    fn mixed_snapshot_payload_flips_are_detected_by_the_checksum(
        (offset, bit) in (0usize..10_000, 0u8..8)
    ) {
        let bytes = mixed_victim_bytes();
        let snap = Snapshot::parse(&bytes).unwrap();
        let (_, payload) = snap
            .sections()
            .iter()
            .max_by_key(|(_, p)| p.len())
            .unwrap();
        let start = find_subslice(&bytes, payload).expect("payload is embedded verbatim");
        let mut corrupted = bytes.clone();
        let offset = offset % payload.len();
        corrupted[start + offset] ^= 1 << bit;
        prop_assert!(matches!(
            Snapshot::parse(&corrupted),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }
}

#[test]
fn mixed_fixture_serves_identically_whole_loaded_and_paged() {
    use permdnn::core::snapshot::block_stream_snapshot;
    use permdnn::nn::snapshot::paged_config;

    let bytes = std::fs::read(fixture_path("mlp_mixed", "snap")).expect("committed fixture");
    let model = MlpClassifier::load(&bytes).expect("fixture loads");
    let stream = seeded_request_stream(0x33, 16, model.input_dim(), 2.0);
    let tagged: Vec<TaggedRequest> = stream
        .iter()
        .map(|r| TaggedRequest {
            model_id: "mixed".into(),
            request: r.clone(),
        })
        .collect();
    let decisions = |report: &permdnn::runtime::MultiServeReport| -> Vec<_> {
        report
            .completed
            .iter()
            .map(|tc| {
                (
                    tc.completed.id,
                    tc.completed.batch_size,
                    tc.completed.output.clone(),
                )
            })
            .collect()
    };

    for workers in WORKER_COUNTS {
        let exec = ParallelExecutor::new(workers);
        // Whole-load path.
        let mut whole = ModelRegistry::new(batch_model_loader(), u64::MAX);
        whole.insert("mixed", bytes.clone()).unwrap();
        let whole_report = whole
            .serve_multi(&exec, &serve_cfg(), tagged.clone())
            .unwrap();
        // Paged path over the block-streamed re-encoding of the same fixture.
        let blocked = block_stream_snapshot(&bytes).unwrap();
        let mut paged = ModelRegistry::new_paged(batch_model_loader(), paged_config(), u64::MAX);
        paged.insert("mixed", blocked).unwrap();
        let paged_report = paged
            .serve_multi(&exec, &serve_cfg(), tagged.clone())
            .unwrap();

        assert_eq!(
            decisions(&whole_report),
            decisions(&paged_report),
            "{workers} workers: paged serving must match whole-load bit for bit"
        );
        // And both match direct evaluation of the committed fixture.
        for tc in &whole_report.completed {
            let expected = model.logits(&stream[tc.completed.id as usize].input);
            assert_eq!(tc.completed.output, expected, "request {}", tc.completed.id);
        }
    }
}
