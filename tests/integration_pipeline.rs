//! End-to-end integration tests spanning the training framework, the permuted-diagonal
//! core, the quantization substrate and the storage model — the full software pipeline a
//! user of the library would run (train -> compress -> quantize -> deploy-size check).

use pd_tensor::init::seeded_rng;
use permdnn_core::storage::{dense_storage, permdnn_storage, LayerShape};
use permdnn_nn::data::GaussianClusters;
use permdnn_nn::layers::WeightFormat;
use permdnn_nn::mlp::{dense_mlp_to_pd, MlpClassifier};
use permdnn_quant::weight_sharing::share_weights_4bit;
use permdnn_sim::config::PeConfig;
use permdnn_sim::sram::fits_in_weight_sram;

#[test]
fn train_from_scratch_compress_quantize_and_check_deployability() {
    let data = GaussianClusters::generate(&mut seeded_rng(100), 500, 4, 32, 0.5);
    let (train, test) = data.split(0.8);

    // Train a PD model from scratch (end-to-end training, Section III-B).
    let mut model = MlpClassifier::new(
        32,
        &[32, 32],
        4,
        WeightFormat::PermutedDiagonal { p: 8 },
        &mut seeded_rng(101),
    );
    model.fit(&train, 10, 8, 0.1);
    let acc = model.evaluate(&test);
    assert!(acc > 0.8, "PD model should learn the task, got {acc}");

    // Apply 4-bit weight sharing (the hardware's weight LUT) to every PD layer and check
    // the accuracy survives.
    let mut rng = seeded_rng(102);
    for layer in model.pd_layers_mut() {
        let (_table, rms) = share_weights_4bit(layer.weights_mut(), &mut rng);
        assert!(rms < 0.2, "4-bit sharing error too large: {rms}");
    }
    let acc_shared = model.evaluate(&test);
    assert!(
        acc - acc_shared < 0.1,
        "weight sharing should not collapse accuracy"
    );

    // The compressed layer fits comfortably in one PE's weight SRAM.
    let pe = PeConfig::default();
    for layer in model.pd_layers_mut() {
        assert!(fits_in_weight_sram(layer.weights(), 32, &pe, 4));
    }

    // Storage accounting is consistent with the structural compression ratio.
    let shape = LayerShape::new(32, 32);
    let ratio = dense_storage(shape, 32).total_bits() as f64
        / permdnn_storage(shape, 8, 32).total_bits() as f64;
    assert!((ratio - 8.0).abs() < 1e-9);
}

#[test]
fn pretrained_conversion_pipeline_recovers_accuracy() {
    let data = GaussianClusters::generate(&mut seeded_rng(110), 500, 4, 32, 0.5);
    let (train, test) = data.split(0.8);
    let mut dense = MlpClassifier::new(32, &[32], 4, WeightFormat::Dense, &mut seeded_rng(111));
    dense.fit(&train, 10, 8, 0.1);
    let dense_acc = dense.evaluate(&test);

    let mut pd = dense_mlp_to_pd(&dense, 4, &mut seeded_rng(112));
    let projected = pd.evaluate(&test);
    pd.fit(&train, 6, 8, 0.05);
    let finetuned = pd.evaluate(&test);

    assert!(
        finetuned >= projected,
        "fine-tuning must not hurt ({projected} -> {finetuned})"
    );
    assert!(
        dense_acc - finetuned < 0.12,
        "PD should approach dense ({dense_acc} vs {finetuned})"
    );
}

#[test]
fn deployment_formats_flow_through_the_same_model_api() {
    // The post-training formats (CSC-pruned, weight-shared PD) plug into the
    // MLP through the same WeightFormat registry as the trainable ones: the
    // hidden weights stay frozen (random features) while the dense output head
    // learns on top of them.
    let data = GaussianClusters::generate(&mut seeded_rng(130), 400, 4, 32, 0.5);
    let (train, test) = data.split(0.8);
    for format in [
        WeightFormat::UnstructuredSparse { p: 4 },
        WeightFormat::SharedPermutedDiagonal { p: 4, tag_bits: 4 },
    ] {
        let mut model = MlpClassifier::new(32, &[48], 4, format, &mut seeded_rng(131));
        let before = model.evaluate(&test);
        model.fit(&train, 10, 8, 0.1);
        let after = model.evaluate(&test);
        assert!(
            after > before && after > 0.5,
            "{}: random-feature classifier should beat chance ({before} -> {after})",
            format.label()
        );
    }
}

#[test]
fn circulant_and_pd_formats_compared_on_equal_footing() {
    // Both structured formats at the same compression ratio learn the task; this is the
    // software side of the CIRCNN comparison (the hardware side is permdnn-sim).
    let data = GaussianClusters::generate(&mut seeded_rng(120), 400, 4, 32, 0.5);
    let (train, test) = data.split(0.8);
    let mut accs = Vec::new();
    for format in [
        WeightFormat::PermutedDiagonal { p: 4 },
        WeightFormat::Circulant { k: 4 },
    ] {
        let mut model = MlpClassifier::new(32, &[32], 4, format, &mut seeded_rng(121));
        model.fit(&train, 10, 8, 0.1);
        accs.push(model.evaluate(&test));
    }
    assert!(accs[0] > 0.75, "PD accuracy {}", accs[0]);
    assert!(accs[1] > 0.7, "circulant accuracy {}", accs[1]);
}
