//! Property tests of the `CompressedLinear` contract across every weight
//! format in the workspace: each implementation must agree with its own
//! `to_dense()` expansion on random inputs (dense ≡ PD ≡ circulant-direct ≡
//! circulant-FFT ≡ CSC ≡ weight-shared within 1e-4 per unit of input energy),
//! and every implementation must reject mis-sized slices with
//! `FormatError::DimensionMismatch`.

use pd_tensor::init::{seeded_rng, sparse_activation_vector, xavier_uniform};
use permdnn_circulant::BlockCirculantMatrix;
use permdnn_core::format::{BatchView, CompressedLinear, FormatError};
use permdnn_core::BlockPermDiagMatrix;
use permdnn_prune::eie_format::{uniform_codebook, EieEncodedMatrix};
use permdnn_prune::{magnitude_prune, CscMatrix};
use permdnn_quant::SharedWeightPdMatrix;
use proptest::prelude::*;

/// Builds one instance of every CompressedLinear implementation at the given
/// shape, from the same seed.
fn all_formats(rows: usize, cols: usize, p: usize, seed: u64) -> Vec<Box<dyn CompressedLinear>> {
    let mut rng = seeded_rng(seed);
    let dense = xavier_uniform(&mut rng, rows, cols);
    let pd = BlockPermDiagMatrix::random(rows, cols, p, &mut rng);
    let shared = SharedWeightPdMatrix::quantize_4bit(&pd, &mut rng);
    let pruned = magnitude_prune(&dense, 1.0 / p as f64).pruned;
    let csc = CscMatrix::from_dense(&pruned);
    let codebook = uniform_codebook(4, pruned.max_abs().max(1e-6));
    let eie = EieEncodedMatrix::encode(&pruned, &codebook, 4, 4);

    let mut ops: Vec<Box<dyn CompressedLinear>> = vec![
        Box::new(dense),
        Box::new(pd),
        Box::new(shared),
        Box::new(csc),
        Box::new(eie),
    ];
    // FFT path needs a power-of-two block; the direct path takes any size.
    if p.is_power_of_two() {
        ops.push(Box::new(BlockCirculantMatrix::random(
            rows, cols, p, &mut rng,
        )));
    }
    let k = p.max(2);
    ops.push(Box::new(BlockCirculantMatrix::random_any_size(
        rows, cols, k, &mut rng,
    )));
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_format_agrees_with_its_dense_expansion(
        (rows, cols, p, seed, zero_prob) in (4usize..=48, 4usize..=48, 2usize..=8, 0u64..500, 0usize..=9)
    ) {
        let p = p.min(rows).min(cols);
        let mut input_rng = seeded_rng(seed ^ 0x5eed);
        let x = sparse_activation_vector(&mut input_rng, cols, zero_prob as f64 / 10.0);
        let scale = x.iter().map(|v| v.abs()).fold(1.0f32, f32::max);
        for op in all_formats(rows, cols, p, seed) {
            prop_assert_eq!(op.out_dim(), rows);
            prop_assert_eq!(op.in_dim(), cols);
            let got = op.matvec(&x).unwrap();
            let reference = op.to_dense().matvec(&x);
            for (a, b) in got.iter().zip(reference.iter()) {
                prop_assert!(
                    (a - b).abs() < 1e-4 * scale * cols as f32,
                    "{}: {} vs {}", op.label(), a, b
                );
            }
        }
    }

    #[test]
    fn matmul_equals_per_row_matvec(
        (rows, cols, p, batch, seed) in (4usize..=32, 4usize..=32, 2usize..=6, 1usize..=5, 0u64..200)
    ) {
        let p = p.min(rows).min(cols);
        let xs_mat = xavier_uniform(&mut seeded_rng(seed ^ 0xbbaa), batch, cols);
        let xs = BatchView::from_matrix(&xs_mat);
        for op in all_formats(rows, cols, p, seed) {
            let out = op.matmul(&xs).unwrap();
            prop_assert_eq!(out.shape(), (batch, rows));
            for i in 0..batch {
                let single = op.matvec(xs.row(i)).unwrap();
                for (a, b) in out.row(i).iter().zip(single.iter()) {
                    prop_assert!((a - b).abs() < 1e-6, "{}", op.label());
                }
            }
        }
    }

    #[test]
    fn stored_weights_and_mul_count_are_consistent(
        (rows, cols, p, seed) in (4usize..=40, 4usize..=40, 2usize..=8, 0u64..200)
    ) {
        let p = p.min(rows).min(cols);
        for op in all_formats(rows, cols, p, seed) {
            prop_assert!(op.stored_weights() > 0, "{}", op.label());
            prop_assert!(op.mul_count() > 0, "{}", op.label());
            prop_assert!(op.compression_ratio() > 0.0);
            // The label is non-empty and stable enough to identify the format.
            prop_assert!(!op.label().is_empty());
        }
    }
}

#[test]
fn every_format_rejects_mis_sized_slices() {
    for op in all_formats(16, 24, 4, 42) {
        // Wrong input length.
        match op.matvec(&[0.0; 23]) {
            Err(FormatError::DimensionMismatch { expected, got, .. }) => {
                assert_eq!((expected, got), (24, 23), "{}", op.label());
            }
            other => panic!("{}: expected DimensionMismatch, got {other:?}", op.label()),
        }
        // Wrong output length.
        let mut y = vec![0.0; 15];
        match op.matvec_into(&[0.0; 24], &mut y) {
            Err(FormatError::DimensionMismatch { expected, got, .. }) => {
                assert_eq!((expected, got), (16, 15), "{}", op.label());
            }
            other => panic!("{}: expected DimensionMismatch, got {other:?}", op.label()),
        }
        // Wrong batch width.
        let data = vec![0.0; 2 * 23];
        let xs = BatchView::new(&data, 2, 23).unwrap();
        assert!(
            matches!(op.matmul(&xs), Err(FormatError::DimensionMismatch { .. })),
            "{}",
            op.label()
        );
    }
}

#[test]
fn structured_formats_store_a_p_fraction_of_dense() {
    let (rows, cols, p) = (64usize, 64usize, 8usize);
    for op in all_formats(rows, cols, p, 7) {
        let label = op.label();
        if label.starts_with("permuted-diagonal") || label.starts_with("block-circulant (k=8") {
            assert_eq!(op.stored_weights(), rows * cols / p, "{label}");
            assert!((op.compression_ratio() - p as f64).abs() < 1e-9, "{label}");
        }
    }
}
