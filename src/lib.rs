//! Umbrella crate for the PermDNN (Deng et al., MICRO 2018) reproduction.
//!
//! Each sub-crate reproduces one slice of the paper; this crate re-exports them
//! all so downstream users (and the workspace's own integration tests and
//! examples) can reach everything through one dependency:
//!
//! * [`core`] — permuted-diagonal matrices, kernels, gradients, and the
//!   format-agnostic [`core::format::CompressedLinear`] operator API.
//! * [`tensor`] — the dense linear-algebra substrate.
//! * [`circulant`] — the block-circulant (CIRCNN) baseline format.
//! * [`prune`] — unstructured magnitude pruning, CSC and the EIE encoding.
//! * [`quant`] — fixed-point quantization and 4-bit weight sharing.
//! * [`nn`] — the from-scratch training framework (MLP / CNN / LSTM).
//! * [`runtime`] — the parallel batched-inference runtime (worker pool,
//!   sharded executor, request-batching serving loop).
//! * [`sim`] — cycle-level models of the PERMDNN engine, EIE and CIRCNN.
//! * [`bench`] — shared helpers for the table/figure regeneration binaries.
//!
//! See the repository `README.md` for the crate map against paper sections and
//! a quickstart built on the [`core::format::CompressedLinear`] trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pd_tensor as tensor;
pub use permdnn_bench as bench;
pub use permdnn_circulant as circulant;
pub use permdnn_core as core;
pub use permdnn_nn as nn;
pub use permdnn_prune as prune;
pub use permdnn_quant as quant;
pub use permdnn_runtime as runtime;
pub use permdnn_sim as sim;
