//! Training a permuted-diagonal LSTM seq2seq model from scratch (the Table III workload
//! at laptop scale) and comparing it against the dense baseline.
//!
//! Run with `cargo run --release --example train_permdnn_lstm`.

use pd_tensor::init::seeded_rng;
use permdnn_nn::data::TranslationPairs;
use permdnn_nn::layers::WeightFormat;
use permdnn_nn::lstm::Seq2Seq;

fn main() {
    let data = TranslationPairs::generate(&mut seeded_rng(5), 400, 8, 4);
    let (train, test) = data.split(0.85);

    for format in [WeightFormat::Dense, WeightFormat::PermutedDiagonal { p: 8 }] {
        let mut model = Seq2Seq::new(8, 32, format, &mut seeded_rng(6));
        let loss = model.fit(&train, 20, 0.25);
        println!(
            "{:<28} stored LSTM weights {:>7}, final loss {:.3}, token accuracy {:.3}, BLEU {:.3}",
            format.label(),
            model.lstm_stored_weights(),
            loss,
            model.token_accuracy(&test),
            model.evaluate_bleu(&test)
        );
    }
}
