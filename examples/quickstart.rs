//! Quickstart: build a permuted-diagonal FC layer, run inference, inspect compression.
//!
//! Run with `cargo run --release -p permdnn-bench --example quickstart`.

use pd_tensor::init::{seeded_rng, sparse_activation_vector};
use permdnn_core::approx::{pd_approximate, ApproxStrategy};
use permdnn_core::matvec::matvec_column_wise;
use permdnn_core::storage::{dense_storage, permdnn_storage, LayerShape};
use permdnn_core::BlockPermDiagMatrix;

fn main() {
    let mut rng = seeded_rng(7);

    // 1. Create a 512x1024 FC layer compressed 8x with permuted-diagonal blocks.
    let w = BlockPermDiagMatrix::random(512, 1024, 8, &mut rng);
    println!("layer: {}x{}, p = {}", w.rows(), w.cols(), w.p());
    println!("stored weights: {} (dense would store {})", w.stored_weights(), 512 * 1024);
    println!("compression ratio: {:.1}x", w.compression_ratio());

    // 2. Run forward propagation with a 65%-zero activation vector; the column-wise
    //    kernel skips the zero activations exactly as the PERMDNN hardware does.
    let x = sparse_activation_vector(&mut rng, 1024, 0.65);
    let (y, processed) = matvec_column_wise(&w, &x).expect("input length matches");
    println!(
        "processed {processed} of 1024 input activations (zero-skipping), output dim {}",
        y.len()
    );

    // 3. Storage accounting for a real layer shape (AlexNet FC6 with p = 10).
    let shape = LayerShape::new(4096, 9216);
    let dense = dense_storage(shape, 32);
    let pd = permdnn_storage(shape, 10, 32);
    println!(
        "AlexNet FC6: dense {:.1} MB -> permuted-diagonal {:.1} MB ({:.1}x)",
        dense.total_mb(),
        pd.total_mb(),
        dense.total_bits() as f64 / pd.total_bits() as f64
    );

    // 4. Project an arbitrary dense matrix onto the PD manifold (the pre-trained-model
    //    conversion path of Section III-F).
    let dense_w = pd_tensor::init::xavier_uniform(&mut rng, 64, 64);
    let approx = pd_approximate(&dense_w, 4, ApproxStrategy::BestPerBlock).unwrap();
    println!(
        "l2-optimal PD approximation of a random 64x64 matrix: relative error {:.3}",
        approx.relative_error
    );
}
