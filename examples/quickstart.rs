//! Quickstart: build weight formats through the `CompressedLinear` registry,
//! run inference, and inspect compression — without naming a single concrete
//! matrix type.
//!
//! Run with `cargo run --release --example quickstart`.

use pd_tensor::init::{seeded_rng, sparse_activation_vector};
use permdnn_core::format::{BatchView, CompressedLinear};
use permdnn_core::storage::{dense_storage, permdnn_storage, LayerShape};
use permdnn_nn::layers::WeightFormat;

fn main() {
    let mut rng = seeded_rng(7);

    // 1. Create a 512x1024 FC layer compressed 8x with permuted-diagonal blocks.
    //    `WeightFormat::build` is the format registry: swap the variant and the
    //    rest of this program is unchanged.
    let w: Box<dyn CompressedLinear> =
        WeightFormat::PermutedDiagonal { p: 8 }.build(512, 1024, &mut rng);
    println!("layer: {} ({}x{})", w.label(), w.out_dim(), w.in_dim());
    println!(
        "stored weights: {} (dense would store {})",
        w.stored_weights(),
        w.out_dim() * w.in_dim()
    );
    println!("compression ratio: {:.1}x", w.compression_ratio());

    // 2. Run forward propagation with a 65%-zero activation vector; the PD
    //    implementation behind the trait skips the zero activations exactly as
    //    the PERMDNN hardware does.
    let x = sparse_activation_vector(&mut rng, 1024, 0.65);
    let y = w.matvec(&x).expect("input length matches");
    println!(
        "output dim {}, worst-case multiplications per inference: {}",
        y.len(),
        w.mul_count()
    );

    // 3. Batched inference: four activation vectors in one call.
    let batch_data: Vec<f32> = (0..4 * 1024).map(|i| (i as f32 * 0.01).sin()).collect();
    let batch = BatchView::new(&batch_data, 4, 1024).expect("batch shape is consistent");
    let outputs = w.matmul(&batch).expect("batch dims match");
    println!(
        "batched inference: {} outputs of dim {}",
        outputs.rows(),
        outputs.cols()
    );

    // 4. Compare formats at equal compression, still with no per-format code.
    println!();
    for format in [
        WeightFormat::Dense,
        WeightFormat::PermutedDiagonal { p: 8 },
        WeightFormat::Circulant { k: 8 },
        WeightFormat::UnstructuredSparse { p: 8 },
        WeightFormat::SharedPermutedDiagonal { p: 8, tag_bits: 4 },
    ] {
        let candidate = format.build(128, 256, &mut rng);
        println!(
            "{:<46} stored {:>6}, dense-input muls {:>7}",
            candidate.label(),
            candidate.stored_weights(),
            candidate.mul_count()
        );
    }

    // 5. Storage accounting for a real layer shape (AlexNet FC6 with p = 10).
    let shape = LayerShape::new(4096, 9216);
    let dense = dense_storage(shape, 32);
    let pd = permdnn_storage(shape, 10, 32);
    println!();
    println!(
        "AlexNet FC6: dense {:.1} MB -> permuted-diagonal {:.1} MB ({:.1}x)",
        dense.total_mb(),
        pd.total_mb(),
        dense.total_bits() as f64 / pd.total_bits() as f64
    );
}
