//! Converting a pre-trained dense model to PermDNN form (Section III-F / Fig. 3):
//! train dense -> l2-optimal permuted-diagonal approximation -> fine-tune -> quantize.
//!
//! Run with `cargo run --release --example compress_pretrained`.

use pd_tensor::init::seeded_rng;
use permdnn_nn::data::GaussianClusters;
use permdnn_nn::layers::WeightFormat;
use permdnn_nn::mlp::{dense_mlp_to_pd, MlpClassifier};
use permdnn_quant::fixed_point::quantize_slice_q16;

fn main() {
    let data = GaussianClusters::generate(&mut seeded_rng(1), 800, 5, 40, 0.5);
    let (train, test) = data.split(0.8);

    // Step 0: a "pre-trained" dense model.
    let mut dense = MlpClassifier::new(40, &[40, 40], 5, WeightFormat::Dense, &mut seeded_rng(2));
    dense.fit(&train, 12, 8, 0.1);
    println!(
        "dense model:            accuracy {:.3}, {} parameters",
        dense.evaluate(&test),
        dense.num_params()
    );

    // Step 1: l2-optimal permuted-diagonal approximation of every hidden layer (p = 10).
    let mut pd = dense_mlp_to_pd(&dense, 10, &mut seeded_rng(3));
    println!(
        "after PD projection:    accuracy {:.3}, {} parameters",
        pd.evaluate(&test),
        pd.num_params()
    );

    // Step 2: structure-preserving fine-tuning (Eqns. 2-3).
    pd.fit(&train, 8, 8, 0.05);
    println!("after fine-tuning:      accuracy {:.3}", pd.evaluate(&test));

    // Step 3: 16-bit fixed-point quantization of the stored weights.
    for layer in pd.pd_layers_mut() {
        let (q, stats) = quantize_slice_q16(layer.weights().values());
        layer.weights_mut().values_mut().copy_from_slice(&q);
        println!(
            "quantized a hidden layer to Q{}.{} fixed point (max error {:.5})",
            15 - stats.frac_bits,
            stats.frac_bits,
            stats.max_abs_error
        );
    }
    println!(
        "after 16-bit quantization: accuracy {:.3}",
        pd.evaluate(&test)
    );
}
