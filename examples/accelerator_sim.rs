//! Driving the PERMDNN architecture model: simulate the benchmark FC layers on the 32-PE
//! engine, compare against EIE, and sweep the PE count (the machinery behind Tables
//! VIII-X and Figs. 12-13).
//!
//! Run with `cargo run --release --example accelerator_sim`.

use pd_tensor::init::seeded_rng;
use permdnn_sim::comparison::{fig12_comparison, fig13_scalability};
use permdnn_sim::eie::{self, EieConfig};
use permdnn_sim::power::engine_cost;
use permdnn_sim::{engine, EngineConfig, TABLE7_WORKLOADS};

fn main() {
    let cfg = EngineConfig::paper_32pe();
    let cost = engine_cost(&cfg);
    println!(
        "PERMDNN engine: {} PEs @ {:.1} GHz, {:.2} mm2, {:.3} W, peak {:.1} GOPS (compressed)",
        cfg.n_pe,
        cfg.clock_ghz,
        cost.area_mm2,
        cost.power_w,
        cfg.peak_gops_compressed()
    );
    println!();

    println!("Per-layer simulation (32-PE PERMDNN vs 64-PE EIE projected to 28 nm):");
    let eie_cfg = EieConfig::projected_28nm();
    let mut rng = seeded_rng(11);
    for w in &TABLE7_WORKLOADS {
        let pd = engine::simulate_layer(&cfg, w);
        let eie_r = eie::simulate_layer(&eie_cfg, w, &mut rng);
        println!(
            "  {:<9} PERMDNN {:>8} cycles ({:>7.2} us, {:?})   EIE {:>9} cycles ({:>7.2} us, imbalance {:.2})",
            w.name, pd.cycles, pd.latency_us, pd.scheduling_case, eie_r.cycles, eie_r.latency_us,
            eie_r.imbalance_factor
        );
    }
    println!();

    println!("Fig. 12 ratios on the AlexNet layers:");
    for row in fig12_comparison(42) {
        println!(
            "  {:<9} speedup {:>5.2}x, area efficiency {:>5.2}x, energy efficiency {:>5.2}x",
            row.workload, row.speedup, row.area_efficiency, row.energy_efficiency
        );
    }
    println!();

    println!("Fig. 13 scalability (speedup over 8 PEs, Alex-FC6):");
    for point in fig13_scalability(&[8, 16, 32, 64, 128, 256]) {
        let fc6 = point
            .speedups
            .iter()
            .find(|(n, _)| n == "Alex-FC6")
            .unwrap()
            .1;
        println!("  {:>4} PEs: {:>6.2}x", point.n_pe, fc6);
    }
}
